//! Criterion benches for Part 3 (any-k): preprocessing, TT(1) and
//! TT(1000) per PART variant, REC, batch, and the cyclic C4 plan
//! (E4/E5/E9/E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anyk_core::batch::BatchSorted;
use anyk_core::cyclic::c4_ranked_part;
use anyk_core::decomposed::decomposed_ranked_part;
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_query::cq::cycle_query;
use anyk_query::cycles::heavy_threshold;
use anyk_query::decompose::fhw_exact;
use anyk_query::hypergraph::Hypergraph;
use anyk_workloads::adversarial::worst_case_triangle;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

fn bench_variants(c: &mut Criterion) {
    let inst = path_instance(4, 5000, 400, WeightDist::Uniform, 31);
    let mut g = c.benchmark_group("e11_variants_tt1000");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for kind in SuccessorKind::ALL_KINDS {
        g.bench_with_input(BenchmarkId::new(kind.name(), 5000), &inst, |b, inst| {
            b.iter(|| {
                let i = TdpInstance::<SumCost>::prepare(
                    &inst.query,
                    &inst.join_tree,
                    inst.relations_clone(),
                )
                .unwrap();
                black_box(AnyKPart::new(i, kind).take(1000).count())
            })
        });
    }
    g.bench_with_input(BenchmarkId::new("Rec", 5000), &inst, |b, inst| {
        b.iter(|| {
            let i = TdpInstance::<SumCost>::prepare(
                &inst.query,
                &inst.join_tree,
                inst.relations_clone(),
            )
            .unwrap();
            black_box(AnyKRec::new(i).take(1000).count())
        })
    });
    g.bench_with_input(BenchmarkId::new("BatchSorted", 5000), &inst, |b, inst| {
        b.iter(|| {
            black_box(
                BatchSorted::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone())
                    .take(1000)
                    .count(),
            )
        })
    });
    g.finish();
}

fn bench_ttf(c: &mut Criterion) {
    let inst = path_instance(4, 20_000, 2_000, WeightDist::Uniform, 99);
    let mut g = c.benchmark_group("e5_ttf");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("anyk_part_lazy_TT1", |b| {
        b.iter(|| {
            let i = TdpInstance::<SumCost>::prepare(
                &inst.query,
                &inst.join_tree,
                inst.relations_clone(),
            )
            .unwrap();
            black_box(AnyKPart::new(i, SuccessorKind::Lazy).next())
        })
    });
    g.bench_function("batch_TT1", |b| {
        b.iter(|| {
            black_box(
                BatchSorted::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone())
                    .next(),
            )
        })
    });
    g.finish();
}

fn bench_cyclic(c: &mut Criterion) {
    let tri = worst_case_triangle(400, 11);
    let e = tri[0].clone();
    let rels = vec![e.clone(), e.clone(), e.clone(), e];
    let thr = heavy_threshold(rels[0].len());
    let mut g = c.benchmark_group("e4_c4_ranked");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for k in [1usize, 100] {
        g.bench_with_input(
            BenchmarkId::new("subw_union_of_trees", k),
            &rels,
            |b, rels| {
                b.iter(|| {
                    black_box(
                        c4_ranked_part::<SumCost>(rels, thr, SuccessorKind::Lazy)
                            .take(k)
                            .count(),
                    )
                })
            },
        );
    }
    // E13 contrast: the single-tree fhw-2 plan on the same input.
    let q = cycle_query(4);
    let ghd = fhw_exact(&Hypergraph::of_query(&q));
    g.bench_with_input(
        BenchmarkId::new("fhw_single_tree", 100usize),
        &rels,
        |b, rels| {
            b.iter(|| {
                black_box(
                    decomposed_ranked_part::<SumCost>(&q, rels, &ghd, SuccessorKind::Lazy)
                        .take(100)
                        .count(),
                )
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_variants, bench_ttf, bench_cyclic);
criterion_main!(benches);
