//! Criterion benches for Part 2 (optimal joins): triangle binary vs
//! Generic-Join (E1), Yannakakis vs binary on acyclic paths (E2), and
//! Boolean 4-cycle detection (E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anyk_join::binary::binary_join;
use anyk_join::boolean::c4_exists;
use anyk_join::generic_join::generic_join_materialize;
use anyk_join::leapfrog::leapfrog_materialize;
use anyk_join::yannakakis::yannakakis_join;
use anyk_query::cq::{path_query, triangle_query};
use anyk_query::cycles::heavy_threshold;
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_workloads::adversarial::worst_case_triangle;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

fn bench_triangle(c: &mut Criterion) {
    let q = triangle_query();
    let mut g = c.benchmark_group("e1_triangle");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [400usize, 800, 1600] {
        let rels = worst_case_triangle(n, 42);
        g.bench_with_input(BenchmarkId::new("binary", n), &rels, |b, rels| {
            b.iter(|| black_box(binary_join(&q, rels, &[0, 1, 2])))
        });
        g.bench_with_input(BenchmarkId::new("generic_join", n), &rels, |b, rels| {
            b.iter(|| black_box(generic_join_materialize(&q, rels, None)))
        });
        g.bench_with_input(BenchmarkId::new("leapfrog", n), &rels, |b, rels| {
            b.iter(|| black_box(leapfrog_materialize(&q, rels, None)))
        });
    }
    g.finish();
}

fn bench_yannakakis(c: &mut Criterion) {
    let q = path_query(3);
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        _ => unreachable!(),
    };
    let mut g = c.benchmark_group("e2_yannakakis");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for edges in [2000usize, 8000] {
        let inst = path_instance(3, edges, (edges / 10) as u64, WeightDist::Uniform, 7);
        g.bench_with_input(BenchmarkId::new("yannakakis", edges), &inst, |b, inst| {
            b.iter(|| black_box(yannakakis_join(&q, &tree, inst.relations_clone())))
        });
        g.bench_with_input(BenchmarkId::new("binary", edges), &inst, |b, inst| {
            b.iter(|| black_box(binary_join(&q, &inst.relations, &[0, 1, 2])))
        });
    }
    g.finish();
}

fn bench_c4_boolean(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_boolean_c4");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [400usize, 800] {
        let tri = worst_case_triangle(n, 7);
        let e = tri[0].clone();
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let thr = heavy_threshold(rels[0].len());
        g.bench_with_input(BenchmarkId::new("c4_detect", n), &rels, |b, rels| {
            b.iter(|| black_box(c4_exists(rels, thr)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_triangle, bench_yannakakis, bench_c4_boolean);
criterion_main!(benches);
