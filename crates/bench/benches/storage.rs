//! Criterion microbenches for the storage substrate: index/trie build
//! rates and the Fx hasher vs the std SipHash default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use anyk_storage::{FxHashMap, HashIndex, SortedIndex, Trie};
use anyk_workloads::graphs::{random_edge_relation, WeightDist};

fn bench_index_builds(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_index_build");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [10_000usize, 100_000] {
        let rel = random_edge_relation(n, (n / 10) as u64, WeightDist::Uniform, None, 3);
        g.bench_with_input(BenchmarkId::new("hash_index", n), &rel, |b, rel| {
            b.iter(|| black_box(HashIndex::build(rel, &[0])))
        });
        g.bench_with_input(BenchmarkId::new("sorted_index", n), &rel, |b, rel| {
            b.iter(|| black_box(SortedIndex::build(rel, &[0])))
        });
        g.bench_with_input(BenchmarkId::new("trie", n), &rel, |b, rel| {
            b.iter(|| black_box(Trie::build(rel, &[0, 1])))
        });
    }
    g.finish();
}

fn bench_hashers(c: &mut Criterion) {
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9e3779b9))
        .collect();
    let mut g = c.benchmark_group("storage_hashers");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("fx_hash_map_insert_100k", |b| {
        b.iter(|| {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in &keys {
                m.insert(k, k);
            }
            black_box(m.len())
        })
    });
    g.bench_function("std_hash_map_insert_100k", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64> = HashMap::new();
            for &k in &keys {
                m.insert(k, k);
            }
            black_box(m.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_index_builds, bench_hashers);
criterion_main!(benches);
