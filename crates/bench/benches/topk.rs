//! Criterion benches for Part 1 (classic top-k): FA/TA/NRA access model
//! (E7) and rank-join vs weight correlation (E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anyk_topk::fa::fagin_topk;
use anyk_topk::lists::{Aggregation, RankedLists};
use anyk_topk::nra::nra_topk;
use anyk_topk::rank_join::{RankJoin, SortedScan};
use anyk_topk::ta::threshold_topk;
use anyk_workloads::adversarial::anticorrelated_pair;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};
use anyk_workloads::middleware::{correlated_lists, uniform_lists};

fn bench_middleware(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_middleware_k10");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (name, lists) in [
        ("correlated", correlated_lists(3, 10_000, 0.05, 1)),
        ("uniform", uniform_lists(3, 10_000, 2)),
    ] {
        g.bench_with_input(BenchmarkId::new("TA", name), &lists, |b, lists| {
            b.iter(|| {
                let mut l = RankedLists::new(lists.clone());
                black_box(threshold_topk(&mut l, 10, Aggregation::Sum))
            })
        });
        g.bench_with_input(BenchmarkId::new("FA", name), &lists, |b, lists| {
            b.iter(|| {
                let mut l = RankedLists::new(lists.clone());
                black_box(fagin_topk(&mut l, 10, Aggregation::Sum))
            })
        });
        g.bench_with_input(BenchmarkId::new("NRA", name), &lists, |b, lists| {
            b.iter(|| {
                let mut l = RankedLists::new(lists.clone());
                black_box(nra_topk(&mut l, 10, Aggregation::Sum))
            })
        });
    }
    g.finish();
}

fn bench_rank_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_rankjoin_ttf");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let n = 20_000;
    let corr_l = random_edge_relation(n, n as u64 / 2, WeightDist::CorrelatedWithKey, None, 4);
    let corr_r = random_edge_relation(n, n as u64 / 2, WeightDist::CorrelatedWithKey, None, 5);
    g.bench_function("correlated", |b| {
        b.iter(|| {
            let mut rj = RankJoin::new(
                SortedScan::new(corr_l.clone()),
                SortedScan::new(corr_r.clone()),
                vec![1],
                vec![0],
            );
            black_box(rj.next())
        })
    });
    let (anti_l, anti_r) = anticorrelated_pair(n);
    g.bench_function("anticorrelated", |b| {
        b.iter(|| {
            let mut rj = RankJoin::new(
                SortedScan::new(anti_l.clone()),
                SortedScan::new(anti_r.clone()),
                vec![1],
                vec![0],
            );
            black_box(rj.next())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_middleware, bench_rank_join);
criterion_main!(benches);
