//! Experiment harness: regenerates every quantitative claim of the
//! paper (E1–E12; see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```text
//! experiments [--scale X] [all | e1 e2 ...]
//! ```

use anyk_bench::exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
            }
            "all" => ids.extend(exp::ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_lowercase()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [--scale X] [all | e1 e2 ... e19]");
        eprintln!("experiments: {}", exp::ALL.join(" "));
        std::process::exit(2);
    }
    println!("anyk experiment harness — scale {scale}");
    for id in &ids {
        if !exp::run(id, scale) {
            eprintln!("unknown experiment `{id}` (known: {})", exp::ALL.join(" "));
            std::process::exit(2);
        }
    }
}
