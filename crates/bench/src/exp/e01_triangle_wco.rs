//! E1 — §3: on the worst-case triangle instance, every binary join plan
//! materializes Θ(n²) intermediate tuples while a worst-case-optimal
//! join runs in O~(n^1.5).

use crate::util::{banner, fmt_secs, loglog_slope, time, Table};
use anyk_join::binary::binary_join;
use anyk_join::generic_join::generic_join_materialize;
use anyk_query::cq::triangle_query;
use anyk_workloads::adversarial::worst_case_triangle;

pub fn run(scale: f64) {
    banner(
        "E1: triangle — binary plans O(n^2) vs Generic-Join O(n^1.5)",
        "\"the binary-join approach has complexity O~(n^2), while a WCO \
         join algorithm like Generic-Join or NPRR computes the output in \
         time O~(n^1.5)\" (§3)",
    );
    let q = triangle_query();
    let base = [400usize, 800, 1600, 3200];
    let mut t = Table::new(["n", "binary", "gj", "binary_max_interm", "output"]);
    let mut pts_binary = Vec::new();
    let mut pts_gj = Vec::new();
    for &b in &base {
        let n = (b as f64 * scale).max(50.0) as usize;
        let rels = worst_case_triangle(n, 42);
        let ((res_b, stats), t_binary) = time(|| binary_join(&q, &rels, &[0, 1, 2]));
        let ((res_g, _), t_gj) = time(|| generic_join_materialize(&q, &rels, None));
        assert_eq!(res_b.len(), res_g.len(), "algorithms disagree");
        pts_binary.push((n as f64, t_binary));
        pts_gj.push((n as f64, t_gj));
        t.row([
            n.to_string(),
            fmt_secs(t_binary),
            fmt_secs(t_gj),
            stats.max_intermediate.to_string(),
            res_g.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "fitted exponent: binary ~ n^{:.2} (paper: 2), generic-join ~ n^{:.2} (paper: 1.5)",
        loglog_slope(&pts_binary),
        loglog_slope(&pts_gj)
    );
}
