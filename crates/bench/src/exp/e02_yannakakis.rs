//! E2 — §3: the Yannakakis algorithm achieves O~(n + r) on acyclic
//! queries, while binary plans can pay Θ(n²) intermediates even when
//! the output is tiny. Instance: a 3-path where R1 ⋈ R2 is quadratic
//! but the full reducer shrinks everything to O(n).

use crate::util::{banner, fmt_secs, loglog_slope, time, Table};
use anyk_join::binary::binary_join;
use anyk_join::yannakakis::yannakakis_join;
use anyk_query::cq::path_query;
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_storage::{Relation, RelationBuilder, Schema};

/// R1 = {(i, 1)}, R2 = {(1, j)}, R3 = {(0, 0)}:
/// R1 ⋈ R2 = n²/4 pairs, but only j = 0 survives R3, so r = n/2.
fn instance(n: usize) -> Vec<Relation> {
    let half = (n / 2).max(2) as i64;
    let mut r1 = RelationBuilder::new(Schema::new(["a", "b"]));
    for i in 0..half {
        r1.push_ints(&[i, 1], 0.1);
    }
    let mut r2 = RelationBuilder::new(Schema::new(["b", "c"]));
    for j in 0..half {
        r2.push_ints(&[1, j], 0.2);
    }
    let mut r3 = RelationBuilder::new(Schema::new(["c", "d"]));
    r3.push_ints(&[0, 0], 0.3);
    vec![r1.finish(), r2.finish(), r3.finish()]
}

pub fn run(scale: f64) {
    banner(
        "E2: acyclic joins — Yannakakis O(n + r) vs binary plans",
        "\"the Yannakakis algorithm achieves O~(n + r) for acyclic \
         queries, essentially matching the lower bound\" (§3)",
    );
    let q = path_query(3);
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        _ => unreachable!(),
    };
    let mut t = Table::new(["n", "yannakakis", "binary", "binary_max_interm", "output"]);
    let mut pts_y = Vec::new();
    let mut pts_b = Vec::new();
    for &b in &[1000usize, 2000, 4000, 8000] {
        let n = (b as f64 * scale).max(100.0) as usize;
        let rels = instance(n);
        let (res_y, t_y) = time(|| yannakakis_join(&q, &tree, rels.clone()));
        let ((res_b, stats), t_b) = time(|| binary_join(&q, &rels, &[0, 1, 2]));
        assert_eq!(res_y.len(), res_b.len(), "algorithms disagree");
        pts_y.push((n as f64, t_y));
        pts_b.push((n as f64, t_b));
        t.row([
            n.to_string(),
            fmt_secs(t_y),
            fmt_secs(t_b),
            stats.max_intermediate.to_string(),
            res_y.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "fitted exponent: yannakakis ~ n^{:.2} (paper: 1), binary ~ n^{:.2} (paper: 2)",
        loglog_slope(&pts_y),
        loglog_slope(&pts_b)
    );
}
