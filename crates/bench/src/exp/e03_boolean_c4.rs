//! E3 — §1: "the corresponding Boolean query ('Is there any 4-cycle?')
//! can be answered in O(n^1.5)", while a WCO join enumerating the full
//! output pays up to Θ(n²) on instances whose output is that large.
//!
//! Instance: hub graph {(i,1)} ∪ {(1,j)} — it has Θ(n²) 4-cycles of the
//! form (i,1,j,1), so full enumeration is quadratic, while the
//! union-of-trees detection stays near n^1.5.

use crate::util::{banner, fmt_secs, loglog_slope, time, Table};
use anyk_join::boolean::c4_exists;
use anyk_join::generic_join::generic_join_materialize;
use anyk_query::cq::cycle_query;
use anyk_query::cycles::heavy_threshold;
use anyk_workloads::adversarial::worst_case_triangle;

pub fn run(scale: f64) {
    banner(
        "E3: Boolean 4-cycle O(n^1.5) vs full WCO enumeration O(n^2)",
        "\"it has been shown that the corresponding Boolean query (\\\"Is \
         there any 4-cycle?\\\") can be answered in O(n^1.5)\" (§1)",
    );
    let q = cycle_query(4);
    let mut t = Table::new(["n", "c4_detect", "gj_full", "num_4cycles"]);
    let mut pts_detect = Vec::new();
    let mut pts_full = Vec::new();
    for &b in &[200usize, 400, 800, 1600] {
        let n = (b as f64 * scale).max(50.0) as usize;
        // Reuse the hub-shaped instance (same edge set for all atoms).
        let tri = worst_case_triangle(n, 7);
        let e = tri[0].clone();
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let thr = heavy_threshold(rels[0].len());
        let (found, t_detect) = time(|| c4_exists(&rels, thr));
        assert!(found, "hub instance always has 4-cycles");
        let ((res, _), t_full) = time(|| generic_join_materialize(&q, &rels, None));
        pts_detect.push((n as f64, t_detect));
        pts_full.push((n as f64, t_full));
        t.row([
            n.to_string(),
            fmt_secs(t_detect),
            fmt_secs(t_full),
            res.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "fitted exponent: detection ~ n^{:.2} (paper: 1.5), full enumeration ~ n^{:.2} (paper: 2)",
        loglog_slope(&pts_detect),
        loglog_slope(&pts_full)
    );
}
