//! E4 — §1: "It is tempting to assume that for small k, finding the k
//! lightest cycles will have complexity close to the Boolean query, and
//! ... this turns out to be correct."
//!
//! We measure TT(k) of ranked 4-cycle enumeration through the
//! submodular-width plan against (a) Boolean detection time (the floor)
//! and (b) full-join-then-sort (the ceiling).

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::cyclic::c4_ranked_part;
use anyk_core::ranking::SumCost;
use anyk_core::succorder::SuccessorKind;
use anyk_join::boolean::c4_exists;
use anyk_join::generic_join::generic_join_materialize;
use anyk_query::cq::cycle_query;
use anyk_query::cycles::heavy_threshold;
use anyk_workloads::adversarial::worst_case_triangle;

pub fn run(scale: f64) {
    banner(
        "E4: top-k lightest 4-cycles — TT(k) vs Boolean floor vs batch ceiling",
        "\"for small k, finding the k lightest cycles will have complexity \
         close to the Boolean query\" (§1)",
    );
    let q = cycle_query(4);
    let n = (800.0 * scale).max(100.0) as usize;
    let tri = worst_case_triangle(n, 11);
    let e = tri[0].clone();
    let rels = vec![e.clone(), e.clone(), e.clone(), e];
    let thr = heavy_threshold(rels[0].len());

    let (_, t_bool) = time(|| c4_exists(&rels, thr));
    let (sorted_all, t_batch) = time(|| {
        let (res, _) = generic_join_materialize(&q, &rels, None);
        let mut ws: Vec<f64> = (0..res.len() as u32).map(|i| res.weight(i).get()).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ws
    });

    let mut t = Table::new(["k", "anyk_TT(k)", "vs_boolean", "vs_batch_full"]);
    for &k in &[1usize, 10, 100, 1000] {
        let (got, t_k) = time(|| {
            c4_ranked_part::<SumCost>(&rels, thr, SuccessorKind::Lazy)
                .take(k)
                .map(|a| a.cost.get())
                .collect::<Vec<f64>>()
        });
        // Cross-check against the batch oracle.
        let upto = got.len().min(sorted_all.len());
        for i in 0..upto {
            assert!(
                (got[i] - sorted_all[i]).abs() < 1e-6,
                "rank {i}: {} vs {}",
                got[i],
                sorted_all[i]
            );
        }
        t.row([
            k.to_string(),
            fmt_secs(t_k),
            format!("{:.1}x", t_k / t_bool),
            format!("{:.2}x", t_k / t_batch),
        ]);
    }
    t.print();
    println!(
        "boolean detection: {}; batch full join+sort: {} ({} answers, n = {n})",
        fmt_secs(t_bool),
        fmt_secs(t_batch),
        sorted_all.len()
    );
    println!("expected shape: TT(small k) within a small factor of boolean, far below batch");
}
