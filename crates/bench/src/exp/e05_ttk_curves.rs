//! E5 — Part 3's empirical comparison: TT(k) curves of any-k algorithms
//! against batch join-then-sort on an acyclic path query. Any-k emits
//! its first answers orders of magnitude earlier; batch pays the full
//! join before answer one.

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::batch::BatchSorted;
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

pub fn run(scale: f64) {
    banner(
        "E5: TT(k) — any-k vs batch on a 4-path query",
        "\"[a ranked enumeration algorithm's] goal is to minimize the time \
         for returning the k top-ranked results for every value of k\" (§4)",
    );
    let edges = (20_000.0 * scale).max(500.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let inst = path_instance(4, edges, nodes, WeightDist::Uniform, 99);
    println!(
        "workload: 4-path, {} edges/relation over {} nodes (seed 99)",
        edges, nodes
    );

    let ks = [1usize, 10, 100, 1_000, 10_000];
    let mut t = Table::new([
        "algorithm",
        "prep",
        "TT(1)",
        "TT(10)",
        "TT(100)",
        "TT(1k)",
        "TT(10k)",
    ]);

    // ANYK-PART (Lazy) and ANYK-REC.
    for engine in ["part-lazy", "rec"] {
        let (prep, tts) = match engine {
            "part-lazy" => {
                let (inst2, t_prep) = time(|| {
                    TdpInstance::<SumCost>::prepare(
                        &inst.query,
                        &inst.join_tree,
                        inst.relations_clone(),
                    )
                    .unwrap()
                });
                let mut anyk = AnyKPart::new(inst2, SuccessorKind::Lazy);
                let mut tts = Vec::new();
                let mut emitted = 0usize;
                let mut acc = 0.0;
                for &k in &ks {
                    let (_, dt) = time(|| {
                        while emitted < k {
                            if anyk.next().is_none() {
                                break;
                            }
                            emitted += 1;
                        }
                    });
                    acc += dt;
                    tts.push(acc);
                }
                (t_prep, tts)
            }
            _ => {
                let (inst2, t_prep) = time(|| {
                    TdpInstance::<SumCost>::prepare(
                        &inst.query,
                        &inst.join_tree,
                        inst.relations_clone(),
                    )
                    .unwrap()
                });
                let mut anyk = AnyKRec::new(inst2);
                let mut tts = Vec::new();
                let mut emitted = 0usize;
                let mut acc = 0.0;
                for &k in &ks {
                    let (_, dt) = time(|| {
                        while emitted < k {
                            if anyk.next().is_none() {
                                break;
                            }
                            emitted += 1;
                        }
                    });
                    acc += dt;
                    tts.push(acc);
                }
                (t_prep, tts)
            }
        };
        t.row([
            engine.to_string(),
            fmt_secs(prep),
            fmt_secs(prep + tts[0]),
            fmt_secs(prep + tts[1]),
            fmt_secs(prep + tts[2]),
            fmt_secs(prep + tts[3]),
            fmt_secs(prep + tts[4]),
        ]);
    }

    // Batch: the "prep" is the full join + sort; all TT(k) equal after.
    {
        let (mut batch, t_prep) = time(|| {
            BatchSorted::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone())
        });
        let mut tts = Vec::new();
        let mut emitted = 0usize;
        let mut acc = 0.0;
        for &k in &ks {
            let (_, dt) = time(|| {
                while emitted < k {
                    if batch.next().is_none() {
                        break;
                    }
                    emitted += 1;
                }
            });
            acc += dt;
            tts.push(acc);
        }
        t.row([
            "batch-sort".to_string(),
            fmt_secs(t_prep),
            fmt_secs(t_prep + tts[0]),
            fmt_secs(t_prep + tts[1]),
            fmt_secs(t_prep + tts[2]),
            fmt_secs(t_prep + tts[3]),
            fmt_secs(t_prep + tts[4]),
        ]);
    }
    t.print();
    println!("expected shape: any-k TT(1) << batch TT(1); batch flat in k");
}
