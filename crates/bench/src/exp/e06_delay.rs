//! E6 — §4: "by exploiting the inherent structure of the join problem,
//! the delay can be reduced to O(log k) = O~(1)." We measure the
//! per-answer delay of ANYK-PART across enumeration and report how the
//! windowed maximum grows (logarithmic-like, not linear in input size),
//! with constant-delay *unranked* enumeration as the floor — the price
//! of ordering is the gap between the two.

use crate::util::{banner, fmt_secs, Table};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_core::unranked::UnrankedEnum;
use anyk_obs::{global_clock, Clock as _};
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

fn delays<I: Iterator>(mut it: I, target: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(target);
    let mut last = global_clock().now_ns();
    while out.len() < target {
        if it.next().is_none() {
            break;
        }
        let now = global_clock().now_ns();
        out.push(now.saturating_sub(last) as f64 / 1e9);
        last = now;
    }
    out
}

fn print_windows(label: &str, delays: &[f64]) {
    let mut t = Table::new(["k_window", "mean_delay", "p99_delay", "max_delay"]);
    let mut start = 0usize;
    let mut width = 100usize;
    while start < delays.len() {
        let end = (start + width).min(delays.len());
        let mut window = delays[start..end].to_vec();
        window.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let p99 = window[(window.len() * 99 / 100).min(window.len() - 1)];
        let max = *window.last().unwrap();
        t.row([
            format!("{}..{}", start + 1, end),
            fmt_secs(mean),
            fmt_secs(p99),
            fmt_secs(max),
        ]);
        start = end;
        width *= 10;
    }
    println!("{label}:");
    t.print();
}

pub fn run(scale: f64) {
    banner(
        "E6: per-answer delay — ranked (ANYK-PART) vs constant-delay unranked",
        "\"the delay can be reduced to O(log k) = O~(1)\" (§4); unranked \
         constant-delay enumeration is the floor it approaches",
    );
    let edges = (20_000.0 * scale).max(500.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let inst = path_instance(3, edges, nodes, WeightDist::Uniform, 5);
    let target = 100_000usize;

    let tdp = TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
        .unwrap();
    let ranked = delays(AnyKPart::new(tdp, SuccessorKind::Take2), target);
    println!("ranked: enumerated {} answers", ranked.len());
    print_windows("ranked (ANYK-PART/Take2)", &ranked);

    let tdp = TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
        .unwrap();
    let unranked = delays(UnrankedEnum::new(tdp), target);
    print_windows("unranked (constant delay, no order)", &unranked);

    println!(
        "expected shape: ranked mean delay roughly flat (log-factor growth \
         only); unranked strictly flat and lower — the gap is the price of \
         ordering"
    );
}
