//! E7 — Part 1: TA's instance optimality in the middleware cost model.
//! Access counts (sorted + random) of FA, TA and NRA on correlated,
//! independent, and anti-correlated ranked lists. TA never does much
//! worse than FA and shines on correlated inputs; anti-correlated
//! inputs push every threshold algorithm toward full scans.

use crate::util::{banner, Table};
use anyk_topk::ca::combined_topk;
use anyk_topk::fa::fagin_topk;
use anyk_topk::lists::{Aggregation, RankedLists};
use anyk_topk::nra::nra_topk;
use anyk_topk::ta::threshold_topk;
use anyk_workloads::middleware::{anticorrelated_lists, correlated_lists, uniform_lists};

pub fn run(scale: f64) {
    banner(
        "E7: middleware top-k — accesses of FA vs TA vs NRA",
        "\"TA marks the culmination ... [instance optimality] holds only in \
         a restricted model of computation where cost is measured in terms \
         of the number of tuples accessed\" (Part 1)",
    );
    let n = (20_000.0 * scale).max(500.0) as usize;
    let m = 3;
    println!("workload: m = {m} lists, n = {n} objects, sum aggregation");
    let mut t = Table::new([
        "correlation",
        "k",
        "FA_accesses",
        "TA_accesses",
        "NRA_accesses",
        "CA_accesses(h=5)",
        "full_scan",
    ]);
    let workloads = [
        ("correlated", correlated_lists(m, n, 0.05, 1)),
        ("independent", uniform_lists(m, n, 2)),
        ("anticorrelated", anticorrelated_lists(m, n, 3)),
    ];
    for (name, lists) in &workloads {
        for &k in &[1usize, 10, 100] {
            let mut fa = RankedLists::new(lists.clone());
            let fa_top = fagin_topk(&mut fa, k, Aggregation::Sum);
            let mut ta = RankedLists::new(lists.clone());
            let ta_top = threshold_topk(&mut ta, k, Aggregation::Sum);
            let mut nra = RankedLists::new(lists.clone());
            let _ = nra_topk(&mut nra, k, Aggregation::Sum);
            let mut ca = RankedLists::new(lists.clone());
            let _ = combined_topk(&mut ca, k, Aggregation::Sum, 5);
            // FA and TA must agree on the result set.
            let mut f: Vec<u64> = fa_top.iter().map(|x| x.0).collect();
            let mut s: Vec<u64> = ta_top.iter().map(|x| x.0).collect();
            f.sort();
            s.sort();
            assert_eq!(f, s, "FA/TA disagree on {name} k={k}");
            t.row([
                name.to_string(),
                k.to_string(),
                fa.counters().total().to_string(),
                ta.counters().total().to_string(),
                nra.counters().total().to_string(),
                format!("{}s+{}r", ca.counters().sorted, ca.counters().random),
                (n * m).to_string(),
            ]);
        }
    }
    t.print();
    println!("expected shape: TA <= FA with margin on correlated inputs; anticorrelated pushes all toward the full scan");
}
