//! E8 — Part 1's RAM-model critique, reproduced: rank-join (HRJN) is
//! excellent when the top answers combine top-of-list tuples, but on
//! adversarial (anti-correlated) inputs its bound cannot certify
//! anything until it has pulled nearly everything — and its buffers are
//! the "large intermediate result" the middleware model never charges
//! for. Any-k's preprocessing is O(n) regardless of weight structure.

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_query::cq::path_query;
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_storage::Relation;
use anyk_topk::rank_join::{RankJoin, SortedScan};
use anyk_workloads::adversarial::anticorrelated_pair;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};

fn anyk_ttf(rels: Vec<Relation>) -> f64 {
    let q = path_query(2);
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        _ => unreachable!(),
    };
    let (ttf, _) = {
        let (mut anyk, prep) = time(|| {
            let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
            AnyKPart::new(inst, SuccessorKind::Lazy)
        });
        let (_, t1) = time(|| anyk.next());
        (prep + t1, ())
    };
    ttf
}

pub fn run(scale: f64) {
    banner(
        "E8: rank-join (HRJN) vs any-k — friendly vs adversarial weights",
        "\"We are particularly interested in their worst-case behavior when \
         some of the input tuples contributing to the top-ranked result are \
         at the bottom of an individual input relation\" (Part 1)",
    );
    let n = (50_000.0 * scale).max(1000.0) as usize;
    let mut t = Table::new([
        "workload",
        "n",
        "hrjn_TTF",
        "hrjn_pulled",
        "hrjn_buffered",
        "anyk_TTF",
    ]);

    // Friendly: correlated weights — light tuples join with light.
    {
        let l = random_edge_relation(n, n as u64 / 2, WeightDist::CorrelatedWithKey, None, 4);
        let r = random_edge_relation(n, n as u64 / 2, WeightDist::CorrelatedWithKey, None, 5);
        let (pulled, buffered, t_rj) = {
            let mut rj = RankJoin::new(
                SortedScan::new(l.clone()),
                SortedScan::new(r.clone()),
                vec![1],
                vec![0],
            );
            let (_, t1) = time(|| rj.next());
            (rj.stats().pulled, rj.stats().peak_buffered, t1)
        };
        let t_anyk = anyk_ttf(vec![l, r]);
        t.row([
            "correlated".to_string(),
            n.to_string(),
            fmt_secs(t_rj),
            pulled.to_string(),
            buffered.to_string(),
            fmt_secs(t_anyk),
        ]);
    }

    // Adversarial: anti-correlated — certification needs full scans.
    {
        let (l, r) = anticorrelated_pair(n);
        let (pulled, buffered, t_rj) = {
            let mut rj = RankJoin::new(
                SortedScan::new(l.clone()),
                SortedScan::new(r.clone()),
                vec![1],
                vec![0],
            );
            let (_, t1) = time(|| rj.next());
            (rj.stats().pulled, rj.stats().peak_buffered, t1)
        };
        let t_anyk = anyk_ttf(vec![l, r]);
        t.row([
            "anticorrelated".to_string(),
            n.to_string(),
            fmt_secs(t_rj),
            pulled.to_string(),
            buffered.to_string(),
            fmt_secs(t_anyk),
        ]);
    }
    t.print();
    println!(
        "expected shape: on correlated input HRJN pulls O(1) tuples; on \
         anticorrelated input it pulls ~2n and buffers ~2n while any-k's \
         TTF stays O(n) in both"
    );
}
