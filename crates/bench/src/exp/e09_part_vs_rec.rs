//! E9 — §4: "neither of the two major approaches (Lawler–Murty vs
//! recursive enumeration) dominates the other." PART variants win
//! time-to-first (no stream machinery to warm up); REC amortizes via
//! memoized shared suffixes and wins deep enumerations (TT(last)) on
//! path-shaped queries.

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

pub fn run(scale: f64) {
    banner(
        "E9: ANYK-PART vs ANYK-REC — the crossover",
        "\"neither of the two major approaches (Lawler-Murty vs recursive \
         enumeration) dominates the other\" (§4)",
    );
    let edges = (8_000.0 * scale).max(400.0) as usize;
    let nodes = (edges / 20).max(8) as u64;
    let inst = path_instance(6, edges, nodes, WeightDist::Uniform, 17);
    println!(
        "workload: 6-path, {} edges/relation over {} nodes — long chain \
         maximizes suffix sharing",
        edges, nodes
    );

    let ks = [1usize, 100, 10_000, 1_000_000];
    let mut t = Table::new(["k", "part_lazy_TT(k)", "rec_TT(k)", "winner"]);
    let mut results: Vec<(usize, f64, f64)> = Vec::new();
    for &k in &ks {
        let (part_t, _) = {
            let (mut anyk, prep) = time(|| {
                let i = TdpInstance::<SumCost>::prepare(
                    &inst.query,
                    &inst.join_tree,
                    inst.relations_clone(),
                )
                .unwrap();
                AnyKPart::new(i, SuccessorKind::Lazy)
            });
            let (cnt, run) = time(|| anyk.by_ref().take(k).count());
            (prep + run, cnt)
        };
        let (rec_t, _) = {
            let (mut anyk, prep) = time(|| {
                let i = TdpInstance::<SumCost>::prepare(
                    &inst.query,
                    &inst.join_tree,
                    inst.relations_clone(),
                )
                .unwrap();
                AnyKRec::new(i)
            });
            let (cnt, run) = time(|| anyk.by_ref().take(k).count());
            (prep + run, cnt)
        };
        results.push((k, part_t, rec_t));
        t.row([
            k.to_string(),
            fmt_secs(part_t),
            fmt_secs(rec_t),
            if part_t <= rec_t { "part" } else { "rec" }.to_string(),
        ]);
    }
    t.print();
    println!("expected shape: part wins small k; rec catches up (or wins) as k grows");
}
