//! E10 — §4: "What types of ranking functions can be supported
//! efficiently?" Any monotone selective dioid works — including `max`,
//! which has no inverse, and lexicographic, which is not commutative.
//! We measure the overhead of each on the same instance.

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::{LexCost, MaxCost, ProdCost, RankingFunction, SumCost};
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

fn measure<R: RankingFunction>(
    inst: &anyk_workloads::patterns::AcyclicInstance,
    k: usize,
) -> (f64, f64) {
    let (mut anyk, prep) = time(|| {
        let i =
            TdpInstance::<R>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        AnyKPart::new(i, SuccessorKind::Lazy)
    });
    let (got, run) = time(|| {
        let mut last: Option<R::Cost> = None;
        let mut n = 0usize;
        for a in anyk.by_ref().take(k) {
            if let Some(l) = &last {
                assert!(l <= &a.cost, "order violation");
            }
            last = Some(a.cost);
            n += 1;
        }
        n
    });
    let _ = got;
    (prep, run)
}

pub fn run(scale: f64) {
    banner(
        "E10: ranking functions — sum / max / product / lexicographic",
        "\"What types of ranking functions can be supported efficiently?\" (§1/§4)",
    );
    let edges = (20_000.0 * scale).max(500.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let inst = path_instance(3, edges, nodes, WeightDist::Uniform, 23);
    let k = 10_000;
    let mut t = Table::new(["ranking", "prep", "enum_TT(10k)"]);
    let (p, r) = measure::<SumCost>(&inst, k);
    t.row(["sum".to_string(), fmt_secs(p), fmt_secs(r)]);
    let (p, r) = measure::<MaxCost>(&inst, k);
    t.row(["max (no inverse!)".to_string(), fmt_secs(p), fmt_secs(r)]);
    let (p, r) = measure::<ProdCost>(&inst, k);
    t.row(["product".to_string(), fmt_secs(p), fmt_secs(r)]);
    let (p, r) = measure::<LexCost>(&inst, k);
    t.row(["lexicographic".to_string(), fmt_secs(p), fmt_secs(r)]);
    t.print();
    println!(
        "expected shape: sum/max/product comparable; lex pays a constant \
         factor for vector costs — all four enumerate in order"
    );
}
