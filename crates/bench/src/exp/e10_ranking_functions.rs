//! E10 — §4: "What types of ranking functions can be supported
//! efficiently?" Any monotone selective dioid works — including `max`,
//! which has no inverse, and lexicographic, which is not commutative.
//! We measure the overhead of each on the same instance.
//!
//! This experiment runs through the unified `Engine`: the ranking is
//! a *runtime* `RankSpec` value, exactly as a serving deployment would
//! switch it per request — one code path for all four rankings.

use crate::util::{banner, fmt_secs, time, Table};
use anyk_engine::{Engine, RankSpec};
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;

fn measure(
    engine: &Engine,
    q: &anyk_query::cq::ConjunctiveQuery,
    rank: RankSpec,
    k: usize,
) -> (f64, f64) {
    let (mut stream, prep) = time(|| {
        engine
            .query(q.clone())
            .rank_by(rank)
            .plan()
            .expect("acyclic instance plans")
    });
    let (n, run) = time(|| {
        let mut last = None;
        let mut n = 0usize;
        for a in stream.by_ref().take(k) {
            if let Some(l) = &last {
                assert!(l <= &a.cost, "order violation");
            }
            last = Some(a.cost);
            n += 1;
        }
        n
    });
    let _ = n;
    (prep, run)
}

pub fn run(scale: f64) {
    banner(
        "E10: ranking functions — sum / max / product / lexicographic",
        "\"What types of ranking functions can be supported efficiently?\" (§1/§4)",
    );
    let edges = (20_000.0 * scale).max(500.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let inst = path_instance(3, edges, nodes, WeightDist::Uniform, 23);
    let engine = Engine::from_query_bindings(&inst.query, inst.relations_clone());
    let k = 10_000;
    let mut t = Table::new(["ranking", "prep", "enum_TT(10k)"]);
    for (label, rank) in [
        ("sum", RankSpec::Sum),
        ("max (no inverse!)", RankSpec::Max),
        ("product", RankSpec::Prod),
        ("lexicographic", RankSpec::Lex),
    ] {
        let (p, r) = measure(&engine, &inst.query, rank, k);
        t.row([label.to_string(), fmt_secs(p), fmt_secs(r)]);
    }
    t.print();
    println!(
        "expected shape: sum/max/product comparable; lex pays a constant \
         factor for vector costs — all four enumerate in order \
         (all through Engine with runtime RankSpec)"
    );
}
