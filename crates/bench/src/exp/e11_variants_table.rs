//! E11 — the companion paper's variants comparison: all five ANYK-PART
//! successor orders, ANYK-REC, and the batch baselines on path and star
//! queries: preprocessing, TT(1), TT(1000), TT(last), and peak pending
//! candidates (the All variant's memory flood).

use crate::util::{banner, fmt_secs, time, Table};
use anyk_core::batch::BatchSorted;
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::{path_instance, star_instance, AcyclicInstance};

fn bench_part(inst: &AcyclicInstance, kind: SuccessorKind, t: &mut Table, label: &str) {
    let (mut anyk, prep) = time(|| {
        let i =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        AnyKPart::new(i, kind)
    });
    let (_, t1) = time(|| anyk.next());
    let (_, t1k) = time(|| anyk.by_ref().take(999).count());
    let (total, tlast) = time(|| 1000 + anyk.by_ref().count());
    t.row([
        label.to_string(),
        fmt_secs(prep),
        fmt_secs(prep + t1),
        fmt_secs(prep + t1 + t1k),
        fmt_secs(prep + t1 + t1k + tlast),
        total.to_string(),
        anyk.peak_pending().to_string(),
    ]);
}

fn bench_all(inst: &AcyclicInstance, name: &str) {
    println!("\n--- workload: {name} ---");
    // Warmup: one full enumeration so the allocator reaches steady state
    // (otherwise the first variant measures against a cold heap and the
    // rest pay for reclaiming its freed arena).
    {
        let i =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let _ = AnyKPart::new(i, SuccessorKind::Lazy).count();
    }
    let mut t = Table::new([
        "variant",
        "prep",
        "TT(1)",
        "TT(1k)",
        "TT(last)",
        "answers",
        "peak_pending",
    ]);
    for kind in SuccessorKind::ALL_KINDS {
        bench_part(inst, kind, &mut t, kind.name());
    }
    // REC.
    {
        let (mut anyk, prep) = time(|| {
            let i = TdpInstance::<SumCost>::prepare(
                &inst.query,
                &inst.join_tree,
                inst.relations_clone(),
            )
            .unwrap();
            AnyKRec::new(i)
        });
        let (_, t1) = time(|| anyk.next());
        let (_, t1k) = time(|| anyk.by_ref().take(999).count());
        let (total, tlast) = time(|| 1000 + anyk.by_ref().count());
        t.row([
            "Rec".to_string(),
            fmt_secs(prep),
            fmt_secs(prep + t1),
            fmt_secs(prep + t1 + t1k),
            fmt_secs(prep + t1 + t1k + tlast),
            total.to_string(),
            "-".to_string(),
        ]);
    }
    // Batch.
    {
        let (mut batch, prep) = time(|| {
            BatchSorted::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone())
        });
        let (_, t1) = time(|| batch.next());
        let (_, t1k) = time(|| batch.by_ref().take(999).count());
        let (total, tlast) = time(|| 1000 + batch.by_ref().count());
        t.row([
            "Batch-sort".to_string(),
            fmt_secs(prep),
            fmt_secs(prep + t1),
            fmt_secs(prep + t1 + t1k),
            fmt_secs(prep + t1 + t1k + tlast),
            total.to_string(),
            "-".to_string(),
        ]);
    }
    t.print();
}

pub fn run(scale: f64) {
    banner(
        "E11: any-k variants — Eager / All / Take2 / Lazy / Quick / Rec / Batch",
        "Part 3's \"empirical comparison of the most promising approaches\"",
    );
    let edges = (5_000.0 * scale).max(300.0) as usize;
    // Degree ~6 keeps the full output in the hundreds of thousands, so
    // TT(last) is measurable without the Lawler arena dominating memory.
    let path = path_instance(4, edges, (edges / 6).max(8) as u64, WeightDist::Uniform, 31);
    bench_all(&path, &format!("4-path, {edges} edges/relation"));
    let star = star_instance(3, edges, (edges / 6).max(8) as u64, WeightDist::Uniform, 37);
    bench_all(&star, &format!("3-star, {edges} edges/relation"));
    println!(
        "\nexpected shape: Eager pays the largest prep (full sorts); All \
         floods the queue (peak_pending); Take2/Lazy/Quick balance; batch \
         TT(1) ~ TT(last)"
    );
}
