//! E12 — the width numbers the paper quotes, computed by our own
//! solvers: fractional edge cover rho* (AGM exponent), fractional
//! hypertree width (single-tree decompositions), and submodular width
//! (union of trees) for the tutorial's example queries.
//!
//! Paper quotes: acyclic queries have width 1 (§3); triangle rho* = 1.5
//! (§3's O(n^1.5)); the 4-cycle has fhw = 2 but subw = 1.5 (§3).

use crate::util::{banner, Table};
use anyk_query::agm::{agm_bound, fractional_edge_cover, integral_edge_cover};
use anyk_query::cq::{cycle_query, path_query, star_query, triangle_query, ConjunctiveQuery};
use anyk_query::cycles::{cycle_length, cycle_submodular_width};
use anyk_query::decompose::fhw_exact;
use anyk_query::gyo::is_acyclic;
use anyk_query::hypergraph::Hypergraph;

fn describe(name: &str, q: &ConjunctiveQuery, t: &mut Table) {
    let h = Hypergraph::of_query(q);
    let rho = fractional_edge_cover(&h, h.all_vars())
        .map(|c| c.value)
        .unwrap_or(f64::NAN);
    let rho_int = integral_edge_cover(&h, h.all_vars())
        .map(|c| c as f64)
        .unwrap_or(f64::NAN);
    let fhw = fhw_exact(&h).width;
    let subw = if is_acyclic(q) {
        1.0
    } else if let Some(l) = cycle_length(q) {
        cycle_submodular_width(l)
    } else {
        fhw // generic fallback: subw <= fhw
    };
    let n = 1_000usize;
    let agm = agm_bound(&h, &vec![n; q.num_atoms()]).unwrap_or(f64::NAN);
    t.row([
        name.to_string(),
        if is_acyclic(q) { "yes" } else { "no" }.to_string(),
        format!("{rho:.3}"),
        format!("{rho_int:.0}"),
        format!("{fhw:.3}"),
        format!("{subw:.3}"),
        format!("{agm:.3e}"),
    ]);
}

pub fn run(_scale: f64) {
    banner(
        "E12: width parameters and AGM bounds of the example queries",
        "acyclic d = 1; triangle rho* = 1.5; 4-cycle fhw = 2 vs subw = 1.5; \
         l-cycle subw = 2 - 1/ceil(l/2) (§3)",
    );
    let mut t = Table::new([
        "query",
        "acyclic",
        "rho*",
        "rho_int",
        "fhw",
        "subw",
        "AGM(n=1e3)",
    ]);
    describe("2-path", &path_query(2), &mut t);
    describe("4-path", &path_query(4), &mut t);
    describe("3-star", &star_query(3), &mut t);
    describe("triangle", &triangle_query(), &mut t);
    describe("4-cycle", &cycle_query(4), &mut t);
    describe("5-cycle", &cycle_query(5), &mut t);
    describe("6-cycle", &cycle_query(6), &mut t);
    t.print();
    println!("paper-quoted checks: triangle rho* = fhw = 1.5; 4-cycle fhw = 2, subw = 1.5; acyclic fhw = 1");
}
