//! E13 (ablation) — §3: "submodular width \[decomposes\] a cyclic query
//! into a union of multiple trees ... This enables lower widths
//! compared to decompositions to a single tree. For example, on the
//! 4-cycle ... the fractional hypertree width \[is\] d = 2. In contrast,
//! submodular width is 1.5."
//!
//! We run ranked 4-cycle enumeration twice — through the single-tree
//! fhw = 2 decomposition (`decomposed_ranked_part`) and through the
//! union-of-trees subw = 1.5 plan (`c4_ranked_part`) — and compare
//! preprocessing + TT(k) scaling on hub-skewed inputs where the gap is
//! asymptotic, not just constant.

use crate::util::{banner, fmt_secs, loglog_slope, time, Table};
use anyk_core::cyclic::c4_ranked_part;
use anyk_core::decomposed::decomposed_ranked_part;
use anyk_core::ranking::SumCost;
use anyk_core::succorder::SuccessorKind;
use anyk_query::cq::cycle_query;
use anyk_query::cycles::heavy_threshold;
use anyk_query::decompose::fhw_exact;
use anyk_query::hypergraph::Hypergraph;
use anyk_workloads::adversarial::worst_case_triangle;

pub fn run(scale: f64) {
    banner(
        "E13 (ablation): 4-cycle ranked — union-of-trees (subw 1.5) vs single tree (fhw 2)",
        "\"submodular width is 1.5 and hence algorithms like PANDA that rely \
         on decompositions into multiple trees achieve complexity O~(n^1.5 + r)\" (§3)",
    );
    let q = cycle_query(4);
    let h = Hypergraph::of_query(&q);
    let ghd = fhw_exact(&h);
    println!(
        "single-tree decomposition width (fhw): {:.2}; union-of-trees plan width (subw): 1.50",
        ghd.width
    );

    let k = 100usize;
    let mut t = Table::new(["n", "subw_TT(100)", "fhw_TT(100)", "speedup"]);
    let mut pts_subw = Vec::new();
    let mut pts_fhw = Vec::new();
    for &b in &[200usize, 400, 800, 1600] {
        let n = (b as f64 * scale).max(50.0) as usize;
        let tri = worst_case_triangle(n, 13);
        let e = tri[0].clone();
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let thr = heavy_threshold(rels[0].len());

        let (subw_costs, t_subw) = time(|| {
            c4_ranked_part::<SumCost>(&rels, thr, SuccessorKind::Lazy)
                .take(k)
                .map(|a| a.cost.get())
                .collect::<Vec<_>>()
        });
        let (fhw_costs, t_fhw) = time(|| {
            decomposed_ranked_part::<SumCost>(&q, &rels, &ghd, SuccessorKind::Lazy)
                .take(k)
                .map(|a| a.cost.get())
                .collect::<Vec<_>>()
        });
        // The two plans must agree on the ranked costs.
        assert_eq!(subw_costs.len(), fhw_costs.len());
        for (a, b) in subw_costs.iter().zip(&fhw_costs) {
            assert!((a - b).abs() < 1e-9, "plans disagree: {a} vs {b}");
        }
        pts_subw.push((n as f64, t_subw));
        pts_fhw.push((n as f64, t_fhw));
        t.row([
            n.to_string(),
            fmt_secs(t_subw),
            fmt_secs(t_fhw),
            format!("{:.1}x", t_fhw / t_subw),
        ]);
    }
    t.print();
    println!(
        "fitted exponent: union-of-trees ~ n^{:.2} (paper: 1.5), single tree ~ n^{:.2} (paper: 2)",
        loglog_slope(&pts_subw),
        loglog_slope(&pts_fhw)
    );
}
