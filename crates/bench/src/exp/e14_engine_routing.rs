//! E14 — the unified `Engine` as a serving surface: one entry point,
//! planner-chosen route per query shape, runtime ranking.
//!
//! Two claims measured:
//!
//! 1. **Routing is free at enumeration time** — on an acyclic path the
//!    Engine's erased stream pays only a boxed-iterator dispatch over
//!    the hand-wired `AnyKPart` (same algorithm underneath).
//! 2. **Every shape gets its specialized plan** — triangle and 4-cycle
//!    take the width-1.5 plans, the 5-cycle falls back to a GHD, all
//!    through the same four lines of caller code.

use crate::util::{banner, fmt_secs, time, write_bench_json, Json, Table};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::SumCost;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_engine::{Engine, RankSpec};
use anyk_query::cq::ConjunctiveQuery;
use anyk_storage::Relation;
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::{cycle_instance, path_instance};

fn engine_row(
    t: &mut Table,
    label: &str,
    q: &ConjunctiveQuery,
    rels: Vec<Relation>,
    k: usize,
) -> Json {
    let engine = Engine::from_query_bindings(q, rels);
    let plan = engine.query(q.clone()).explain().expect("plannable");
    let (mut stream, prep) = time(|| {
        engine
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .expect("plannable")
    });
    let (n, run) = time(|| stream.by_ref().take(k).count());
    t.row([
        label.to_string(),
        plan.route.label().to_string(),
        format!("{:.2}", plan.width),
        fmt_secs(prep),
        fmt_secs(run),
        n.to_string(),
    ]);
    Json::obj([
        ("workload", Json::Str(label.to_string())),
        ("route", Json::Str(plan.route.label().to_string())),
        ("width", Json::Num(plan.width)),
        ("prep_s", Json::Num(prep)),
        ("ttk_s", Json::Num(run)),
        ("answers", Json::Int(n as u64)),
    ])
}

pub fn run(scale: f64) {
    banner(
        "E14: unified Engine — planner-routed ranked enumeration",
        "one contract (\"ranked order, any k, optimal TT(k)\") for every query shape (§1)",
    );
    let k = 1_000;
    let edges = (10_000.0 * scale).max(400.0) as usize;
    let nodes = (edges / 10).max(10) as u64;

    let mut t = Table::new(["workload", "route", "width", "prep", "TT(1k)", "answers"]);
    let mut workloads = Vec::new();
    let path = path_instance(3, edges, nodes, WeightDist::Uniform, 23);
    workloads.push(engine_row(
        &mut t,
        "path-3",
        &path.query,
        path.relations_clone(),
        k,
    ));

    // Cyclic shapes run on a sparser graph: their preprocessing is
    // O~(n^1.5) / O~(n^fhw).
    let cyc_edges = (edges / 10).max(200);
    let cyc_nodes = ((cyc_edges / 5).max(10)) as u64;
    for (label, len) in [("triangle", 3usize), ("cycle-4", 4), ("cycle-5", 5)] {
        let (q, rels) = cycle_instance(len, cyc_edges, cyc_nodes, WeightDist::Uniform, None, 29);
        workloads.push(engine_row(&mut t, label, &q, rels, k));
    }
    t.print();

    // Dispatch overhead: Engine vs hand-wired AnyKPart on the same
    // acyclic instance (identical algorithm, erased vs concrete).
    let engine = Engine::from_query_bindings(&path.query, path.relations_clone());
    let (ne, te) = time(|| {
        let stream = engine
            .query(path.query.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .expect("plannable");
        stream.take(k).count()
    });
    let (nh, th) = time(|| {
        let inst =
            TdpInstance::<SumCost>::prepare(&path.query, &path.join_tree, path.relations_clone())
                .expect("tree matches");
        AnyKPart::new(inst, SuccessorKind::Lazy).take(k).count()
    });
    assert_eq!(ne, nh, "engine and hand-wired agree on answer count");
    println!(
        "dispatch overhead on path-3 (prep+TT({k})): engine {} vs hand-wired {} ({:.2}x)",
        fmt_secs(te),
        fmt_secs(th),
        te / th.max(1e-12),
    );
    println!(
        "expected shape: same route costs as the hand-wired engines; \
         boxed dispatch within a small constant of direct calls"
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E14".to_string())),
        ("scale", Json::Num(scale)),
        ("k", Json::Int(k as u64)),
        ("edges", Json::Int(edges as u64)),
        ("workloads", Json::Arr(workloads)),
        (
            "dispatch_overhead_path3",
            Json::obj([
                ("engine_s", Json::Num(te)),
                ("hand_wired_s", Json::Num(th)),
                ("ratio", Json::Num(te / th.max(1e-12))),
                ("answers", Json::Int(ne as u64)),
            ]),
        ),
    ]);
    write_bench_json("BENCH_E14.json", &doc).expect("write BENCH_E14.json");
}
