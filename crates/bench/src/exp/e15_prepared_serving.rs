//! E15 — prepared queries over shared storage: the serving-side payoff
//! of the paper's TTF-vs-TT(k) decomposition.
//!
//! Five claims measured:
//!
//! 1. **Prepared re-execution skips preprocessing** — a cold
//!    `plan()` pays the full reducer + T-DP on every call; a
//!    `PreparedQuery::stream()` pays only the per-answer delay side.
//!    TTF of a prepared re-execution must be orders of magnitude (≥
//!    10×) below a cold plan on a ≥100k-row acyclic query.
//! 2. **Prepared REC streams are serving-grade too** — `AnyKRec` used
//!    to allocate O(n) stream shells at spawn; lazy allocation makes a
//!    prepared REC stream's TTF proportional to the answers pulled.
//!    Asserted: prepared REC TTF ≥ 5× below a cold REC plan.
//! 3. **The triangle route's first stream skips the sort** — the
//!    prepared artifact defers its O(r log r) sort; the first stream
//!    is a lazy index-heap (O(r) build), the second spawn installs the
//!    shared sorted artifact. Asserted: first-stream TTF beats the
//!    sort-then-stream baseline at full scale.
//! 4. **The plan cache amortizes ad-hoc callers automatically** — the
//!    second `plan()` on the same engine hits the cache and behaves
//!    like a prepared stream.
//! 5. **Concurrent serving scales** — N threads pulling full top-k
//!    streams from one shared `Engine`/`PreparedQuery` multiply
//!    throughput (enumeration is embarrassingly parallel over the
//!    shared immutable prepared state).

use crate::util::{banner, fmt_secs, time, write_bench_json, Json, Table};
use anyk_core::cyclic::{wco_ranked_materialize, SortedAnswers};
use anyk_core::SumCost;
use anyk_engine::{AnyKVariant, Engine, RankSpec};
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::{cycle_instance, path_instance};
use std::thread;

pub fn run(scale: f64) {
    banner(
        "E15: prepared queries — cold plan vs prepared re-execution, concurrent serving",
        "preprocessing once, per-answer delay many times (§1's TTF/TT(k) split as an API)",
    );
    let edges = (100_000.0 * scale).max(2_000.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let k = 1_000usize;
    let reps = 5;
    let inst = path_instance(3, edges, nodes, WeightDist::Uniform, 41);
    let q = inst.query.clone();
    let n_total: usize = inst.relations.iter().map(|r| r.len()).sum();

    // Cold: a fresh engine per repetition so the plan cache cannot
    // help; TTF = plan (preprocessing) + first answer.
    let mut cold_ttf = f64::INFINITY;
    for _ in 0..reps {
        let engine = Engine::from_query_bindings(&q, inst.relations_clone());
        let (first, t) = time(|| {
            engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some(), "instance must have answers");
        cold_ttf = cold_ttf.min(t);
    }

    // Prepared: route + preprocess once, then re-execute.
    let engine = Engine::from_query_bindings(&q, inst.relations_clone());
    let (prepared, prep_time) =
        time(|| engine.prepare(q.clone(), RankSpec::Sum).expect("plannable"));
    let mut prep_ttf = f64::INFINITY;
    for _ in 0..reps {
        let (first, t) = time(|| prepared.stream().next());
        assert!(first.is_some());
        prep_ttf = prep_ttf.min(t);
    }

    // Cached ad-hoc: same engine, `plan()` again — hits the cache.
    let mut cached_ttf = f64::INFINITY;
    for _ in 0..reps {
        let (first, t) = time(|| {
            engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some());
        cached_ttf = cached_ttf.min(t);
    }

    let mut t = Table::new([
        "n (rows)",
        "cold plan() TTF",
        "prepare (once)",
        "prepared TTF",
        "cached plan() TTF",
        "cold/prepared",
    ]);
    t.row([
        n_total.to_string(),
        fmt_secs(cold_ttf),
        fmt_secs(prep_time),
        fmt_secs(prep_ttf),
        fmt_secs(cached_ttf),
        format!("{:.0}x", cold_ttf / prep_ttf.max(1e-12)),
    ]);
    t.print();
    let speedup = cold_ttf / prep_ttf.max(1e-12);
    // The >= 10x bound is the acceptance criterion at full scale
    // (>= 100k rows). At smoke scales the prepared TTF sits in the
    // microsecond range where timer noise on shared CI runners
    // dominates, so there it is reported rather than asserted.
    if scale >= 1.0 {
        assert!(
            speedup >= 10.0,
            "prepared re-execution TTF must be >= 10x faster than a cold plan \
             (got {speedup:.1}x: cold {cold_ttf:.6}s vs prepared {prep_ttf:.9}s)"
        );
    } else if speedup < 10.0 {
        println!("NOTE: speedup below the 10x full-scale bound at this smoke scale ({scale})");
    }
    println!(
        "prepared re-execution reaches the first answer {speedup:.0}x faster than a cold \
         plan() (acceptance: >= 10x at scale >= 1)"
    );

    // --- REC TTF: cold plan vs prepared stream. ---
    // AnyKRec allocates stream shells lazily on first touch, so a
    // prepared REC stream's spawn cost is O(answers pulled) — this is
    // the bound the ≥5x assertion pins against regression.
    let rec_engine = Engine::from_query_bindings(&q, inst.relations_clone());
    let prepared_rec = rec_engine
        .query(q.clone())
        .rank_by(RankSpec::Sum)
        .with_variant(AnyKVariant::Rec)
        .prepare()
        .expect("plannable");
    let mut rec_prep_ttf = f64::INFINITY;
    for _ in 0..reps {
        let (first, t) = time(|| prepared_rec.stream().next());
        assert!(first.is_some());
        rec_prep_ttf = rec_prep_ttf.min(t);
    }
    let mut rec_cold_ttf = f64::INFINITY;
    for _ in 0..reps {
        let engine = Engine::from_query_bindings(&q, inst.relations_clone());
        let (first, t) = time(|| {
            engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .with_variant(AnyKVariant::Rec)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some());
        rec_cold_ttf = rec_cold_ttf.min(t);
    }
    let rec_speedup = rec_cold_ttf / rec_prep_ttf.max(1e-12);
    let mut t = Table::new([
        "variant",
        "cold plan() TTF",
        "prepared TTF",
        "cold/prepared",
    ]);
    t.row([
        "PART(Lazy)".to_string(),
        fmt_secs(cold_ttf),
        fmt_secs(prep_ttf),
        format!("{:.0}x", cold_ttf / prep_ttf.max(1e-12)),
    ]);
    t.row([
        "REC".to_string(),
        fmt_secs(rec_cold_ttf),
        fmt_secs(rec_prep_ttf),
        format!("{rec_speedup:.0}x"),
    ]);
    t.print();
    // The CI smoke run executes this at scale 0.1: the bound holds
    // there too (lazy spawn is microseconds against a multi-ms cold
    // T-DP), so a regression to O(n) spawn fails the smoke run.
    if scale >= 0.1 {
        assert!(
            rec_speedup >= 5.0,
            "prepared REC stream TTF must be >= 5x faster than a cold REC plan \
             (got {rec_speedup:.1}x: cold {rec_cold_ttf:.6}s vs prepared {rec_prep_ttf:.9}s)"
        );
    } else if rec_speedup < 5.0 {
        println!("NOTE: REC speedup below the 5x bound at this smoke scale ({scale})");
    }
    println!(
        "prepared REC stream reaches the first answer {rec_speedup:.0}x faster than a cold \
         REC plan (acceptance: >= 5x at scale >= 0.1)"
    );

    // --- Triangle route: lazy-heap first stream vs the full sort. ---
    let t_edges = (30_000.0 * scale).max(1_500.0) as usize;
    let t_nodes = (t_edges / 40).max(8) as u64;
    let (tq, trels) = cycle_instance(3, t_edges, t_nodes, WeightDist::Uniform, None, 97);
    let tri_engine = Engine::from_query_bindings(&tq, trels.clone());
    let (tri_prepared, tri_prep_time) = time(|| {
        tri_engine
            .prepare(tq.clone(), RankSpec::Sum)
            .expect("plannable")
    });
    assert_eq!(
        tri_prepared.sort_deferred(),
        Some(true),
        "triangle prepare must materialize without sorting"
    );
    let k_tri = 10usize;
    let (top1, tri_first_ttf) = time(|| tri_prepared.stream().top_k(k_tri));
    assert!(!top1.is_empty(), "triangle instance must have answers");
    assert_eq!(
        tri_prepared.sort_deferred(),
        Some(true),
        "a one-shot top-k must never pay the O(r log r) sort"
    );
    let (top2, tri_second_ttf) = time(|| tri_prepared.stream().top_k(k_tri)); // pays the sort
    assert_eq!(
        tri_prepared.sort_deferred(),
        Some(false),
        "the second stream installs the shared sorted artifact"
    );
    let (top3, tri_cursor_ttf) = time(|| tri_prepared.stream().top_k(k_tri)); // zero-copy cursor
    assert_eq!(top1, top2, "lazy heap and sorted cursor agree");
    assert_eq!(top2, top3);
    // Baseline: what the old prepare paid — sort everything, then
    // stream (same materialized items, so the comparison is pure
    // heapify-vs-sort).
    let items = wco_ranked_materialize::<SumCost>(&tq, &trels);
    let r = items.len();
    let (_, sort_ttf) = time(move || {
        let sorted = SortedAnswers::new(items);
        sorted.stream().next().is_some()
    });
    let mut t = Table::new([
        "r (triangles)",
        "materialize (prepare)",
        "1st stream top-10 (lazy heap)",
        "2nd stream (sort+cursor)",
        "3rd stream (cursor)",
        "sort-then-stream baseline",
    ]);
    t.row([
        r.to_string(),
        fmt_secs(tri_prep_time),
        fmt_secs(tri_first_ttf),
        fmt_secs(tri_second_ttf),
        fmt_secs(tri_cursor_ttf),
        fmt_secs(sort_ttf),
    ]);
    t.print();
    if scale >= 1.0 {
        assert!(
            tri_first_ttf < sort_ttf,
            "the lazy-heap first stream must beat sort-then-stream \
             (got {tri_first_ttf:.6}s vs {sort_ttf:.6}s over r = {r})"
        );
    } else if tri_first_ttf >= sort_ttf {
        println!("NOTE: lazy heap below sort baseline only expected at scale >= 1 ({scale})");
    }
    println!(
        "triangle one-shot top-{k_tri} first-stream TTF {} vs sort-then-stream {} over \
         r = {r} answers (the deferred-sort state machine is asserted at every scale)",
        fmt_secs(tri_first_ttf),
        fmt_secs(sort_ttf)
    );

    // Concurrent serving: T threads, each pulling a full top-k stream
    // from the one shared prepared query.
    let mut t = Table::new([
        "threads",
        "answers",
        "wall",
        "answers/s",
        "scaling vs 1 thread",
    ]);
    let mut base_rate = 0.0f64;
    let mut scaling_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (total, wall) = time(|| {
            thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let p = prepared.clone();
                        s.spawn(move || p.stream().top_k(k).len())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .sum::<usize>()
            })
        });
        let rate = total as f64 / wall.max(1e-12);
        if threads == 1 {
            base_rate = rate;
        }
        t.row([
            threads.to_string(),
            total.to_string(),
            fmt_secs(wall),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1e-12)),
        ]);
        scaling_rows.push(Json::obj([
            ("threads", Json::Int(threads as u64)),
            ("answers", Json::Int(total as u64)),
            ("wall_s", Json::Num(wall)),
            ("answers_per_s", Json::Num(rate)),
            ("scaling_vs_1", Json::Num(rate / base_rate.max(1e-12))),
        ]));
    }
    t.print();
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "expected shape: prepared TTF pays only stream seeding (root-group heapify), \
         cold TTF pays full preprocessing; throughput scales with cores ({cores} \
         available here) since streams share immutable prepared state without locks"
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E15".to_string())),
        ("scale", Json::Num(scale)),
        ("n_rows", Json::Int(n_total as u64)),
        ("k", Json::Int(k as u64)),
        (
            "acyclic",
            Json::obj([
                ("cold_ttf_s", Json::Num(cold_ttf)),
                ("prepare_once_s", Json::Num(prep_time)),
                ("prepared_ttf_s", Json::Num(prep_ttf)),
                ("cached_plan_ttf_s", Json::Num(cached_ttf)),
                ("cold_over_prepared", Json::Num(speedup)),
            ]),
        ),
        (
            "rec",
            Json::obj([
                ("cold_ttf_s", Json::Num(rec_cold_ttf)),
                ("prepared_ttf_s", Json::Num(rec_prep_ttf)),
                ("cold_over_prepared", Json::Num(rec_speedup)),
            ]),
        ),
        (
            "triangle_deferred_sort",
            Json::obj([
                ("answers_materialized", Json::Int(r as u64)),
                ("materialize_s", Json::Num(tri_prep_time)),
                ("first_stream_topk_s", Json::Num(tri_first_ttf)),
                ("second_stream_sort_s", Json::Num(tri_second_ttf)),
                ("third_stream_cursor_s", Json::Num(tri_cursor_ttf)),
                ("sort_then_stream_baseline_s", Json::Num(sort_ttf)),
            ]),
        ),
        ("concurrency", Json::Arr(scaling_rows)),
        ("cores", Json::Int(cores as u64)),
    ]);
    write_bench_json("BENCH_E15.json", &doc).expect("write BENCH_E15.json");
}
