//! E15 — prepared queries over shared storage: the serving-side payoff
//! of the paper's TTF-vs-TT(k) decomposition.
//!
//! Three claims measured:
//!
//! 1. **Prepared re-execution skips preprocessing** — a cold
//!    `plan()` pays the full reducer + T-DP on every call; a
//!    `PreparedQuery::stream()` pays only the per-answer delay side.
//!    TTF of a prepared re-execution must be orders of magnitude (≥
//!    10×) below a cold plan on a ≥100k-row acyclic query.
//! 2. **The plan cache amortizes ad-hoc callers automatically** — the
//!    second `plan()` on the same engine hits the cache and behaves
//!    like a prepared stream.
//! 3. **Concurrent serving scales** — N threads pulling full top-k
//!    streams from one shared `Engine`/`PreparedQuery` multiply
//!    throughput (enumeration is embarrassingly parallel over the
//!    shared immutable prepared state).

use crate::util::{banner, fmt_secs, time, Table};
use anyk_engine::{Engine, RankSpec};
use anyk_workloads::graphs::WeightDist;
use anyk_workloads::patterns::path_instance;
use std::thread;

pub fn run(scale: f64) {
    banner(
        "E15: prepared queries — cold plan vs prepared re-execution, concurrent serving",
        "preprocessing once, per-answer delay many times (§1's TTF/TT(k) split as an API)",
    );
    let edges = (100_000.0 * scale).max(2_000.0) as usize;
    let nodes = (edges / 10).max(10) as u64;
    let k = 1_000usize;
    let reps = 5;
    let inst = path_instance(3, edges, nodes, WeightDist::Uniform, 41);
    let q = inst.query.clone();
    let n_total: usize = inst.relations.iter().map(|r| r.len()).sum();

    // Cold: a fresh engine per repetition so the plan cache cannot
    // help; TTF = plan (preprocessing) + first answer.
    let mut cold_ttf = f64::INFINITY;
    for _ in 0..reps {
        let engine = Engine::from_query_bindings(&q, inst.relations_clone());
        let (first, t) = time(|| {
            engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some(), "instance must have answers");
        cold_ttf = cold_ttf.min(t);
    }

    // Prepared: route + preprocess once, then re-execute.
    let engine = Engine::from_query_bindings(&q, inst.relations_clone());
    let (prepared, prep_time) =
        time(|| engine.prepare(q.clone(), RankSpec::Sum).expect("plannable"));
    let mut prep_ttf = f64::INFINITY;
    for _ in 0..reps {
        let (first, t) = time(|| prepared.stream().next());
        assert!(first.is_some());
        prep_ttf = prep_ttf.min(t);
    }

    // Cached ad-hoc: same engine, `plan()` again — hits the cache.
    let mut cached_ttf = f64::INFINITY;
    for _ in 0..reps {
        let (first, t) = time(|| {
            engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some());
        cached_ttf = cached_ttf.min(t);
    }

    let mut t = Table::new([
        "n (rows)",
        "cold plan() TTF",
        "prepare (once)",
        "prepared TTF",
        "cached plan() TTF",
        "cold/prepared",
    ]);
    t.row([
        n_total.to_string(),
        fmt_secs(cold_ttf),
        fmt_secs(prep_time),
        fmt_secs(prep_ttf),
        fmt_secs(cached_ttf),
        format!("{:.0}x", cold_ttf / prep_ttf.max(1e-12)),
    ]);
    t.print();
    let speedup = cold_ttf / prep_ttf.max(1e-12);
    // The >= 10x bound is the acceptance criterion at full scale
    // (>= 100k rows). At smoke scales the prepared TTF sits in the
    // microsecond range where timer noise on shared CI runners
    // dominates, so there it is reported rather than asserted.
    if scale >= 1.0 {
        assert!(
            speedup >= 10.0,
            "prepared re-execution TTF must be >= 10x faster than a cold plan \
             (got {speedup:.1}x: cold {cold_ttf:.6}s vs prepared {prep_ttf:.9}s)"
        );
    } else if speedup < 10.0 {
        println!("NOTE: speedup below the 10x full-scale bound at this smoke scale ({scale})");
    }
    println!(
        "prepared re-execution reaches the first answer {speedup:.0}x faster than a cold \
         plan() (acceptance: >= 10x at scale >= 1)"
    );

    // Concurrent serving: T threads, each pulling a full top-k stream
    // from the one shared prepared query.
    let mut t = Table::new([
        "threads",
        "answers",
        "wall",
        "answers/s",
        "scaling vs 1 thread",
    ]);
    let mut base_rate = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let (total, wall) = time(|| {
            thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let p = prepared.clone();
                        s.spawn(move || p.stream().top_k(k).len())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .sum::<usize>()
            })
        });
        let rate = total as f64 / wall.max(1e-12);
        if threads == 1 {
            base_rate = rate;
        }
        t.row([
            threads.to_string(),
            total.to_string(),
            fmt_secs(wall),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1e-12)),
        ]);
    }
    t.print();
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "expected shape: prepared TTF pays only stream seeding (root-group heapify), \
         cold TTF pays full preprocessing; throughput scales with cores ({cores} \
         available here) since streams share immutable prepared state without locks"
    );
}
