//! E16 — `anyk-serve` under load: N concurrent clients speaking the
//! text protocol against one shared engine.
//!
//! The serving claim behind the paper's TTF obsession: with prepared
//! state shared through the plan cache and stream spawn costing only
//! the answers pulled, a *service* can hand many clients small pages
//! of many queries concurrently — cheap first pages, no repeated
//! preprocessing. Measured here end-to-end through the protocol
//! (parse → session → cursor pages), with a mixed workload of all
//! three route families:
//!
//! * acyclic (path-3), triangle, and 4-cycle queries over one shared
//!   catalog, under rotating rankings (sum/max/min);
//! * every client pages answers `LIMIT`/`NEXT`-style and **asserts its
//!   pages are byte-identical to a direct `PreparedQuery` stream**
//!   (the protocol may never reorder, drop, or duplicate an answer);
//! * reported: throughput (answers/s), per-query TTF percentiles
//!   (time to the first page, protocol overhead included), and the
//!   engine's plan-cache hit/miss/eviction counters via `STATS`.
//!
//! Acceptance (asserted): the 8-client round completes with every
//! page byte-identical, and the plan cache serves the repeated shapes
//! (hits outnumber misses).

use crate::util::{banner, fmt_secs, time, Table};
use anyk_engine::{Engine, RankSpec};
use anyk_query::cq::{cycle_query, path_query, ConjunctiveQuery};
use anyk_serve::{encode_answer, select_text, LocalClient, Service, ServiceConfig};
use anyk_storage::Catalog;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// One workload combo: a query shape (over the shared catalog) plus a
/// ranking, pre-rendered as protocol text with its expected rows.
struct Combo {
    label: &'static str,
    select: String,
    expect: Vec<String>,
}

/// Answers each query pulls (pages of `PAGE`).
const K: usize = 50;
const PAGE: usize = 10;

pub fn run(scale: f64) {
    banner(
        "E16: anyk-serve load — concurrent protocol clients over one shared engine",
        "mixed acyclic/triangle/C4 workload; server pages asserted byte-identical to direct streams",
    );
    let edges = (15_000.0 * scale).max(900.0) as usize;
    let nodes = (edges / 30).max(6) as u64;
    let queries_per_client = ((24.0 * scale) as usize).clamp(6, 48);

    // One shared catalog: R1..R4 are edge relations every shape reuses
    // (path-3 reads R1,R2,R3; the triangle closes R1,R2,R3; the
    // 4-cycle takes all four).
    let mut catalog = Catalog::new();
    for i in 1..=4u64 {
        catalog.register(
            format!("R{i}"),
            random_edge_relation(edges, nodes, WeightDist::Uniform, None, 1000 + i * 7919),
        );
    }
    let engine = Engine::new(catalog);
    let service = Service::with_config(
        engine.clone(),
        ServiceConfig {
            max_open_cursors: 256,
            cursor_ttl: Duration::from_secs(60),
            default_page: PAGE,
        },
    );

    // The workload mix: every route family × rotating rankings. The
    // expected rows come from a direct PreparedQuery stream through
    // the same encoder the wire uses — the byte-identity baseline.
    let shapes: [(&'static str, ConjunctiveQuery); 3] = [
        ("path3", path_query(3)),
        ("triangle", cycle_query(3)),
        ("c4", cycle_query(4)),
    ];
    let ranks = [RankSpec::Sum, RankSpec::Max, RankSpec::Min];
    let (combos, prep_time) = time(|| {
        let mut combos = Vec::new();
        for (label, q) in &shapes {
            for &rank in &ranks {
                let prepared = engine
                    .prepare(q.clone(), rank)
                    .unwrap_or_else(|e| panic!("{label} × {rank}: {e}"));
                let expect: Vec<String> = prepared
                    .stream()
                    .take(K)
                    .map(|a| encode_answer(&a))
                    .collect();
                assert!(
                    !expect.is_empty(),
                    "{label} × {rank}: workload must have answers"
                );
                combos.push(Combo {
                    label,
                    select: select_text(q, rank, Some(PAGE)),
                    expect,
                });
            }
        }
        combos
    });
    println!(
        "catalog: 4 × {edges} edges over {nodes} nodes; {} combos prepared in {} \
         (shared by every client via the plan cache)",
        combos.len(),
        fmt_secs(prep_time)
    );

    let mut table = Table::new([
        "clients",
        "queries",
        "answers",
        "wall",
        "answers/s",
        "TTF p50",
        "TTF p95",
        "TTF p99",
    ]);
    for clients in [1usize, 2, 4, 8] {
        let ttfs: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let (total_answers, wall) = time(|| {
            thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let service = &service;
                        let combos = &combos;
                        let ttfs = &ttfs;
                        s.spawn(move || {
                            let mut client = LocalClient::new(service);
                            let mut answers = 0usize;
                            for i in 0..queries_per_client {
                                let combo = &combos[(c + i) % combos.len()];
                                answers += run_one_query(&mut client, combo, ttfs);
                            }
                            answers
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .sum::<usize>()
            })
        });
        let mut ttfs = ttfs.into_inner().expect("ttf lock");
        ttfs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let pct = |p: f64| -> f64 {
            if ttfs.is_empty() {
                return 0.0;
            }
            ttfs[((ttfs.len() - 1) as f64 * p).round() as usize]
        };
        table.row([
            clients.to_string(),
            (clients * queries_per_client).to_string(),
            total_answers.to_string(),
            fmt_secs(wall),
            format!("{:.0}", total_answers as f64 / wall.max(1e-12)),
            fmt_secs(pct(0.50)),
            fmt_secs(pct(0.95)),
            fmt_secs(pct(0.99)),
        ]);
    }
    table.print();

    // Cache behavior through the protocol itself.
    let mut client = LocalClient::new(&service);
    let stats_text = client.send("STATS;");
    for line in stats_text.lines().filter(|l| l.starts_with("INFO ")) {
        println!("  {}", &line[5..]);
    }
    let stats = service.stats();
    assert!(
        stats.cache.hits > stats.cache.misses,
        "the plan cache must serve the repeated workload shapes \
         (hits {} vs misses {})",
        stats.cache.hits,
        stats.cache.misses
    );
    assert_eq!(
        stats.open_cursors, 0,
        "every client paged to completion or closed its cursor"
    );
    println!(
        "acceptance: 8 concurrent clients × {queries_per_client} mixed queries, every \
         server page byte-identical to the direct PreparedQuery stream (asserted per \
         page inside each client); plan cache {} hits / {} misses / {} evictions",
        stats.cache.hits, stats.cache.misses, stats.cache.evictions
    );
}

/// Run one query to `K` answers (or exhaustion) through the protocol,
/// asserting every page against the expected byte-identical rows.
/// Returns the number of answers pulled; records the first-page TTF.
fn run_one_query(client: &mut LocalClient, combo: &Combo, ttfs: &Mutex<Vec<f64>>) -> usize {
    let mut rows: Vec<String> = Vec::new();
    let (first, ttf) = time(|| client.send(&combo.select));
    ttfs.lock().expect("ttf lock").push(ttf);
    let mut reply = first;
    loop {
        let header = reply.lines().next().expect("header").to_string();
        assert!(
            header.starts_with("OK "),
            "{}: protocol error: {reply}",
            combo.label
        );
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        let done = header.contains("done=true");
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field");
        if done {
            break;
        }
        if rows.len() >= K {
            let closed = client.send(&format!("CLOSE {cursor};"));
            assert!(closed.starts_with("OK closed="), "{closed}");
            break;
        }
        reply = client.send(&format!("NEXT {PAGE} ON {cursor};"));
    }
    assert_eq!(
        rows,
        combo.expect[..rows.len().min(combo.expect.len())],
        "{}: server pages diverged from the direct stream",
        combo.label
    );
    assert_eq!(
        rows.len(),
        combo.expect.len().min(K),
        "{}: page count mismatch",
        combo.label
    );
    rows.len()
}
