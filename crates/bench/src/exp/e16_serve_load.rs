//! E16 — `anyk-serve` under load: N concurrent TCP clients speaking
//! the text protocol against the event-loop transport.
//!
//! The serving claim behind the paper's TTF obsession: with prepared
//! state shared through the plan cache and stream spawn costing only
//! the answers pulled, a *service* can hand many clients small pages
//! of many queries concurrently — cheap first pages, no repeated
//! preprocessing. Since PR 5 the transport under test is the
//! readiness event loop (one I/O thread + a worker pool), driven
//! end-to-end over real sockets:
//!
//! * acyclic (path-3), triangle, and 4-cycle queries over one shared
//!   catalog, under rotating rankings (sum/max/min);
//! * N ∈ {8, 32, 128} concurrent `TcpClient`s (the 128 round runs at
//!   full scale; smoke runs stop at 32), each paging answers
//!   `LIMIT`/`NEXT`-style and **asserting its pages byte-identical to
//!   a direct `PreparedQuery` stream** (the protocol may never
//!   reorder, drop, or duplicate an answer);
//! * reported: throughput (answers/s), client-side TTF percentiles,
//!   and the server's own `STATS` — which must carry **non-zero
//!   p50/p95/p99 TTF and per-page histograms** and real plan-cache
//!   counters;
//! * a **silent-session scene**: a client opens a cursor on a
//!   capacity-1 service and goes mute; the shared deadline map must
//!   hand its admission slot to a second client after the TTL, with
//!   the reap observable in `STATS`.
//!
//! Acceptance (asserted): every round completes with every page
//! byte-identical, the histogram percentiles are present and
//! non-zero, zero cursors leak, hits outnumber misses, and the
//! silent session's slot is reaped.

use crate::util::{banner, fmt_secs, time, write_bench_json, Json, Table};
use anyk_engine::{Engine, RankSpec};
use anyk_query::cq::{cycle_query, path_query, ConjunctiveQuery};
use anyk_serve::{
    encode_answer, select_text, Server, Service, ServiceConfig, TcpClient, Transport,
    TransportConfig,
};
use anyk_storage::Catalog;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// One workload combo: a query shape (over the shared catalog) plus a
/// ranking, pre-rendered as protocol text with its expected rows.
struct Combo {
    label: &'static str,
    select: String,
    expect: Vec<String>,
}

/// Answers each query pulls (pages of `PAGE`).
const K: usize = 50;
const PAGE: usize = 10;

pub fn run(scale: f64) {
    banner(
        "E16: anyk-serve load — concurrent TCP clients on the event-loop transport",
        "mixed acyclic/triangle/C4 workload; pages asserted byte-identical to direct streams",
    );
    let edges = (15_000.0 * scale).max(900.0) as usize;
    let nodes = (edges / 30).max(6) as u64;
    let queries_per_client = ((24.0 * scale) as usize).clamp(6, 48);
    // The headline 128-client round needs full scale; smoke runs still
    // cover the N=32 shape the CI step asserts on.
    let client_counts: &[usize] = if scale >= 0.99 {
        &[8, 32, 128]
    } else {
        &[8, 32]
    };

    // One shared catalog: R1..R4 are edge relations every shape reuses
    // (path-3 reads R1,R2,R3; the triangle closes R1,R2,R3; the
    // 4-cycle takes all four).
    let mut catalog = Catalog::new();
    for i in 1..=4u64 {
        catalog.register(
            format!("R{i}"),
            random_edge_relation(edges, nodes, WeightDist::Uniform, None, 1000 + i * 7919),
        );
    }
    let engine = Engine::new(catalog);
    let service = Service::with_config(
        engine.clone(),
        ServiceConfig {
            max_open_cursors: 512,
            cursor_ttl: Duration::from_secs(60),
            default_page: PAGE,
            ..ServiceConfig::default()
        },
    );

    // The workload mix: every route family × rotating rankings. The
    // expected rows come from a direct PreparedQuery stream through
    // the same encoder the wire uses — the byte-identity baseline.
    let shapes: [(&'static str, ConjunctiveQuery); 3] = [
        ("path3", path_query(3)),
        ("triangle", cycle_query(3)),
        ("c4", cycle_query(4)),
    ];
    let ranks = [RankSpec::Sum, RankSpec::Max, RankSpec::Min];
    let (combos, prep_time) = time(|| {
        let mut combos = Vec::new();
        for (label, q) in &shapes {
            for &rank in &ranks {
                let prepared = engine
                    .prepare(q.clone(), rank)
                    .unwrap_or_else(|e| panic!("{label} × {rank}: {e}"));
                let expect: Vec<String> = prepared
                    .stream()
                    .take(K)
                    .map(|a| encode_answer(&a))
                    .collect();
                assert!(
                    !expect.is_empty(),
                    "{label} × {rank}: workload must have answers"
                );
                combos.push(Combo {
                    label,
                    select: select_text(q, rank, Some(PAGE)),
                    expect,
                });
            }
        }
        combos
    });
    println!(
        "catalog: 4 × {edges} edges over {nodes} nodes; {} combos prepared in {} \
         (shared by every client via the plan cache)",
        combos.len(),
        fmt_secs(prep_time)
    );

    let mut server = Server::bind_with(
        service.clone(),
        "127.0.0.1:0",
        TransportConfig {
            transport: Transport::EventLoop,
            ..TransportConfig::default()
        },
    )
    .expect("bind event-loop server");
    let addr = server.addr();

    let mut table = Table::new([
        "clients",
        "queries",
        "answers",
        "wall",
        "answers/s",
        "TTF p50",
        "TTF p95",
        "TTF p99",
    ]);
    let mut round_rows = Vec::new();
    for &clients in client_counts {
        let ttfs: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let (total_answers, wall) = time(|| {
            thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let combos = &combos;
                        let ttfs = &ttfs;
                        s.spawn(move || {
                            let mut client = TcpClient::connect(addr).expect("client connect");
                            let mut answers = 0usize;
                            for i in 0..queries_per_client {
                                let combo = &combos[(c + i) % combos.len()];
                                answers += run_one_query(&mut client, combo, ttfs);
                            }
                            answers
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .sum::<usize>()
            })
        });
        let mut ttfs = ttfs.into_inner().expect("ttf lock");
        ttfs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let pct = |p: f64| -> f64 {
            if ttfs.is_empty() {
                return 0.0;
            }
            ttfs[((ttfs.len() - 1) as f64 * p).round() as usize]
        };
        table.row([
            clients.to_string(),
            (clients * queries_per_client).to_string(),
            total_answers.to_string(),
            fmt_secs(wall),
            format!("{:.0}", total_answers as f64 / wall.max(1e-12)),
            fmt_secs(pct(0.50)),
            fmt_secs(pct(0.95)),
            fmt_secs(pct(0.99)),
        ]);
        round_rows.push(Json::obj([
            ("clients", Json::Int(clients as u64)),
            ("queries", Json::Int((clients * queries_per_client) as u64)),
            ("answers", Json::Int(total_answers as u64)),
            ("wall_s", Json::Num(wall)),
            (
                "answers_per_s",
                Json::Num(total_answers as f64 / wall.max(1e-12)),
            ),
            ("ttf_p50_s", Json::Num(pct(0.50))),
            ("ttf_p95_s", Json::Num(pct(0.95))),
            ("ttf_p99_s", Json::Num(pct(0.99))),
        ]));
    }
    table.print();

    // The server's own view, through the protocol: the percentile
    // histograms and cache counters must be there and real.
    let mut probe = TcpClient::connect(addr).expect("stats client");
    let stats_text = probe.send("STATS;").expect("STATS");
    for line in stats_text.lines().filter(|l| l.starts_with("INFO ")) {
        println!("  {}", &line[5..]);
    }
    let mut server_histograms: Vec<(String, Json)> = Vec::new();
    for field in [
        "ttf_p50_us",
        "ttf_p95_us",
        "ttf_p99_us",
        "page_p50_us",
        "page_p95_us",
        "page_p99_us",
    ] {
        let value: u64 = stats_text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("INFO {field}=")))
            .unwrap_or_else(|| panic!("STATS must carry {field}: {stats_text}"))
            .trim()
            .parse()
            .expect("numeric histogram field");
        assert!(
            value > 0,
            "{field} must be non-zero after a load round (got {stats_text})"
        );
        server_histograms.push((field.to_string(), Json::Int(value)));
    }
    let stats = service.stats();
    assert!(
        stats.cache.hits > stats.cache.misses,
        "the plan cache must serve the repeated workload shapes \
         (hits {} vs misses {})",
        stats.cache.hits,
        stats.cache.misses
    );
    assert_eq!(
        stats.open_cursors, 0,
        "every client paged to completion or closed its cursor"
    );
    assert_eq!(
        stats.cursors_opened,
        stats.cursors_closed + stats.cursors_expired,
        "cursor lifecycle accounting must balance: {stats:?}"
    );
    server.shutdown();
    println!(
        "acceptance: {} concurrent TCP clients × {queries_per_client} mixed queries on the \
         event loop, every page byte-identical to the direct PreparedQuery stream (asserted \
         per page inside each client); STATS p50/p95/p99 present and non-zero; plan cache \
         {} hits / {} misses / {} evictions; zero cursors leaked",
        client_counts.last().expect("rounds"),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E16".to_string())),
        ("scale", Json::Num(scale)),
        ("edges", Json::Int(edges as u64)),
        ("queries_per_client", Json::Int(queries_per_client as u64)),
        ("combos", Json::Int(combos.len() as u64)),
        ("prepare_s", Json::Num(prep_time)),
        ("rounds", Json::Arr(round_rows)),
        ("server_histograms", Json::Obj(server_histograms)),
        (
            "cache",
            Json::obj([
                ("hits", Json::Int(stats.cache.hits)),
                ("misses", Json::Int(stats.cache.misses)),
                ("evictions", Json::Int(stats.cache.evictions)),
            ]),
        ),
        (
            "cursors",
            Json::obj([
                ("opened", Json::Int(stats.cursors_opened)),
                ("closed", Json::Int(stats.cursors_closed)),
                ("expired", Json::Int(stats.cursors_expired)),
                ("leaked_open", Json::Int(stats.open_cursors as u64)),
            ]),
        ),
    ]);
    write_bench_json("BENCH_E16.json", &doc).expect("write BENCH_E16.json");

    silent_session_scene();
}

/// The shared-deadline-map scene: a capacity-1 service, a client that
/// opens a cursor and goes mute, and a second client whose `SELECT`
/// must inherit the slot after the TTL — no cooperation from the
/// silent session.
fn silent_session_scene() {
    let mut catalog = Catalog::new();
    catalog.register(
        "R1",
        random_edge_relation(600, 20, WeightDist::Uniform, None, 4242),
    );
    catalog.register(
        "R2",
        random_edge_relation(600, 20, WeightDist::Uniform, None, 4243),
    );
    let service = Service::with_config(
        Engine::new(catalog),
        ServiceConfig {
            max_open_cursors: 1,
            cursor_ttl: Duration::from_millis(80),
            default_page: PAGE,
            ..ServiceConfig::default()
        },
    );
    let mut server = Server::bind_with(
        service.clone(),
        "127.0.0.1:0",
        TransportConfig {
            transport: Transport::EventLoop,
            ..TransportConfig::default()
        },
    )
    .expect("bind");
    let select = "SELECT R1(a,b), R2(b,c) RANK BY sum LIMIT 5;";

    let mut silent = TcpClient::connect(server.addr()).expect("connect");
    let first = silent.send(select).expect("silent client's select");
    assert!(first.starts_with("OK cursor=0"), "{first}");

    let mut eager = TcpClient::connect(server.addr()).expect("connect");
    let rejected = eager.send(select).expect("eager client's first try");
    assert!(
        rejected.starts_with("ERR admission:"),
        "fresh cursor still holds the slot: {rejected}"
    );

    // The TTL passes; the silent client says nothing. Admission's
    // consult of the shared deadline map frees the slot.
    thread::sleep(Duration::from_millis(160));
    let granted = eager.send(select).expect("eager client's retry");
    assert!(
        granted.starts_with("OK cursor="),
        "admission must reap the silent session's slot: {granted}"
    );
    let expired = silent.send("NEXT 5 ON 0;").expect("silent client wakes");
    assert_eq!(expired, "ERR cursor: cursor 0 expired\nEND\n");
    let stats = service.stats();
    assert!(
        stats.cursors_expired >= 1,
        "reap must be counted: {stats:?}"
    );
    server.shutdown();
    println!(
        "silent-session scene: slot reaped after {}ms TTL without the owner speaking \
         (cursors_expired={}), second client admitted",
        80, stats.cursors_expired
    );
}

/// Run one query to `K` answers (or exhaustion) through the protocol,
/// asserting every page against the expected byte-identical rows.
/// Returns the number of answers pulled; records the first-page TTF.
fn run_one_query(client: &mut TcpClient, combo: &Combo, ttfs: &Mutex<Vec<f64>>) -> usize {
    let mut rows: Vec<String> = Vec::new();
    let (first, ttf) = time(|| client.send(&combo.select).expect("select round-trip"));
    ttfs.lock().expect("ttf lock").push(ttf);
    let mut reply = first;
    loop {
        let header = reply.lines().next().expect("header").to_string();
        assert!(
            header.starts_with("OK "),
            "{}: protocol error: {reply}",
            combo.label
        );
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        let done = header.contains("done=true");
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field");
        if done {
            break;
        }
        if rows.len() >= K {
            let closed = client
                .send(&format!("CLOSE {cursor};"))
                .expect("close round-trip");
            assert!(closed.starts_with("OK closed="), "{closed}");
            break;
        }
        reply = client
            .send(&format!("NEXT {PAGE} ON {cursor};"))
            .expect("next round-trip");
    }
    assert_eq!(
        rows,
        combo.expect[..rows.len().min(combo.expect.len())],
        "{}: server pages diverged from the direct stream",
        combo.label
    );
    assert_eq!(
        rows.len(),
        combo.expect.len().min(K),
        "{}: page count mismatch",
        combo.label
    );
    rows.len()
}
