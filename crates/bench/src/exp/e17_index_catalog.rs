//! E17 — the shared index catalog: a warm `plan()` is an index
//! *lookup*, a cold one is an index *build*.
//!
//! Every cyclic route (worst-case-optimal triangle, the C4 case split,
//! GHD bag materialization) starts by building sorted tries over its
//! input relations. With the catalog-resident index catalog those
//! tries are keyed by (payload identity, column order) and shared
//! across engines, plans, and sessions — so the second engine over the
//! same catalog finds every trie already resident and pays only the
//! enumeration side.
//!
//! Claims measured, per route family (triangle / C4 / GHD):
//!
//! 1. **Warm ≥ 3× cold** — cold-`plan()` TTF on a fresh engine with a
//!    warm shared index catalog is at least 3× faster than the
//!    index-build baseline (a fresh engine whose index catalog starts
//!    empty), asserted at full scale.
//! 2. **Zero builds when warm** — the build counter is asserted flat
//!    across every warm repetition: not "fast", *absent*.
//! 3. **`EXPLAIN` tells the truth** — the plan header reports
//!    `index = built` on a cold engine and `index = cached` on a warm
//!    one (asserted at every scale).

use crate::util::{banner, fmt_secs, time, write_bench_json, Json, Table};
use anyk_engine::{Engine, RankSpec};
use anyk_query::cq::{ConjunctiveQuery, QueryBuilder};
use anyk_storage::{Relation, RelationBuilder, Schema};

struct Workload {
    name: &'static str,
    query: ConjunctiveQuery,
    relations: Vec<Relation>,
}

/// Node-id base of atom `i`'s noise edges. Every atom gets a private
/// billion-wide id range, so the only tuples that join *across* atoms
/// are the planted ones — the selective serving regime this experiment
/// isolates: cold `plan()` TTF is dominated by the per-atom trie
/// sorts, warm TTF by planning plus a handful of index probes.
fn noise_base(i: usize) -> i64 {
    (i as i64 + 1) * 1_000_000_000
}

/// One atom's relation: the planted rows (weight 0.5 each, node ids
/// far below every noise range) plus `edges` random rows over
/// `[base, base + edges/2)` — average degree 2 inside the private
/// range, so no value crosses the route's heavy-degree threshold.
fn noisy_relation(planted: &[(i64, i64)], edges: usize, base: i64, seed: u64) -> Relation {
    let mut b = RelationBuilder::new(Schema::new(["src", "dst"]));
    for &(s, d) in planted {
        b.push_ints(&[s, d], 0.5);
    }
    let span = (edges as u64 / 2).max(4);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..edges {
        let s = (next() % span) as i64 + base;
        let d = (next() % span) as i64 + base;
        let w = (next() % 1_000_000) as f64 / 1_000_000.0 + 1e-6;
        b.push_ints(&[s, d], w);
    }
    b.finish()
}

/// The standard `len`-cycle with **distinct** atom names and payloads
/// (`R1(x1,x2), ..., Rlen(xlen,x1)`): route recognition is purely
/// variable-structural, so this takes the same triangle / 4-cycle
/// plans as `cycle_query`, but each atom's trie is its own catalog
/// entry — the cold side pays one sort per indexed atom. `sizes[i]` is
/// atom `i`'s noise-edge count (the 4-cycle plan probes `R1`/`R2` row
/// by row while binary-searching tries over `R3`/`R4`, so small probe
/// sides with large indexed sides maximize what the catalog can
/// amortize). A `len`-cycle is planted across the atoms: atom `i`
/// holds `(i, i+1 mod len)`.
fn distinct_cycle(name: &'static str, len: usize, sizes: &[usize], seed: u64) -> Workload {
    assert_eq!(sizes.len(), len);
    let vars: Vec<String> = (1..=len).map(|i| format!("x{i}")).collect();
    let mut qb = QueryBuilder::new();
    for i in 0..len {
        qb = qb.atom(
            format!("R{}", i + 1),
            &[vars[i].as_str(), vars[(i + 1) % len].as_str()],
        );
    }
    let relations = (0..len)
        .map(|i| {
            let planted = [(i as i64, ((i + 1) % len) as i64)];
            noisy_relation(&planted, sizes[i], noise_base(i), seed + 7919 * i as u64)
        })
        .collect();
    Workload {
        name,
        query: qb.build(),
        relations,
    }
}

struct Measurement {
    name: &'static str,
    rows: usize,
    cold_ttf: f64,
    warm_ttf: f64,
    speedup: f64,
    builds: u64,
}

fn measure(w: &Workload, reps: usize) -> Measurement {
    let rows: usize = w.relations.iter().map(Relation::len).sum();

    // Cold baseline: a fresh engine per repetition — fresh plan cache
    // *and* fresh (empty) index catalog, so every repetition pays the
    // trie builds. Min-of-reps on both sides.
    let mut cold_ttf = f64::INFINITY;
    for _ in 0..reps {
        let engine = Engine::from_query_bindings(&w.query, w.relations.clone());
        let explained = engine
            .query(w.query.clone())
            .rank_by(RankSpec::Sum)
            .explain()
            .expect("plannable");
        assert!(
            explained.explain().contains("index = built"),
            "cold engine must report index = built for {}",
            w.name
        );
        let (first, t) = time(|| {
            engine
                .query(w.query.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some(), "{} instance must have answers", w.name);
        cold_ttf = cold_ttf.min(t);
    }

    // Warm: one primer engine populates the shared catalog's index
    // catalog; each repetition then gets a *fresh* engine (fresh plan
    // cache — planning is not what's amortized here) over a clone of
    // the primer's catalog, which shares the same index catalog.
    let primer = Engine::from_query_bindings(&w.query, w.relations.clone());
    let warmup = primer
        .query(w.query.clone())
        .rank_by(RankSpec::Sum)
        .plan()
        .expect("plannable")
        .next();
    assert!(warmup.is_some());
    let builds = primer.index_stats().builds;
    assert!(builds > 0, "the warm-up must have built tries");

    let mut warm_ttf = f64::INFINITY;
    for _ in 0..reps {
        let engine = Engine::new((*primer.catalog()).clone());
        let explained = engine
            .query(w.query.clone())
            .rank_by(RankSpec::Sum)
            .explain()
            .expect("plannable");
        assert!(
            explained.explain().contains("index = cached"),
            "warm engine must report index = cached for {}",
            w.name
        );
        let (first, t) = time(|| {
            engine
                .query(w.query.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("plannable")
                .next()
        });
        assert!(first.is_some());
        warm_ttf = warm_ttf.min(t);
        assert_eq!(
            engine.index_stats().builds,
            builds,
            "a warm plan() must build zero tries for {}",
            w.name
        );
    }

    Measurement {
        name: w.name,
        rows,
        cold_ttf,
        warm_ttf,
        speedup: cold_ttf / warm_ttf.max(1e-12),
        builds,
    }
}

pub fn run(scale: f64) {
    banner(
        "E17: shared trie indexes — warm plan() is an index lookup, not an index build",
        "cyclic preprocessing = index build + enumerate; the catalog amortizes the build \
         across engines and plans",
    );
    let reps = 5;

    let tri_edges = (500_000.0 * scale).max(2_000.0) as usize;
    let c4_big = (600_000.0 * scale).max(2_000.0) as usize;
    let c4_small = (c4_big / 8).max(500);
    let ghd_edges = (400_000.0 * scale).max(2_000.0) as usize;
    // The GHD workload is a triangle with a pendant edge: cyclic but
    // neither the triangle nor the 4-cycle pattern, so it takes the
    // Decomposed route, with bags cheap enough to materialize that the
    // trie builds stay the dominant preprocessing cost. (A 5-cycle
    // would also route through GHD, but its width-2 bags materialize
    // O(m^2) rows — enumeration would drown the index side entirely.)
    // The pendant atom P is its own single-atom bag, enumerated and
    // weighted row by row, so it stays small relative to the indexed
    // triangle atoms.
    let ghd = Workload {
        name: "ghd-pendant-triangle",
        query: QueryBuilder::new()
            .atom("R", &["x", "y"])
            .atom("S", &["y", "z"])
            .atom("T", &["z", "x"])
            .atom("P", &["x", "w"])
            .build(),
        relations: vec![
            noisy_relation(&[(0, 1)], ghd_edges, noise_base(0), 1409),
            noisy_relation(&[(1, 2)], ghd_edges, noise_base(1), 1423),
            noisy_relation(&[(2, 0)], ghd_edges, noise_base(2), 1427),
            noisy_relation(&[(0, 7)], (ghd_edges / 8).max(500), noise_base(3), 1429),
        ],
    };
    let workloads = [
        distinct_cycle("triangle", 3, &[tri_edges; 3], 1201),
        distinct_cycle("c4", 4, &[c4_small, c4_small, c4_big, c4_big], 1301),
        ghd,
    ];

    let mut t = Table::new([
        "route",
        "rows",
        "cold plan() TTF (build)",
        "warm plan() TTF (lookup)",
        "cold/warm",
        "tries built once",
    ]);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for w in &workloads {
        let m = measure(w, reps);
        t.row([
            m.name.to_string(),
            m.rows.to_string(),
            fmt_secs(m.cold_ttf),
            fmt_secs(m.warm_ttf),
            format!("{:.1}x", m.speedup),
            m.builds.to_string(),
        ]);
        rows.push(Json::obj([
            ("route", Json::Str(m.name.to_string())),
            ("rows", Json::Int(m.rows as u64)),
            ("cold_ttf_s", Json::Num(m.cold_ttf)),
            ("warm_ttf_s", Json::Num(m.warm_ttf)),
            ("cold_over_warm", Json::Num(m.speedup)),
            ("tries_built", Json::Int(m.builds)),
        ]));
        results.push(m);
    }
    t.print();

    for m in &results {
        // The >= 3x bound is the acceptance criterion at full scale;
        // at smoke scales the trie builds shrink into timer noise, so
        // there the zero-build and EXPLAIN assertions (checked above
        // at every scale) carry the regression test.
        if scale >= 1.0 {
            assert!(
                m.speedup >= 3.0,
                "warm plan() TTF must be >= 3x faster than the index-build baseline on {} \
                 (got {:.1}x: cold {:.6}s vs warm {:.6}s)",
                m.name,
                m.speedup,
                m.cold_ttf,
                m.warm_ttf
            );
        } else if m.speedup < 3.0 {
            println!(
                "NOTE: {} speedup {:.1}x below the 3x full-scale bound at this smoke scale \
                 ({scale})",
                m.name, m.speedup
            );
        }
    }
    println!(
        "expected shape: the cold side re-sorts every per-route trie on each plan(); the \
         warm side resolves them from the shared catalog (builds asserted flat), so the \
         remaining TTF is planning + enumeration only (acceptance: >= 3x at scale >= 1)"
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E17".to_string())),
        ("scale", Json::Num(scale)),
        ("reps", Json::Int(reps as u64)),
        ("routes", Json::Arr(rows)),
    ]);
    write_bench_json("BENCH_E17.json", &doc).expect("write BENCH_E17.json");
}
