//! E18 — sharded serving: scatter/merge scaling at N ∈ {1, 2, 4, 8}.
//!
//! The in-process sharding claim: hash-partitioning each relation
//! across N full `Engine` shards and merging their ranked streams
//! through the tournament-tree merge buys **near-linear aggregate
//! enumeration capacity** while keeping the any-k contract intact —
//! the merged stream is *byte-identical* to a single engine's (ties
//! canonicalized), and the time-to-first-answer stays flat because the
//! merge primes one answer per shard, never a batch.
//!
//! Three measured parts:
//!
//! * **Byte-identity** (asserted): every route family (path-3,
//!   triangle, 4-cycle) × rotating rankings, paged through a
//!   `Service::sharded` at every shard count, must reproduce the
//!   single-engine canonical stream page for page — and leak zero
//!   cursors doing it.
//! * **Aggregate capacity** (asserted ≥ 3× at 8 shards): per-shard
//!   enumeration rates are measured *sequentially* and summed. The sum
//!   is a faithful capacity model — shard enumeration shares no
//!   mutable state, so on an N-core host the shards drain
//!   concurrently at these rates — and it is the honest metric on
//!   this single-core CI box, where wall-clock speedup is physically
//!   impossible. The `cores` field in the JSON records the host so
//!   readers can normalize.
//! * **Flat TTF** (asserted under an absolute bound): first answer
//!   from a pre-prepared merged stream at every N.

use crate::util::{banner, fmt_secs, time, time_stable, write_bench_json, Json, Table};
use anyk_engine::{Engine, RankSpec, ShardedEngine};
use anyk_query::cq::{cycle_query, path_query, ConjunctiveQuery};
use anyk_serve::{encode_answer, select_text, LocalClient, Service};
use anyk_storage::Catalog;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};

/// Answers each byte-identity probe pulls (pages of `PAGE`).
const K: usize = 50;
const PAGE: usize = 10;
/// The scaling ladder.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

pub fn run(scale: f64) {
    banner(
        "E18: sharded serving — scatter/merge scaling at N ∈ {1,2,4,8}",
        "hash-partitioned shards merge to a byte-identical ranked stream with \
         near-linear aggregate capacity and flat TTF",
    );
    let edges = (12_000.0 * scale).max(600.0) as usize;
    let nodes = (edges / 30).max(6) as u64;
    // Answers drained per shard for the rate measurement.
    let drain_cap = ((20_000.0 * scale) as usize).clamp(2_000, 50_000);

    // One shared catalog, the E16 workload mix: R1..R4 edge relations
    // feeding path-3 (R1,R2,R3), the triangle, and the 4-cycle.
    let mut catalog = Catalog::new();
    for i in 1..=4u64 {
        catalog.register(
            format!("R{i}"),
            random_edge_relation(edges, nodes, WeightDist::Uniform, None, 1800 + i * 7919),
        );
    }
    let single = Engine::new(catalog.clone());
    let shapes: [(&'static str, ConjunctiveQuery); 3] = [
        ("path3", path_query(3)),
        ("triangle", cycle_query(3)),
        ("c4", cycle_query(4)),
    ];
    let ranks = [RankSpec::Sum, RankSpec::Max, RankSpec::Min];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "catalog: 4 × {edges} edges over {nodes} nodes; host has {cores} core(s) — \
         aggregate capacity below sums per-shard rates measured sequentially"
    );

    // ---- Part 1: per-page byte-identity at every shard count -------
    let mut pages_checked = 0usize;
    let mut combos_checked = 0usize;
    let mut leaked = 0usize;
    for &n in &SHARD_COUNTS {
        let sharded = ShardedEngine::new(catalog.clone(), n).expect("sharded engine");
        let service = Service::sharded(sharded);
        for (label, q) in &shapes {
            for &rank in &ranks {
                // Baseline: the single engine's canonical-tie stream
                // through the wire encoder.
                let want: Vec<String> = single
                    .prepare(q.clone(), rank)
                    .unwrap_or_else(|e| panic!("{label} × {rank}: {e}"))
                    .stream()
                    .canonical_ties()
                    .take(K)
                    .map(|a| encode_answer(&a))
                    .collect();
                assert!(!want.is_empty(), "{label} × {rank}: workload has answers");
                let mut client = LocalClient::new(&service);
                let mut reply = client.send(&select_text(q, rank, Some(PAGE)));
                let mut rows: Vec<String> = Vec::new();
                loop {
                    let header = reply.lines().next().expect("header").to_string();
                    assert!(header.starts_with("OK "), "{label} × {rank}: {reply}");
                    rows.extend(
                        reply
                            .lines()
                            .filter(|l| l.starts_with("ROW "))
                            .map(String::from),
                    );
                    pages_checked += 1;
                    let done = header.contains("done=true");
                    let cursor = header
                        .split("cursor=")
                        .nth(1)
                        .and_then(|s| s.split_whitespace().next())
                        .expect("cursor field")
                        .to_string();
                    if done || rows.len() >= K {
                        if !done {
                            let closed = client.send(&format!("CLOSE {cursor};"));
                            assert!(closed.starts_with("OK closed="), "{closed}");
                        }
                        break;
                    }
                    reply = client.send(&format!("NEXT {PAGE} ON {cursor};"));
                }
                let take = rows.len().min(want.len());
                assert_eq!(
                    rows[..take],
                    want[..take],
                    "{label} × {rank} × {n} shard(s): merged pages must be \
                     byte-identical to the single-engine canonical stream"
                );
                combos_checked += 1;
            }
        }
        let stats = service.stats();
        assert_eq!(stats.shards, n, "STATS carries the shard count");
        assert_eq!(
            stats.open_cursors, 0,
            "{n} shard(s): every probe closed or exhausted its cursor"
        );
        assert_eq!(
            stats.cursors_opened,
            stats.cursors_closed + stats.cursors_expired,
            "{n} shard(s): cursor lifecycle must balance: {stats:?}"
        );
        leaked += stats.open_cursors;
    }
    println!(
        "byte-identity: {combos_checked} route × ranking × shard-count combos, \
         {pages_checked} pages, all identical to the single-engine canonical stream; \
         {leaked} cursors leaked"
    );

    // ---- Part 2: aggregate enumeration capacity ---------------------
    // path-3 × Sum: the streaming (non-materializing) route, so the
    // drain rate is pure enumeration. Prepare is untimed — the serving
    // path amortizes it through the plan cache (E15/E16).
    let q = path_query(3);
    let mut table = Table::new([
        "shards",
        "drained/shard(min)",
        "slowest shard",
        "capacity (ans/s)",
        "vs 1 shard",
        "merged ans/s",
        "TTF",
    ]);
    let mut rounds = Vec::new();
    let mut capacity_1 = 0.0f64;
    let mut min_drained = usize::MAX;
    for &n in &SHARD_COUNTS {
        let sharded = ShardedEngine::new(catalog.clone(), n).expect("sharded engine");
        let prepared = sharded.prepare(&q, RankSpec::Sum).expect("prepare");
        // Sequential per-shard drains: rate_i = answers_i / t_i.
        let mut rate_sum = 0.0f64;
        let mut slowest = 0.0f64;
        let mut drained_min = usize::MAX;
        for part in prepared.parts() {
            let (drained, t) = time(|| part.stream().take(drain_cap).count());
            rate_sum += drained as f64 / t.max(1e-9);
            slowest = slowest.max(t);
            drained_min = drained_min.min(drained);
        }
        min_drained = min_drained.min(drained_min);
        // The real merged stream on this host (no assert: on one core
        // the merge adds tournament overhead and cannot scale).
        let (merged_count, merged_t) = time(|| prepared.stream().take(drain_cap * n).count());
        let merged_rate = merged_count as f64 / merged_t.max(1e-9);
        // TTF from pre-prepared state: build + first answer.
        let ttf = time_stable(
            || {
                let mut s = prepared.stream();
                let _ = s.next().expect("first answer");
            },
            0.05,
        );
        assert!(
            ttf < 0.025,
            "{n} shard(s): TTF must stay flat-in-absolute-terms (got {})",
            fmt_secs(ttf)
        );
        if n == 1 {
            capacity_1 = rate_sum;
        }
        let speedup = rate_sum / capacity_1.max(1e-9);
        table.row([
            n.to_string(),
            drained_min.to_string(),
            fmt_secs(slowest),
            format!("{rate_sum:.0}"),
            format!("{speedup:.2}×"),
            format!("{merged_rate:.0}"),
            fmt_secs(ttf),
        ]);
        rounds.push(Json::obj([
            ("shards", Json::Int(n as u64)),
            ("drain_cap", Json::Int(drain_cap as u64)),
            ("min_drained_per_shard", Json::Int(drained_min as u64)),
            ("slowest_shard_s", Json::Num(slowest)),
            ("capacity_answers_per_s", Json::Num(rate_sum)),
            ("capacity_vs_one_shard", Json::Num(speedup)),
            ("merged_answers_per_s", Json::Num(merged_rate)),
            ("ttf_s", Json::Num(ttf)),
        ]));
        if n == *SHARD_COUNTS.last().expect("ladder") {
            assert!(
                drained_min >= 200,
                "capacity model needs ≥200 answers per shard to be meaningful \
                 (got {drained_min}; raise --scale)"
            );
            assert!(
                speedup >= 3.0,
                "aggregate capacity at {n} shards must be ≥3× one shard \
                 (got {speedup:.2}×)"
            );
        }
    }
    table.print();
    println!(
        "acceptance: capacity at 8 shards ≥3× one shard (per-shard rates summed, \
         ≥{min_drained} answers each), TTF flat under 25ms at every N, all pages \
         byte-identical, zero leaked cursors"
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E18".to_string())),
        ("scale", Json::Num(scale)),
        ("edges", Json::Int(edges as u64)),
        ("cores", Json::Int(cores as u64)),
        (
            "methodology",
            Json::Str(
                "capacity_answers_per_s sums per-shard drain rates measured \
                 sequentially on this host; shard enumeration shares no mutable \
                 state, so the sum is the aggregate rate an N-core host sustains. \
                 merged_answers_per_s is the single-host merged-stream rate \
                 (tournament merge on one core; not expected to scale here)."
                    .to_string(),
            ),
        ),
        (
            "byte_identity",
            Json::obj([
                ("combos", Json::Int(combos_checked as u64)),
                ("pages", Json::Int(pages_checked as u64)),
                ("leaked_cursors", Json::Int(leaked as u64)),
            ]),
        ),
        ("rounds", Json::Arr(rounds)),
    ]);
    write_bench_json("BENCH_E18.json", &doc).expect("write BENCH_E18.json");
}
