//! E19 — observability overhead: the fully instrumented serving stack
//! vs `ANYK_OBS=off` on the E16 mixed workload.
//!
//! Tracing is only free if nobody has to turn it off: the per-pull
//! sampler, stage clocks, and trace-ring publish must cost ≤ 5% of
//! end-to-end serving throughput, or the instrumentation would get
//! stripped the first time it shows up in a flamegraph. Three scenes:
//!
//! * **A/B overhead** — the E16 mixed workload (path-3 / triangle /
//!   4-cycle × sum/max/min rankings, concurrent TCP clients paging
//!   `LIMIT`/`NEXT`-style) runs against two otherwise identical
//!   servers, one with the registry disabled (exactly what
//!   `ANYK_OBS=off` produces) and one enabled. Best-of-R walls;
//!   asserted `on ≤ off × 1.05` (plus a small absolute slack so
//!   smoke-scale runs don't flake on scheduler noise).
//! * **stage truthfulness** — `EXPLAIN ANALYZE` for every route ×
//!   ranking; the per-stage times must sum to within 10% of the
//!   reported wall (the stage taxonomy is contiguous by construction,
//!   so this guards the carve-out arithmetic end-to-end).
//! * **transport identity** — the same `EXPLAIN ANALYZE` sequence
//!   against both TCP transports must be byte-identical after masking
//!   the `_us=<digits>` timing fields (the only nondeterminism
//!   allowed is the clock itself).
//!
//! Emits `BENCH_E19.json`.

use crate::util::{banner, fmt_secs, time, write_bench_json, Json, Table};
use anyk_engine::{Engine, EngineOpts, RankSpec};
use anyk_obs::{monotonic_clock, ObsRegistry};
use anyk_query::cq::{cycle_query, path_query, ConjunctiveQuery};
use anyk_serve::{
    encode_answer, select_text, Server, Service, ServiceConfig, TcpClient, Transport,
    TransportConfig,
};
use anyk_storage::Catalog;
use anyk_workloads::graphs::{random_edge_relation, WeightDist};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Answers each query pulls (pages of `PAGE`) — mirrors E16.
const K: usize = 50;
const PAGE: usize = 10;
/// Concurrent clients per round.
const CLIENTS: usize = 8;
/// Best-of-R repeats per mode.
const REPEATS: usize = 3;

struct Combo {
    label: &'static str,
    rank: RankSpec,
    select: String,
    expect: Vec<String>,
}

pub fn run(scale: f64) {
    banner(
        "E19: observability overhead — instrumented serving vs ANYK_OBS=off",
        "tracing must cost ≤ 5% on the E16 mixed workload; EXPLAIN ANALYZE \
         stages must sum to the wall and be transport-identical",
    );
    let edges = (12_000.0 * scale).max(900.0) as usize;
    let nodes = (edges / 30).max(6) as u64;
    let queries_per_client = ((16.0 * scale) as usize).clamp(4, 24);

    let shapes: [(&'static str, ConjunctiveQuery); 3] = [
        ("path3", path_query(3)),
        ("triangle", cycle_query(3)),
        ("c4", cycle_query(4)),
    ];
    let ranks = [RankSpec::Sum, RankSpec::Max, RankSpec::Min];

    // The byte-identity baseline comes from a direct PreparedQuery
    // stream on a throwaway engine over the same (seeded) catalog.
    let reference = Engine::new(build_catalog(edges, nodes));
    let mut combos = Vec::new();
    for (label, q) in &shapes {
        for &rank in &ranks {
            let prepared = reference
                .prepare(q.clone(), rank)
                .unwrap_or_else(|e| panic!("{label} × {rank}: {e}"));
            let expect: Vec<String> = prepared
                .stream()
                .take(K)
                .map(|a| encode_answer(&a))
                .collect();
            assert!(!expect.is_empty(), "{label} × {rank}: needs answers");
            combos.push(Combo {
                label,
                rank,
                select: select_text(q, rank, Some(PAGE)),
                expect,
            });
        }
    }
    println!(
        "catalog: 4 × {edges} edges over {nodes} nodes; {} combos × {CLIENTS} clients × \
         {queries_per_client} queries/client, best of {REPEATS} per mode",
        combos.len()
    );

    // --- Scene 1: A/B overhead -----------------------------------
    let mut walls = [[0f64; REPEATS]; 2];
    let mut traces_on = 0u64;
    for (mode_walls, enabled) in walls.iter_mut().zip([false, true]) {
        for wall_slot in mode_walls.iter_mut() {
            let obs = Arc::new(ObsRegistry::with_enabled(enabled, monotonic_clock()));
            let engine = Engine::with_obs(build_catalog(edges, nodes), EngineOpts::default(), obs);
            let service = Service::with_config(
                engine,
                ServiceConfig {
                    max_open_cursors: 512,
                    cursor_ttl: Duration::from_secs(60),
                    default_page: PAGE,
                    ..ServiceConfig::default()
                },
            );
            let mut server = Server::bind_with(
                service.clone(),
                "127.0.0.1:0",
                TransportConfig {
                    transport: Transport::EventLoop,
                    ..TransportConfig::default()
                },
            )
            .expect("bind event-loop server");
            let addr = server.addr();
            let (_, wall) = time(|| {
                thread::scope(|s| {
                    for c in 0..CLIENTS {
                        let combos = &combos;
                        s.spawn(move || {
                            let mut client = TcpClient::connect(addr).expect("client connect");
                            for i in 0..queries_per_client {
                                run_one_query(&mut client, &combos[(c + i) % combos.len()]);
                            }
                        });
                    }
                });
            });
            *wall_slot = wall;
            if enabled {
                let stats = service.stats();
                traces_on = stats.traces_published;
                assert!(
                    stats.traces_published > 0,
                    "the enabled arm must actually trace, or the A/B is vacuous: {stats:?}"
                );
            }
            server.shutdown();
        }
    }
    let best = |mode: usize| -> f64 { walls[mode].iter().copied().fold(f64::INFINITY, f64::min) };
    let (off_best, on_best) = (best(0), best(1));
    let overhead = on_best / off_best.max(1e-12);
    let mut table = Table::new(["mode", "best_wall", "all_walls", "overhead"]);
    for (mode, name) in [(0usize, "ANYK_OBS=off"), (1usize, "ANYK_OBS=on")] {
        table.row([
            name.to_string(),
            fmt_secs(best(mode)),
            walls[mode]
                .iter()
                .map(|w| fmt_secs(*w))
                .collect::<Vec<_>>()
                .join(" "),
            if mode == 1 {
                format!("{:.3}×", overhead)
            } else {
                "1.000×".to_string()
            },
        ]);
    }
    table.print();
    // 5% relative plus a small absolute slack: at smoke scale the
    // walls are tens of milliseconds and one scheduler hiccup would
    // otherwise dominate the ratio.
    assert!(
        on_best <= off_best * 1.05 + 0.015,
        "instrumentation overhead {overhead:.3}× exceeds the 5% budget \
         (on {on_best:.4}s vs off {off_best:.4}s)"
    );

    // --- Scene 2: EXPLAIN ANALYZE stage truthfulness --------------
    let obs = Arc::new(ObsRegistry::with_enabled(true, monotonic_clock()));
    let engine = Engine::with_obs(build_catalog(edges, nodes), EngineOpts::default(), obs);
    let service = Service::with_config(engine, ServiceConfig::default());
    let mut server = Server::bind_with(
        service,
        "127.0.0.1:0",
        TransportConfig {
            transport: Transport::EventLoop,
            ..TransportConfig::default()
        },
    )
    .expect("bind analyze server");
    let mut client = TcpClient::connect(server.addr()).expect("analyze client");
    let mut stage_table = Table::new(["combo", "stage_sum_us", "wall_us", "gap"]);
    let mut stage_rows = Vec::new();
    for combo in &combos {
        let reply = client
            .send(&format!("EXPLAIN ANALYZE {}", combo.select))
            .expect("analyze round-trip");
        assert!(
            reply.starts_with("OK analyze\n"),
            "{}: {reply}",
            combo.label
        );
        let sum: u64 = reply
            .lines()
            .filter_map(|l| l.strip_prefix("INFO stage."))
            .filter_map(|l| l.split_once('='))
            .map(|(_, v)| v.trim().parse::<u64>().expect("stage field"))
            .sum();
        let wall = info_u64(&reply, "wall_us");
        let reported_sum = info_u64(&reply, "stage_sum_us");
        assert_eq!(
            sum, reported_sum,
            "{}: stage_sum_us must be the sum",
            combo.label
        );
        let gap = wall.abs_diff(sum);
        // Within 10% of the wall; tiny absolute floor for µs rounding
        // on near-instant smoke queries.
        assert!(
            gap <= (wall / 10).max(5),
            "{} × {}: stage times (Σ={sum}µs) diverge from wall ({wall}µs): {reply}",
            combo.label,
            combo.rank
        );
        stage_table.row([
            format!("{} × {}", combo.label, combo.rank),
            sum.to_string(),
            wall.to_string(),
            format!("{gap}µs"),
        ]);
        stage_rows.push(Json::obj([
            (
                "combo",
                Json::Str(format!("{} × {}", combo.label, combo.rank)),
            ),
            ("stage_sum_us", Json::Int(sum)),
            ("wall_us", Json::Int(wall)),
        ]));
    }
    stage_table.print();
    server.shutdown();

    // --- Scene 3: transport identity ------------------------------
    let mut replies: Vec<Vec<String>> = Vec::new();
    for transport in [Transport::EventLoop, Transport::ThreadPerConn] {
        let obs = Arc::new(ObsRegistry::with_enabled(true, monotonic_clock()));
        let engine = Engine::with_obs(build_catalog(edges, nodes), EngineOpts::default(), obs);
        let service = Service::with_config(engine, ServiceConfig::default());
        let mut server = Server::bind_with(
            service,
            "127.0.0.1:0",
            TransportConfig {
                transport,
                ..TransportConfig::default()
            },
        )
        .expect("bind transport server");
        let mut client = TcpClient::connect(server.addr()).expect("transport client");
        replies.push(
            combos
                .iter()
                .map(|combo| {
                    let reply = client
                        .send(&format!("EXPLAIN ANALYZE {}", combo.select))
                        .expect("analyze round-trip");
                    mask_timings(&reply)
                })
                .collect(),
        );
        server.shutdown();
    }
    assert_eq!(
        replies[0], replies[1],
        "EXPLAIN ANALYZE must be byte-identical across transports once \
         `_us=` timings are masked"
    );
    println!(
        "acceptance: overhead {overhead:.3}× (≤ 1.05 budget) with {traces_on} traces \
         published in the enabled arm; all {} EXPLAIN ANALYZE stage sums within 10% of \
         wall; replies transport-identical modulo timings",
        combos.len()
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E19".to_string())),
        ("scale", Json::Num(scale)),
        ("edges", Json::Int(edges as u64)),
        ("clients", Json::Int(CLIENTS as u64)),
        ("queries_per_client", Json::Int(queries_per_client as u64)),
        ("repeats", Json::Int(REPEATS as u64)),
        ("off_best_s", Json::Num(off_best)),
        ("on_best_s", Json::Num(on_best)),
        ("overhead", Json::Num(overhead)),
        ("budget", Json::Num(1.05)),
        ("traces_published_on", Json::Int(traces_on)),
        ("explain_analyze", Json::Arr(stage_rows)),
        ("transport_identical", Json::Bool(true)),
    ]);
    write_bench_json("BENCH_E19.json", &doc).expect("write BENCH_E19.json");
}

/// The E16-shaped shared catalog, rebuilt deterministically from the
/// same seeds so each mode's engine sees identical data.
fn build_catalog(edges: usize, nodes: u64) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 1..=4u64 {
        catalog.register(
            format!("R{i}"),
            random_edge_relation(edges, nodes, WeightDist::Uniform, None, 1000 + i * 7919),
        );
    }
    catalog
}

/// Page one query to `K` answers through the protocol, asserting every
/// page byte-identical to the direct stream (instrumentation may
/// observe, never alter).
fn run_one_query(client: &mut TcpClient, combo: &Combo) {
    let mut rows: Vec<String> = Vec::new();
    let mut reply = client.send(&combo.select).expect("select round-trip");
    loop {
        let header = reply.lines().next().expect("header").to_string();
        assert!(header.starts_with("OK "), "{}: {reply}", combo.label);
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        let done = header.contains("done=true");
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field");
        if done {
            break;
        }
        if rows.len() >= K {
            let closed = client
                .send(&format!("CLOSE {cursor};"))
                .expect("close round-trip");
            assert!(closed.starts_with("OK closed="), "{closed}");
            break;
        }
        reply = client
            .send(&format!("NEXT {PAGE} ON {cursor};"))
            .expect("next round-trip");
    }
    assert_eq!(
        rows,
        combo.expect[..rows.len().min(combo.expect.len())],
        "{}: server pages diverged from the direct stream",
        combo.label
    );
}

/// A `wall_us`-style field out of an `INFO key=value` reply.
fn info_u64(reply: &str, key: &str) -> u64 {
    reply
        .lines()
        .find_map(|l| l.strip_prefix(&format!("INFO {key}=")))
        .unwrap_or_else(|| panic!("reply missing {key}: {reply}"))
        .trim()
        .parse()
        .expect("numeric INFO field")
}

/// Mask every `_us=<digits>` value — the only field whose value is
/// allowed to differ between transports.
fn mask_timings(reply: &str) -> String {
    reply
        .lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| match tok.find("_us=") {
                    Some(i) if tok[i + 4..].bytes().all(|b| b.is_ascii_digit()) => {
                        format!("{}#", &tok[..i + 4])
                    }
                    _ => tok.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}
