//! E20 — live appends under a serving workload: a writer streams
//! `INSERT` batches into one relation while reader clients page a
//! mixed query workload over the same service.
//!
//! The catalog-goes-live design (delta-backed relations, relation-
//! scoped plan invalidation, snapshot-isolated streams) is only worth
//! shipping if writes stay out of the readers' way. The workload is
//! read-dominated — the normal serving regime, and the one the design
//! targets: each append invalidates exactly the plans reading the
//! appended relation, those re-prepare against the delta (reusing the
//! stashed all-base term, so the rebuild is delta-sized, not
//! base-sized), and every other read is an untouched cache hit. An
//! epoch-style invalidation would fail this bench twice over: the
//! untouched-relation probe would observe rebuilds, and the read tail
//! would absorb a full re-prepare per append. Three scenes:
//!
//! * **read-only baseline** — the reader workload alone; its TTF p95
//!   is the yardstick.
//! * **mixed** — identical readers plus one writer appending paced
//!   batches into `R1` the whole time. Asserted: reader TTF p95 ≤
//!   1.5× the baseline (plus a small absolute slack so smoke-scale
//!   runs don't flake on scheduler noise), and the
//!   append/invalidation counters account exactly for the writer's
//!   traffic.
//! * **untouched isolation** — a plan reading only `R3`/`R4` (never
//!   appended) is prepared before the writer starts; after the mixed
//!   phase it must still be served from cache with **zero** new plan
//!   misses and **zero** new index builds — counter-asserted, so an
//!   over-broad invalidation (epoch-style) fails the bench.
//!
//! Ends with a correctness pin: the served ranked prefix over the
//! appended relation equals a direct stream on a fresh engine whose
//! `R1` was built base ⊎ appends up front. Emits `BENCH_E20.json`.

use crate::util::{banner, write_bench_json, Json, Table};
use anyk_engine::Engine;
use anyk_query::cq::QueryBuilder;
use anyk_serve::{
    encode_answer, select_text, Server, Service, ServiceConfig, TcpClient, Transport,
    TransportConfig,
};
use anyk_storage::{Catalog, Relation, RelationBuilder, Schema};
use anyk_workloads::graphs::{random_edge_relation, WeightDist};
use std::thread;
use std::time::Duration;

/// Page size readers pull with.
const PAGE: usize = 10;
/// Answers each reader query pages to.
const K: usize = 40;
/// Concurrent reader clients.
const CLIENTS: usize = 8;
/// Rows per writer `INSERT` batch.
const BATCH: usize = 8;

pub fn run(scale: f64) {
    banner(
        "E20: live appends — writer streaming INSERTs under a paging read workload",
        "reader TTF p95 must stay ≤ 1.5× the read-only baseline; untouched \
         relations must see zero plan/index rebuilds",
    );
    let edges = (10_000.0 * scale).max(800.0) as usize;
    let nodes = (edges / 25).max(6) as u64;
    // Read-dominated: the writer's batch count is a small fraction of
    // the read count, so the p95 read lands on cache-hit samples while
    // the misses it does cause still exercise the delta-union rebuild.
    let queries_per_client = ((100.0 * scale) as usize).clamp(12, 200);
    let batches = ((10.0 * scale) as usize).clamp(5, 20);

    // Reader workload: two 2-path shapes. `touched` reads the appended
    // relation R1; `untouched` reads only R3/R4 and must never lose its
    // cached plan.
    let touched_q = QueryBuilder::new()
        .atom("R1", &["a", "b"])
        .atom("R2", &["b", "c"])
        .build();
    let untouched_q = QueryBuilder::new()
        .atom("R3", &["a", "b"])
        .atom("R4", &["b", "c"])
        .build();
    let selects = [
        select_text(&touched_q, anyk_engine::RankSpec::Sum, Some(PAGE)),
        select_text(&untouched_q, anyk_engine::RankSpec::Sum, Some(PAGE)),
        select_text(&touched_q, anyk_engine::RankSpec::Max, Some(PAGE)),
        select_text(&untouched_q, anyk_engine::RankSpec::Min, Some(PAGE)),
    ];
    println!(
        "catalog: 4 × {edges} edges over {nodes} nodes; {CLIENTS} readers × \
         {queries_per_client} queries; writer: {batches} × {BATCH}-row INSERT batches into R1"
    );

    // --- Scene 1: read-only baseline ------------------------------
    let baseline = serve_phase(edges, nodes, queries_per_client, &selects, 0);
    // --- Scene 2 + 3: mixed, with counter assertions --------------
    let mixed = serve_phase(edges, nodes, queries_per_client, &selects, batches);

    let mut table = Table::new(["phase", "ttf_p95_us", "appends", "invalidations"]);
    table.row([
        "read-only".to_string(),
        baseline.ttf_p95_us.to_string(),
        "0".to_string(),
        "0".to_string(),
    ]);
    table.row([
        "mixed".to_string(),
        mixed.ttf_p95_us.to_string(),
        mixed.appends.to_string(),
        mixed.append_invalidations.to_string(),
    ]);
    table.print();

    // The headline bound: writes must not degrade reader TTF p95 past
    // 1.5×. The absolute slack covers µs-scale baselines at smoke
    // scale, where one scheduler hiccup would dominate the ratio.
    let bound = baseline.ttf_p95_us as f64 * 1.5 + 500.0;
    assert!(
        (mixed.ttf_p95_us as f64) <= bound,
        "mixed-phase reader TTF p95 {}µs exceeds 1.5× the read-only baseline {}µs",
        mixed.ttf_p95_us,
        baseline.ttf_p95_us
    );
    println!(
        "acceptance: mixed TTF p95 {}µs ≤ 1.5 × baseline {}µs (+0.5ms slack); \
         {} appends invalidated {} dependent plans; untouched plan kept its \
         cache entry and index across the write phase",
        mixed.ttf_p95_us, baseline.ttf_p95_us, mixed.appends, mixed.append_invalidations
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E20".to_string())),
        ("scale", Json::Num(scale)),
        ("edges", Json::Int(edges as u64)),
        ("clients", Json::Int(CLIENTS as u64)),
        ("queries_per_client", Json::Int(queries_per_client as u64)),
        ("writer_batches", Json::Int(batches as u64)),
        ("batch_rows", Json::Int(BATCH as u64)),
        ("baseline_ttf_p95_us", Json::Int(baseline.ttf_p95_us)),
        ("mixed_ttf_p95_us", Json::Int(mixed.ttf_p95_us)),
        ("bound", Json::Num(1.5)),
        ("appends", Json::Int(mixed.appends)),
        ("appended_rows", Json::Int(mixed.appended_rows)),
        (
            "append_invalidations",
            Json::Int(mixed.append_invalidations),
        ),
        ("compactions", Json::Int(mixed.compactions)),
        ("untouched_rebuilds", Json::Int(0)),
    ]);
    write_bench_json("BENCH_E20.json", &doc).expect("write BENCH_E20.json");
}

struct PhaseStats {
    ttf_p95_us: u64,
    appends: u64,
    appended_rows: u64,
    append_invalidations: u64,
    compactions: u64,
}

/// One serving phase over a fresh service: `CLIENTS` readers paging
/// the workload; when `batches > 0`, one writer streaming `INSERT`s
/// into R1 concurrently. Counter and isolation assertions live here so
/// both phases run the identical reader path.
fn serve_phase(
    edges: usize,
    nodes: u64,
    queries_per_client: usize,
    selects: &[String],
    batches: usize,
) -> PhaseStats {
    let catalog = build_catalog(edges, nodes);
    let service = Service::with_config(
        Engine::new(catalog),
        ServiceConfig {
            max_open_cursors: 512,
            default_page: PAGE,
            ..ServiceConfig::default()
        },
    );
    let mut server = Server::bind_with(
        service.clone(),
        "127.0.0.1:0",
        TransportConfig {
            transport: Transport::EventLoop,
            ..TransportConfig::default()
        },
    )
    .expect("bind event-loop server");
    let addr = server.addr();

    // Warm the untouched plan before any write, then pin its cache
    // provenance across the phase.
    let mut probe = TcpClient::connect(addr).expect("probe connect");
    run_one_query(&mut probe, &selects[1]);

    let writing = batches > 0;
    thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("reader connect");
                for i in 0..queries_per_client {
                    run_one_query(&mut client, &selects[(c + i) % selects.len()]);
                }
            });
        }
        if writing {
            s.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("writer connect");
                for b in 0..batches {
                    let insert = insert_batch_text(b, nodes);
                    let reply = client.send(&insert).expect("insert round-trip");
                    assert!(reply.starts_with("OK appended rows="), "{reply}");
                    // Pace the stream: appends trickle in across the
                    // read window instead of landing in one burst.
                    thread::sleep(Duration::from_millis(2));
                }
            });
        }
    });

    let before_probe = service.stats();
    if writing {
        assert_eq!(
            before_probe.appends, batches as u64,
            "every writer batch lands exactly once"
        );
        assert_eq!(
            before_probe.appended_rows,
            (batches * BATCH) as u64,
            "every batch carries {BATCH} rows"
        );
        assert!(
            before_probe.append_invalidations >= 1,
            "appends into R1 must invalidate the touched plan at least once"
        );
    } else {
        assert_eq!(before_probe.appends, 0);
        assert_eq!(before_probe.append_invalidations, 0);
    }
    // Untouched isolation: re-running the R3/R4 plan after the whole
    // phase must be a pure cache hit — zero new misses, zero new index
    // builds attributable to the probe.
    run_one_query(&mut probe, &selects[1]);
    let after_probe = service.stats();
    assert_eq!(
        after_probe.cache.misses, before_probe.cache.misses,
        "the untouched plan was rebuilt: appends leaked past their relation"
    );
    assert_eq!(
        after_probe.index.builds, before_probe.index.builds,
        "an index on an untouched relation was rebuilt"
    );

    if writing {
        // Correctness pin: the served ranked prefix over the appended
        // relation equals a direct stream on a fresh engine whose R1
        // carries the same rows base-first.
        let batches_done = before_probe.appends as usize;
        let mut flat = build_catalog(edges, nodes);
        let r1 = flat.get("R1").expect("R1").clone();
        let appended = Relation::concat(
            &std::iter::once(r1)
                .chain((0..batches_done).map(|b| insert_batch_relation(b, nodes)))
                .collect::<Vec<_>>(),
        );
        flat.register("R1", appended);
        let reference = Engine::new(flat);
        let touched_q = QueryBuilder::new()
            .atom("R1", &["a", "b"])
            .atom("R2", &["b", "c"])
            .build();
        let expect: Vec<String> = reference
            .prepare(touched_q, anyk_engine::RankSpec::Sum)
            .expect("reference prepare")
            .stream()
            .canonical_ties()
            .take(K)
            .map(|a| encode_answer(&a))
            .collect();
        let got = page_rows(&mut probe, &selects[0]);
        assert_eq!(
            got,
            expect[..got.len().min(expect.len())],
            "served answers over the live relation diverge from base ⊎ appends"
        );
    }

    let stats = service.stats();
    server.shutdown();
    PhaseStats {
        ttf_p95_us: stats.ttf_p95_us,
        appends: stats.appends,
        appended_rows: stats.appended_rows,
        append_invalidations: stats.append_invalidations,
        compactions: stats.compactions,
    }
}

/// The deterministic shared catalog (same seeds each phase).
fn build_catalog(edges: usize, nodes: u64) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 1..=4u64 {
        catalog.register(
            format!("R{i}"),
            random_edge_relation(edges, nodes, WeightDist::Uniform, None, 9000 + i * 7919),
        );
    }
    catalog
}

/// Batch `b`'s rows: deterministic, inside the node-id range so the
/// appended edges pick up join partners in R2.
fn batch_rows(b: usize, nodes: u64) -> Vec<(i64, i64, f64)> {
    (0..BATCH)
        .map(|i| {
            let src = ((b * BATCH + i) as u64 * 67 % nodes) as i64;
            let dst = ((b * BATCH + i) as u64 * 131 % nodes) as i64;
            let w = 0.001 + (((b * BATCH + i) % 997) as f64) * 1e-4;
            (src, dst, w)
        })
        .collect()
}

/// Batch `b` as wire text: `INSERT INTO R1 VALUES (…),(…);`.
fn insert_batch_text(b: usize, nodes: u64) -> String {
    let rows: Vec<String> = batch_rows(b, nodes)
        .into_iter()
        .map(|(s, d, w)| format!("({s},{d},{w:.4})"))
        .collect();
    format!("INSERT INTO R1 VALUES {};", rows.join(","))
}

/// Batch `b` as a relation (for the base ⊎ appends reference engine).
fn insert_batch_relation(b: usize, nodes: u64) -> Relation {
    let mut builder = RelationBuilder::new(Schema::new(["src", "dst"]));
    for (s, d, w) in batch_rows(b, nodes) {
        // Round-trip the weight through the same fixed-point text the
        // wire carries, so reference and served costs match exactly.
        let w: f64 = format!("{w:.4}").parse().expect("weight literal");
        builder.push_ints(&[s, d], w);
    }
    builder.finish()
}

/// Page one query to `K` answers, closing any leftover cursor.
fn run_one_query(client: &mut TcpClient, select: &str) {
    let _ = page_rows(client, select);
}

/// Page one query to `K` answers and return its `ROW` lines.
fn page_rows(client: &mut TcpClient, select: &str) -> Vec<String> {
    let mut rows: Vec<String> = Vec::new();
    let mut reply = client.send(select).expect("select round-trip");
    loop {
        let header = reply.lines().next().expect("header").to_string();
        assert!(header.starts_with("OK "), "{reply}");
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        let done = header.contains("done=true");
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field");
        if done {
            break;
        }
        if rows.len() >= K {
            let closed = client
                .send(&format!("CLOSE {cursor};"))
                .expect("close round-trip");
            assert!(closed.starts_with("OK closed="), "{closed}");
            break;
        }
        reply = client
            .send(&format!("NEXT {PAGE} ON {cursor};"))
            .expect("next round-trip");
    }
    rows
}
