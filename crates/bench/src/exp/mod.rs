//! Experiment implementations E1–E12 (see DESIGN.md §4 for the index
//! and EXPERIMENTS.md for recorded results).
//!
//! Each experiment is a `run(scale)` function printing its table(s);
//! `scale` multiplies input sizes (default 1.0; use 0.25 for a quick
//! smoke run, 2.0+ for sharper slope estimates).

pub mod e01_triangle_wco;
pub mod e02_yannakakis;
pub mod e03_boolean_c4;
pub mod e04_topk_c4;
pub mod e05_ttk_curves;
pub mod e06_delay;
pub mod e07_middleware;
pub mod e08_rankjoin_vs_anyk;
pub mod e09_part_vs_rec;
pub mod e10_ranking_functions;
pub mod e11_variants_table;
pub mod e12_widths_table;
pub mod e13_subw_vs_fhw;
pub mod e14_engine_routing;
pub mod e15_prepared_serving;
pub mod e16_serve_load;
pub mod e17_index_catalog;
pub mod e18_sharded_scaling;
pub mod e19_obs_overhead;
pub mod e20_live_appends;

/// All experiment ids in order.
pub const ALL: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20",
];

/// Dispatch one experiment by id.
pub fn run(id: &str, scale: f64) -> bool {
    match id {
        "e1" => e01_triangle_wco::run(scale),
        "e2" => e02_yannakakis::run(scale),
        "e3" => e03_boolean_c4::run(scale),
        "e4" => e04_topk_c4::run(scale),
        "e5" => e05_ttk_curves::run(scale),
        "e6" => e06_delay::run(scale),
        "e7" => e07_middleware::run(scale),
        "e8" => e08_rankjoin_vs_anyk::run(scale),
        "e9" => e09_part_vs_rec::run(scale),
        "e10" => e10_ranking_functions::run(scale),
        "e11" => e11_variants_table::run(scale),
        "e12" => e12_widths_table::run(scale),
        "e13" => e13_subw_vs_fhw::run(scale),
        "e14" => e14_engine_routing::run(scale),
        "e15" => e15_prepared_serving::run(scale),
        "e16" => e16_serve_load::run(scale),
        "e17" => e17_index_catalog::run(scale),
        "e18" => e18_sharded_scaling::run(scale),
        "e19" => e19_obs_overhead::run(scale),
        "e20" => e20_live_appends::run(scale),
        _ => return false,
    }
    true
}
