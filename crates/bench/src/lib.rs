//! # anyk-bench
//!
//! The experiment harness that regenerates every quantitative claim of
//! *Optimal Join Algorithms Meet Top-k* (experiment index E1–E12 in
//! DESIGN.md / EXPERIMENTS.md), plus criterion microbenchmarks.
//!
//! Run all experiments:
//!
//! ```text
//! cargo run -p anyk-bench --release --bin experiments -- all
//! cargo run -p anyk-bench --release --bin experiments -- e1 e5 --scale 0.5
//! ```
//!
//! Absolute numbers are machine-dependent; the experiments report the
//! *shapes* the paper claims (fitted log-log slopes, crossovers, who
//! wins) alongside raw numbers, and EXPERIMENTS.md records one full run.

pub mod exp;
pub mod util;
