//! Measurement utilities: wall-clock timing, log-log slope fitting, and
//! aligned table printing.

use std::time::Instant;

/// Time a closure once, returning `(result, seconds)`.
pub fn time<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Time a closure, repeating until `min_total` seconds have elapsed
/// (at least once), returning the mean seconds per run. For fast
/// operations; slow operations run once.
pub fn time_stable<F: FnMut()>(mut f: F, min_total: f64) -> f64 {
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        f();
        runs += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_total || runs >= 25 {
            return elapsed / runs as f64;
        }
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the empirical
/// scaling exponent. Points with non-positive coordinates are skipped.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A simple aligned text table that also emits CSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the text table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds human-readably (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper claim: {claim}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_linear() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        let text = t.render();
        assert!(text.contains("a"));
        assert!(text.contains("bb"));
        assert_eq!(t.csv(), "a,bb\n1,2\n");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).contains("µs"));
        assert!(fmt_secs(0.005).contains("ms"));
        assert!(fmt_secs(2.0).contains('s'));
    }

    #[test]
    fn time_returns_result() {
        let (x, t) = time(|| 42);
        assert_eq!(x, 42);
        assert!(t >= 0.0);
    }
}
