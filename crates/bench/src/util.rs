//! Measurement utilities: wall-clock timing, log-log slope fitting, and
//! aligned table printing.

use anyk_obs::{global_clock, Clock as _};
use std::fmt::Write as _;

/// Time a closure once, returning `(result, seconds)`.
pub fn time<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = global_clock().now_ns();
    let out = f();
    let end = global_clock().now_ns();
    (out, end.saturating_sub(start) as f64 / 1e9)
}

/// Time a closure, repeating until `min_total` seconds have elapsed
/// (at least once), returning the mean seconds per run. For fast
/// operations; slow operations run once.
pub fn time_stable<F: FnMut()>(mut f: F, min_total: f64) -> f64 {
    let mut runs = 0u32;
    let start = global_clock().now_ns();
    loop {
        f();
        runs += 1;
        let elapsed = global_clock().now_ns().saturating_sub(start) as f64 / 1e9;
        if elapsed >= min_total || runs >= 25 {
            return elapsed / runs as f64;
        }
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the empirical
/// scaling exponent. Points with non-positive coordinates are skipped.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A simple aligned text table that also emits CSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the text table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A hand-rolled JSON value — enough for machine-readable bench
/// artifacts without pulling serde into the offline build. Object keys
/// keep insertion order so emitted files diff cleanly run-to-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Num(f64),
    Int(u64),
    Str(String),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<S: Into<String>, I: IntoIterator<Item = (S, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Append a key to an object (panics on non-objects — builder
    /// misuse, not data).
    pub fn push<S: Into<String>>(&mut self, key: S, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/inf; null keeps the file parseable.
                    out.push_str("null");
                }
            }
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    let _ = write!(out, "{:?}: ", k);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Where bench JSON artifacts land: `$ANYK_BENCH_JSON_DIR` if set,
/// else the current directory. Returns the full path written.
pub fn write_bench_json(file_name: &str, doc: &Json) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("ANYK_BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(file_name);
    std::fs::write(&path, doc.render())?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Format seconds human-readably (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper claim: {claim}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_linear() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        let text = t.render();
        assert!(text.contains("a"));
        assert!(text.contains("bb"));
        assert_eq!(t.csv(), "a,bb\n1,2\n");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).contains("µs"));
        assert!(fmt_secs(0.005).contains("ms"));
        assert!(fmt_secs(2.0).contains('s'));
    }

    #[test]
    fn time_returns_result() {
        let (x, t) = time(|| 42);
        assert_eq!(x, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn json_renders_nested_values() {
        let mut doc = Json::obj([
            ("experiment", Json::Str("E14".to_string())),
            ("scale", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
        ]);
        doc.push(
            "rows",
            Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
        );
        let text = doc.render();
        assert!(text.contains("\"experiment\": \"E14\""));
        assert!(text.contains("\"scale\": 1.5"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.ends_with("}\n"));
        // Balanced brackets, roughly: same number of open and close.
        assert_eq!(text.matches('{').count(), text.matches('}').count(),);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_escapes_strings_and_nan() {
        let doc = Json::obj([
            ("quote", Json::Str("a\"b\\c\nd".to_string())),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let text = doc.render();
        assert!(text.contains("a\\\"b\\\\c\\nd"));
        assert!(text.contains("\"nan\": null"));
    }

    #[test]
    fn write_bench_json_lands_in_env_dir() {
        let dir = std::env::temp_dir().join(format!("anyk-bench-json-{}", std::process::id()));
        // Sidestep the env var to keep the test parallel-safe: pass the
        // directory through the variable the helper reads only when the
        // caller has not overridden it in the environment already.
        std::env::set_var("ANYK_BENCH_JSON_DIR", &dir);
        let doc = Json::obj([("x", Json::Int(7))]);
        let path = write_bench_json("BENCH_TEST.json", &doc).expect("write");
        std::env::remove_var("ANYK_BENCH_JSON_DIR");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"x\": 7"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
