//! Ranked answers and the any-k iterator contract.

use anyk_storage::Value;
use std::fmt::Debug;

/// One query answer produced by ranked enumeration: its cost under the
/// active ranking function plus the output tuple (one value per query
/// variable, in `VarId` order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedAnswer<C> {
    /// Cost under the ranking function (smaller = ranked earlier).
    pub cost: C,
    /// Output tuple, one `Value` per query variable.
    pub values: Vec<Value>,
}

/// The *any-k* ("anytime top-k") contract: an iterator that yields
/// answers in non-decreasing cost order, one at a time, without knowing
/// `k` in advance (Part 3 of the paper). Implemented by
/// [`AnyKPart`](crate::part::AnyKPart), [`AnyKRec`](crate::rec::AnyKRec),
/// the batch baselines, and the cyclic-plan mergers.
pub trait AnyK: Iterator<Item = RankedAnswer<<Self as AnyK>::Cost>> {
    /// The ranking function's cost type.
    type Cost: Clone + Ord + Debug;
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_storage::Weight;

    #[test]
    fn answer_equality() {
        let a = RankedAnswer {
            cost: Weight::new(1.0),
            values: vec![Value::Int(1)],
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
