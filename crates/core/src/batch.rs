//! Batch baselines: materialize the full join, then rank.
//!
//! These are what any-k competes against (Part 3): the join itself is
//! optimal (Yannakakis, O~(n + r)), but *all* r answers must be produced
//! and ordered before the first one can be emitted — TTF is Θ(n + r)
//! instead of O~(n).
//!
//! Two flavors:
//! * [`BatchSorted`] — full sort after the join (what `ORDER BY ...
//!   LIMIT k` does without a top-k optimization);
//! * [`BatchHeap`] — heapify after the join, pop lazily (slightly
//!   cheaper when enumeration stops early, but has already paid Θ(r)).

use crate::answer::{AnyK, RankedAnswer};
use crate::ranking::RankingFunction;
use anyk_join::yannakakis::yannakakis_for_each;
use anyk_query::cq::ConjunctiveQuery;
use anyk_query::join_tree::JoinTree;
use anyk_storage::{Relation, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compute all answers with their ranking-function costs. Costs combine
/// tuple weights in the join tree's serialization (pre-order) order, so
/// results are comparable with T-DP-based enumerators even for
/// non-commutative rankings (lexicographic). Public so the serving
/// layer can build a shared sorted-answer artifact
/// ([`crate::cyclic::SortedAnswers`]) for prepared batch plans.
pub fn materialize_ranked<R: RankingFunction>(
    q: &ConjunctiveQuery,
    tree: &JoinTree,
    rels: Vec<Relation>,
) -> Vec<(R::Cost, Vec<Value>)> {
    let preorder = tree.preorder();
    let mut out: Vec<(R::Cost, Vec<Value>)> = Vec::new();
    yannakakis_for_each(q, tree, rels, |rels, by_node| {
        let mut cost = R::identity();
        let mut values = vec![Value::Int(0); q.num_vars()];
        for &node in &preorder {
            let atom_idx = tree.node(node).atom;
            let rid = by_node[node];
            let rel = &rels[atom_idx];
            cost = R::combine(&cost, &R::lift(rel.weight(rid)));
            let tuple = rel.row(rid);
            for (pos, &v) in q.atom(atom_idx).vars.iter().enumerate() {
                values[v] = tuple[pos];
            }
        }
        out.push((cost, values));
    });
    out
}

/// Join-then-sort baseline.
pub struct BatchSorted<R: RankingFunction> {
    answers: std::vec::IntoIter<(R::Cost, Vec<Value>)>,
}

impl<R: RankingFunction> BatchSorted<R> {
    /// Run the full join and sort all answers by cost.
    pub fn new(q: &ConjunctiveQuery, tree: &JoinTree, rels: Vec<Relation>) -> Self {
        let mut answers = materialize_ranked::<R>(q, tree, rels);
        answers.sort_by(|a, b| a.0.cmp(&b.0));
        BatchSorted {
            answers: answers.into_iter(),
        }
    }
}

impl<R: RankingFunction> Iterator for BatchSorted<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        self.answers
            .next()
            .map(|(cost, values)| RankedAnswer { cost, values })
    }
}

impl<R: RankingFunction> AnyK for BatchSorted<R> {
    type Cost = R::Cost;
}

/// Join-then-heapify baseline: pops lazily.
pub struct BatchHeap<R: RankingFunction> {
    heap: BinaryHeap<Reverse<(R::Cost, Vec<Value>)>>,
}

impl<R: RankingFunction> BatchHeap<R> {
    /// Run the full join and heapify all answers (O(r)).
    pub fn new(q: &ConjunctiveQuery, tree: &JoinTree, rels: Vec<Relation>) -> Self
    where
        R::Cost: Ord,
    {
        let answers = materialize_ranked::<R>(q, tree, rels);
        BatchHeap {
            heap: answers.into_iter().map(Reverse).collect(),
        }
    }
}

impl<R: RankingFunction> Iterator for BatchHeap<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        self.heap
            .pop()
            .map(|Reverse((cost, values))| RankedAnswer { cost, values })
    }
}

impl<R: RankingFunction> AnyK for BatchHeap<R> {
    type Cost = R::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::SumCost;
    use anyk_query::cq::path_query;
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_storage::{RelationBuilder, Schema};

    fn rels() -> Vec<Relation> {
        let mk = |rows: &[(i64, i64, f64)], cols: [&str; 2]| {
            let mut b = RelationBuilder::new(Schema::new(cols));
            for &(x, y, w) in rows {
                b.push_ints(&[x, y], w);
            }
            b.finish()
        };
        vec![
            mk(&[(1, 2, 1.0), (1, 3, 0.5)], ["a", "b"]),
            mk(&[(2, 5, 1.0), (3, 6, 0.25), (2, 6, 0.125)], ["b", "c"]),
        ]
    }

    #[test]
    fn sorted_and_heap_agree() {
        let q = path_query(2);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        };
        let s: Vec<f64> = BatchSorted::<SumCost>::new(&q, &tree, rels())
            .map(|a| a.cost.get())
            .collect();
        let h: Vec<f64> = BatchHeap::<SumCost>::new(&q, &tree, rels())
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(s, h);
        assert_eq!(s, vec![0.75, 1.125, 2.0]);
    }
}
