//! Ranked enumeration for **cyclic** queries (§3 + §4): decompose, run
//! T-DP per tree, merge ranked streams.
//!
//! * Triangle: fractional hypertree width 1.5 — materialize all
//!   triangles with Generic-Join in O~(n^1.5) (worst-case optimal),
//!   then rank lazily ([`RankedMaterialized`]).
//! * 4-cycle: submodular width 1.5 — the union-of-trees case split of
//!   [`anyk_join::c4`] gives disjoint *acyclic* instances; each gets its
//!   own [`AnyKPart`] enumerator and a [`RankedUnion`] merges them.
//!   Preprocessing O~(n^1.5), delay O~(1): for small `k`, the k
//!   lightest 4-cycles cost about as much as the Boolean query — the
//!   paper's §1 headline.
//!
//! Ranking functions must be **commutative** here (sum/max/min/prod):
//! the per-case queries serialize the original atoms in different
//! orders, so order-sensitive rankings (lexicographic) are not
//! well-defined across cases. Order-sensitive rankings *are* served on
//! cyclic queries one level up: the engine routes them to the
//! materialized artifact ([`wco_ranked_materialize`] combines weights
//! in canonical atom order, which is well-defined for any ranking).

use crate::answer::{AnyK, RankedAnswer};
use crate::part::AnyKPart;
use crate::ranking::RankingFunction;
use crate::rec::AnyKRec;
use crate::succorder::SuccessorKind;
use crate::tdp::TdpInstance;
use crate::union::RankedUnion;
use anyk_join::c4::{c4_cases_provider, CaseOut};
use anyk_join::generic_join::generic_join_with;
use anyk_query::cq::{triangle_query, ConjunctiveQuery};
use anyk_storage::{BuildEachTime, IndexProvider, Relation, Value};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// A materialized answer set ranked lazily through a binary heap
/// (heapify O(r), pop O(log r)).
pub struct RankedMaterialized<C: Ord> {
    heap: BinaryHeap<Reverse<HeapItem<C>>>,
}

struct HeapItem<C> {
    cost: C,
    values: Vec<Value>,
}

impl<C: Ord> PartialEq for HeapItem<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.values == other.values
    }
}
impl<C: Ord> Eq for HeapItem<C> {}
impl<C: Ord> PartialOrd for HeapItem<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: Ord> Ord for HeapItem<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| self.values.cmp(&other.values))
    }
}

impl<C: Ord + Clone + std::fmt::Debug> RankedMaterialized<C> {
    /// Heapify `(cost, values)` pairs.
    pub fn new(items: Vec<(C, Vec<Value>)>) -> Self {
        RankedMaterialized {
            heap: items
                .into_iter()
                .map(|(cost, values)| Reverse(HeapItem { cost, values }))
                .collect(),
        }
    }
}

impl<C: Ord + Clone + std::fmt::Debug> Iterator for RankedMaterialized<C> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        self.heap.pop().map(|Reverse(item)| RankedAnswer {
            cost: item.cost,
            values: item.values,
        })
    }
}

impl<C: Ord + Clone + std::fmt::Debug> AnyK for RankedMaterialized<C> {
    type Cost = C;
}

/// Materialize every answer of `q` worst-case-optimally (Generic-Join)
/// with its cost under `R`, combining tuple weights in **atom order** —
/// well-defined for the commutative rankings the cyclic routes accept.
/// This is both the triangle plan's materialization step and the
/// materialize-then-sort batch baseline for cyclic routes.
pub fn wco_ranked_materialize<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
) -> Vec<(R::Cost, Vec<Value>)> {
    wco_ranked_materialize_with::<R>(q, rels, &BuildEachTime)
}

/// [`wco_ranked_materialize`] with trie construction delegated to a
/// shared [`IndexProvider`] — a warm index catalog turns the
/// materialization's index-build phase into lookups.
pub fn wco_ranked_materialize_with<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    indexes: &dyn IndexProvider,
) -> Vec<(R::Cost, Vec<Value>)> {
    let mut items: Vec<(R::Cost, Vec<Value>)> = Vec::new();
    generic_join_with(q, rels, None, indexes, &mut |binding, rows| {
        let mut cost = R::identity();
        for (a, &r) in rows.iter().enumerate() {
            cost = R::combine(&cost, &R::lift(rels[a].weight(r)));
        }
        items.push((cost, binding.to_vec()));
        ControlFlow::Continue(())
    });
    items
}

/// Ranked enumeration of triangles: Generic-Join materialization (the
/// width-1.5 single bag) + lazy heap ranking.
pub fn triangle_ranked<R: RankingFunction>(rels: &[Relation]) -> RankedMaterialized<R::Cost> {
    assert_eq!(rels.len(), 3);
    RankedMaterialized::new(wco_ranked_materialize::<R>(&triangle_query(), rels))
}

/// A ranked answer set **sorted once and shared**: the prepared form of
/// every materialize-then-sort plan (the triangle route, and the batch
/// baseline on cyclic routes). Construction pays the `O(r log r)` sort;
/// each [`SortedAnswers::stream`] is then a zero-copy cursor over the
/// shared `Arc` — any number of streams, on any thread, in any order.
#[derive(Debug, Clone)]
pub struct SortedAnswers<C> {
    /// Sorted by `(cost, values)` — a deterministic total order, so
    /// concurrent streams are byte-identical even among cost ties.
    items: Arc<Vec<(C, Vec<Value>)>>,
}

impl<C: Ord + Clone + std::fmt::Debug> SortedAnswers<C> {
    /// Sort `(cost, values)` pairs into the shared prepared form.
    pub fn new(mut items: Vec<(C, Vec<Value>)>) -> Self {
        items.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        SortedAnswers {
            items: Arc::new(items),
        }
    }

    /// Wrap items already in `(cost, values)` order without re-sorting
    /// — the upgrade path of [`LazySortedAnswers`], whose exhausted
    /// first stream emitted the answers in exactly this order.
    fn from_sorted(items: Vec<(C, Vec<Value>)>) -> Self {
        debug_assert!(items
            .windows(2)
            .all(|w| (&w[0].0, &w[0].1) <= (&w[1].0, &w[1].1)));
        SortedAnswers {
            items: Arc::new(items),
        }
    }

    /// Total number of answers.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the query has no answers.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A fresh independent cursor over the shared sorted answers.
    pub fn stream(&self) -> SortedStream<C> {
        SortedStream {
            items: Arc::clone(&self.items),
            pos: 0,
        }
    }
}

/// An independent cursor over a [`SortedAnswers`] instance.
pub struct SortedStream<C> {
    items: Arc<Vec<(C, Vec<Value>)>>,
    pos: usize,
}

impl<C: Ord + Clone + std::fmt::Debug> Iterator for SortedStream<C> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        let (cost, values) = self.items.get(self.pos)?;
        self.pos += 1;
        Some(RankedAnswer {
            cost: cost.clone(),
            values: values.clone(),
        })
    }
}

impl<C: Ord + Clone + std::fmt::Debug + Send + Sync> AnyK for SortedStream<C> {
    type Cost = C;
}

/// A materialized answer set whose `O(r log r)` sort is **deferred**:
/// the prepared form of the triangle route.
///
/// Construction stores the worst-case-optimally materialized answers
/// unsorted (`O(r)`). The **first** stream runs a lazy binary heap over
/// them — `O(r)` heapify + `O(log r)` per pop, so a one-shot top-k
/// caller pays `O(r + k log r)` instead of the full sort. The shared
/// [`SortedAnswers`] artifact is installed *background-free* the moment
/// it pays for itself:
///
/// * when the first stream **exhausts**, its emission order *is* the
///   sorted order, so the artifact is installed without any extra sort;
/// * when a **second stream spawns** while the answers are still
///   unsorted, the spawn pays the one-time sort and every stream from
///   then on is a zero-copy cursor.
///
/// Both the heap and the sort order by `(cost, values)`, so all streams
/// — lazy first stream included — are byte-identical, ties and all.
/// `Clone + Send + Sync`: clones share the state machine, any thread
/// may spawn streams.
#[derive(Debug, Clone)]
pub struct LazySortedAnswers<C> {
    state: Arc<Mutex<LazyState<C>>>,
    /// Set (under the state lock) the moment the sorted artifact is
    /// installed. Lock-free signal for the live first stream to stop
    /// buffering its emissions — the buffer would only be discarded at
    /// exhaustion once an artifact exists.
    sorted: Arc<AtomicBool>,
}

#[derive(Debug)]
enum LazyState<C> {
    /// Materialized, not yet sorted. `first_spawned` records whether
    /// the lazy-heap first stream is already out (the next spawn pays
    /// the sort).
    Unsorted {
        items: Arc<Vec<(C, Vec<Value>)>>,
        first_spawned: bool,
    },
    /// The shared sorted artifact is installed; streams are cursors.
    Sorted(SortedAnswers<C>),
}

/// A lazy-heap element: an index into the shared unsorted answers,
/// compared through the `Arc` by `(cost, values)` — exactly the order
/// [`SortedAnswers`] sorts by, so heap emission matches the cursors'
/// order ties included, without copying any tuple at spawn time.
struct IdxEntry<C: Ord> {
    items: Arc<Vec<(C, Vec<Value>)>>,
    idx: u32,
}

impl<C: Ord> IdxEntry<C> {
    fn key(&self) -> (&C, &Vec<Value>) {
        let (c, v) = &self.items[self.idx as usize];
        (c, v)
    }
}

impl<C: Ord> PartialEq for IdxEntry<C> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<C: Ord> Eq for IdxEntry<C> {}
impl<C: Ord> PartialOrd for IdxEntry<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: Ord> Ord for IdxEntry<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl<C: Ord + Clone + std::fmt::Debug> LazySortedAnswers<C> {
    /// Store materialized `(cost, values)` pairs without sorting —
    /// `O(r)`.
    pub fn new(items: Vec<(C, Vec<Value>)>) -> Self {
        LazySortedAnswers {
            state: Arc::new(Mutex::new(LazyState::Unsorted {
                items: Arc::new(items),
                first_spawned: false,
            })),
            sorted: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Total number of answers.
    pub fn len(&self) -> usize {
        match &*self.lock() {
            LazyState::Unsorted { items, .. } => items.len(),
            LazyState::Sorted(s) => s.len(),
        }
    }

    /// True iff the query has no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the shared sorted artifact has been installed (i.e.
    /// the deferred sort has been paid — by a second stream spawn or a
    /// first-stream exhaustion). Laziness diagnostic: a prepared
    /// triangle that has only served one partial top-k stream must
    /// still report `false`.
    pub fn is_sorted(&self) -> bool {
        matches!(&*self.lock(), LazyState::Sorted(_))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LazyState<C>> {
        self.state.lock().expect("lazy-sort state lock poisoned")
    }

    /// Spawn a ranked stream. The first spawn is the lazy heap; later
    /// spawns upgrade to (or reuse) the shared sorted artifact.
    pub fn stream(&self) -> LazySortedStream<C> {
        let mut st = self.lock();
        match &mut *st {
            LazyState::Sorted(sorted) => LazySortedStream {
                inner: LazyInner::Cursor(sorted.stream()),
            },
            LazyState::Unsorted {
                items,
                first_spawned,
            } => {
                if *first_spawned {
                    // Second spawn while unsorted: pay the one-time
                    // sort, install the shared artifact. (The clone
                    // only happens if the first stream is still alive
                    // and holding the unsorted `Arc`.)
                    let owned = Arc::try_unwrap(std::mem::take(items))
                        .unwrap_or_else(|shared| (*shared).clone());
                    let sorted = SortedAnswers::new(owned);
                    let cursor = sorted.stream();
                    *st = LazyState::Sorted(sorted);
                    self.sorted.store(true, AtomicOrdering::Release);
                    LazySortedStream {
                        inner: LazyInner::Cursor(cursor),
                    }
                } else {
                    *first_spawned = true;
                    // Index heap over the shared answers: O(r) build,
                    // zero tuple copies — elements compare through the
                    // `Arc` by `(cost, values)`, the sorted order.
                    let heap: BinaryHeap<Reverse<IdxEntry<C>>> = (0..items.len() as u32)
                        .map(|idx| {
                            Reverse(IdxEntry {
                                items: Arc::clone(items),
                                idx,
                            })
                        })
                        .collect();
                    LazySortedStream {
                        inner: LazyInner::Heap {
                            heap,
                            emitted: Vec::new(),
                            state: Arc::clone(&self.state),
                            sorted_flag: Arc::clone(&self.sorted),
                        },
                    }
                }
            }
        }
    }
}

/// A stream off a [`LazySortedAnswers`]: either the lazy-heap first
/// stream (which installs the sorted artifact when it exhausts) or a
/// zero-copy cursor over the installed [`SortedAnswers`].
pub struct LazySortedStream<C: Ord> {
    inner: LazyInner<C>,
}

enum LazyInner<C: Ord> {
    Heap {
        heap: BinaryHeap<Reverse<IdxEntry<C>>>,
        /// Indices into the shared items in emission = sorted order: on
        /// exhaustion the permutation turns the shared items into the
        /// sorted artifact for free (no re-sort, no tuple clones).
        /// Abandoned (and freed) as soon as `sorted_flag` reports that
        /// a concurrent spawn already installed the artifact.
        emitted: Vec<u32>,
        state: Arc<Mutex<LazyState<C>>>,
        sorted_flag: Arc<AtomicBool>,
    },
    Cursor(SortedStream<C>),
}

impl<C: Ord + Clone + std::fmt::Debug> Iterator for LazySortedStream<C> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            LazyInner::Cursor(c) => c.next(),
            LazyInner::Heap {
                heap,
                emitted,
                state,
                sorted_flag,
            } => match heap.pop() {
                Some(Reverse(entry)) => {
                    let (cost, values) = entry.key();
                    let a = RankedAnswer {
                        cost: cost.clone(),
                        values: values.clone(),
                    };
                    if sorted_flag.load(AtomicOrdering::Acquire) {
                        // A sibling spawn already installed the sorted
                        // artifact: the buffer can never be used — free
                        // it and stop accumulating.
                        if !emitted.is_empty() {
                            *emitted = Vec::new();
                        }
                    } else {
                        emitted.push(entry.idx);
                    }
                    Some(a)
                }
                None => {
                    // Exhausted: the emission order is the sorted
                    // order — permute the shared items into the
                    // artifact with no extra sort and no tuple clones
                    // (unless a concurrent second spawn already
                    // installed one; the buffer is partial in that
                    // case, but also unreachable: the install only
                    // happens from the still-`Unsorted` state).
                    let mut st = state.lock().expect("lazy-sort state lock poisoned");
                    if let LazyState::Unsorted { items, .. } = &mut *st {
                        let owned = Arc::try_unwrap(std::mem::take(items))
                            .unwrap_or_else(|shared| (*shared).clone());
                        let mut slots: Vec<Option<(C, Vec<Value>)>> =
                            owned.into_iter().map(Some).collect();
                        let ordered = emitted
                            .drain(..)
                            .map(|i| slots[i as usize].take().expect("each index emitted once"))
                            .collect();
                        *st = LazyState::Sorted(SortedAnswers::from_sorted(ordered));
                        sorted_flag.store(true, AtomicOrdering::Release);
                    }
                    drop(st);
                    // Degrade to an exhausted cursor so repeated
                    // `next()` calls stay cheap and re-install nothing.
                    self.inner = LazyInner::Cursor(SortedStream {
                        items: Arc::new(Vec::new()),
                        pos: 0,
                    });
                    None
                }
            },
        }
    }
}

impl<C: Ord + Clone + std::fmt::Debug + Send + Sync> AnyK for LazySortedStream<C> {
    type Cost = C;
}

/// The prepared triangle plan: all triangles materialized
/// worst-case-optimally, the sort deferred ([`LazySortedAnswers`]) —
/// a one-shot top-k first stream pays `O(r + k log r)`, repeated
/// streams share the sorted artifact installed on upgrade.
pub fn prepare_triangle<R: RankingFunction>(rels: &[Relation]) -> LazySortedAnswers<R::Cost> {
    prepare_triangle_with::<R>(rels, &BuildEachTime)
}

/// [`prepare_triangle`] with trie construction delegated to a shared
/// [`IndexProvider`].
pub fn prepare_triangle_with<R: RankingFunction>(
    rels: &[Relation],
    indexes: &dyn IndexProvider,
) -> LazySortedAnswers<R::Cost> {
    assert_eq!(rels.len(), 3);
    LazySortedAnswers::new(wco_ranked_materialize_with::<R>(
        &triangle_query(),
        rels,
        indexes,
    ))
}

/// One case stream of the C4 plan: an acyclic enumerator whose answers
/// are remapped to the original `(x1, x2, x3, x4)` output.
pub struct CaseStream<I: AnyK> {
    inner: I,
    out: [CaseOut; 4],
}

impl<I: AnyK> Iterator for CaseStream<I> {
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let a = self.inner.next()?;
        let values = self
            .out
            .iter()
            .map(|o| match *o {
                CaseOut::Fixed(v) => v,
                CaseOut::Var(cv) => a.values[cv],
            })
            .collect();
        Some(RankedAnswer {
            cost: a.cost,
            values,
        })
    }
}

impl<I: AnyK> AnyK for CaseStream<I> {
    type Cost = I::Cost;
}

/// Which any-k engine drives each case of a cyclic plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclicEngine {
    /// ANYK-PART with the given successor order.
    Part(SuccessorKind),
    /// ANYK-REC.
    Rec,
}

/// The prepared 4-cycle plan: every case of the submodular-width
/// union-of-trees split with its T-DP instance behind an `Arc`, so any
/// number of ranked streams (PART or REC, on any thread) enumerate from
/// one `O~(n^1.5)` preprocessing pass.
#[derive(Clone)]
pub struct PreparedC4<R: RankingFunction> {
    cases: Vec<(Arc<TdpInstance<R>>, [CaseOut; 4])>,
}

impl<R: RankingFunction> PreparedC4<R> {
    /// Run the case split and T-DP preprocessing once. `threshold` is
    /// the heavy cutoff (see [`anyk_query::cycles::heavy_threshold`]).
    /// The light-light case merges pre-joined edge weights under `R`'s
    /// weight-level `⊗`, so any scalar ranking ranks correctly;
    /// rankings without one (lexicographic) get
    /// [`TdpError::NonCollapsibleRanking`](crate::tdp::TdpError).
    pub fn prepare(rels: &[Relation], threshold: usize) -> Result<Self, crate::tdp::TdpError> {
        Self::prepare_with(rels, threshold, &BuildEachTime)
    }

    /// [`PreparedC4::prepare`] with trie construction delegated to a
    /// shared [`IndexProvider`] — the case split's degree counting,
    /// residual extraction, and bag joins all resolve their tries
    /// through it.
    pub fn prepare_with(
        rels: &[Relation],
        threshold: usize,
        indexes: &dyn IndexProvider,
    ) -> Result<Self, crate::tdp::TdpError> {
        let dioid = R::weight_dioid().ok_or(crate::tdp::TdpError::NonCollapsibleRanking)?;
        let mut cases = Vec::new();
        for case in c4_cases_provider(rels, threshold, dioid.combine, indexes) {
            let inst = TdpInstance::<R>::prepare(&case.query, &case.tree, case.relations)?;
            cases.push((Arc::new(inst), case.out));
        }
        Ok(PreparedC4 { cases })
    }

    /// Number of cases in the union-of-trees split.
    pub fn num_cases(&self) -> usize {
        self.cases.len()
    }

    /// A fresh ranked stream driven by ANYK-PART with successor order
    /// `kind`, enumerating from the shared prepared cases.
    pub fn stream_part(&self, kind: SuccessorKind) -> RankedUnion<CaseStream<AnyKPart<R>>> {
        RankedUnion::new(
            self.cases
                .iter()
                .map(|(inst, out)| CaseStream {
                    inner: AnyKPart::new(Arc::clone(inst), kind),
                    out: *out,
                })
                .collect(),
        )
    }

    /// A fresh ranked stream driven by ANYK-REC.
    pub fn stream_rec(&self) -> RankedUnion<CaseStream<AnyKRec<R>>> {
        RankedUnion::new(
            self.cases
                .iter()
                .map(|(inst, out)| CaseStream {
                    inner: AnyKRec::new(Arc::clone(inst)),
                    out: *out,
                })
                .collect(),
        )
    }
}

/// Ranked enumeration of 4-cycles via the submodular-width
/// union-of-trees plan, driven by ANYK-PART. `threshold` is the heavy
/// cutoff (see [`anyk_query::cycles::heavy_threshold`]). Output
/// variables are `(x1, x2, x3, x4)`; cost = ranking over all four edge
/// weights.
///
/// # Panics
///
/// If `R` has no weight-level view ([`RankingFunction::weight_dioid`]
/// is `None`, e.g. [`LexCost`](crate::ranking::LexCost)) — use
/// [`try_c4_ranked_part`] for the typed error.
pub fn c4_ranked_part<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
    kind: SuccessorKind,
) -> RankedUnion<CaseStream<AnyKPart<R>>> {
    try_c4_ranked_part(rels, threshold, kind)
        .unwrap_or_else(|e| panic!("C4 plan preparation failed: {e:?}; use try_c4_ranked_part"))
}

/// Fallible form of [`c4_ranked_part`]: surfaces a case query/tree
/// mismatch or an unsupported (non-collapsible) ranking as a
/// [`TdpError`](crate::tdp::TdpError) instead of panicking (the seam
/// the engine layer routes through).
pub fn try_c4_ranked_part<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
    kind: SuccessorKind,
) -> Result<RankedUnion<CaseStream<AnyKPart<R>>>, crate::tdp::TdpError> {
    Ok(PreparedC4::prepare(rels, threshold)?.stream_part(kind))
}

/// Ranked enumeration of 4-cycles driven by ANYK-REC.
///
/// # Panics
///
/// If `R` has no weight-level view (see [`c4_ranked_part`]) — use
/// [`try_c4_ranked_rec`] for the typed error.
pub fn c4_ranked_rec<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
) -> RankedUnion<CaseStream<AnyKRec<R>>> {
    try_c4_ranked_rec(rels, threshold)
        .unwrap_or_else(|e| panic!("C4 plan preparation failed: {e:?}; use try_c4_ranked_rec"))
}

/// Fallible form of [`c4_ranked_rec`].
pub fn try_c4_ranked_rec<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
) -> Result<RankedUnion<CaseStream<AnyKRec<R>>>, crate::tdp::TdpError> {
    Ok(PreparedC4::prepare(rels, threshold)?.stream_rec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{MaxCost, SumCost};
    use anyk_join::generic_join::generic_join_materialize;
    use anyk_query::cq::cycle_query;
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Oracle: all 4-cycle answers with summed costs via Generic-Join.
    fn oracle_sorted(rels: &[Relation]) -> Vec<(f64, Vec<i64>)> {
        let q = cycle_query(4);
        let (res, _) = generic_join_materialize(&q, rels, None);
        let mut out: Vec<(f64, Vec<i64>)> = (0..res.len() as u32)
            .map(|i| {
                (
                    res.weight(i).get(),
                    res.row(i).iter().map(|v| v.int()).collect(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        out
    }

    fn run_part(rels: &[Relation], thr: usize, kind: SuccessorKind) -> Vec<(f64, Vec<i64>)> {
        c4_ranked_part::<SumCost>(rels, thr, kind)
            .map(|a| {
                (
                    a.cost.get(),
                    a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn check_instance(rows: &[(i64, i64, f64)], thresholds: &[usize]) {
        let e = edge_rel(rows);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let oracle = oracle_sorted(&rels);
        for &thr in thresholds {
            for kind in [SuccessorKind::Lazy, SuccessorKind::Take2] {
                let mut got = run_part(&rels, thr, kind);
                // Multiset equality + non-decreasing costs.
                assert!(
                    got.windows(2).all(|w| w[0].0 <= w[1].0),
                    "not sorted (thr {thr})"
                );
                got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                assert_eq!(got, oracle, "thr {thr} kind {kind:?}");
            }
            // REC engine too.
            let mut got: Vec<(f64, Vec<i64>)> = c4_ranked_rec::<SumCost>(&rels, thr)
                .map(|a| {
                    (
                        a.cost.get(),
                        a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                    )
                })
                .collect();
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
            got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            assert_eq!(got, oracle, "rec thr {thr}");
        }
    }

    #[test]
    fn small_cycle() {
        check_instance(
            &[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)],
            &[0, 1, 100],
        );
    }

    #[test]
    fn hub_instance() {
        // Dyadic weights: the case plans combine the four edge weights
        // in a different order than the Generic-Join oracle, so weights
        // must be exactly summable for bitwise cost comparison.
        let mut rows = Vec::new();
        for i in 2..8 {
            rows.push((1, i, 0.25 * i as f64));
            rows.push((i, 1, 0.125 * i as f64));
        }
        check_instance(&rows, &[0, 2, 3, 100]);
    }

    #[test]
    fn bidirectional_pairs() {
        check_instance(
            &[
                (1, 2, 1.0),
                (2, 1, 0.5),
                (2, 3, 0.25),
                (3, 2, 2.0),
                (1, 3, 0.125),
                (3, 1, 4.0),
            ],
            &[0, 1, 2, 100],
        );
    }

    #[test]
    fn triangle_ranked_matches_sorted_gj() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 0.75),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        let q = triangle_query();
        let (res, _) = generic_join_materialize(&q, &rels, None);
        let mut expect: Vec<f64> = (0..res.len() as u32).map(|i| res.weight(i).get()).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = triangle_ranked::<SumCost>(&rels)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn lazy_sorted_first_stream_defers_the_sort() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 0.75),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        let lazy = prepare_triangle::<SumCost>(&rels);
        assert!(!lazy.is_sorted(), "prepare must not pay the sort");
        assert!(!lazy.is_empty());

        // First stream: lazy heap; a partial top-k pull leaves the
        // sort unpaid.
        let mut s1 = lazy.stream();
        let first = s1.next().expect("has answers");
        assert!(!lazy.is_sorted(), "k=1 must not pay the sort");

        // Second spawn pays the one-time sort and installs the shared
        // artifact; its stream is byte-identical to the first one.
        let s2: Vec<_> = lazy.stream().map(|a| (a.cost, a.values)).collect();
        assert!(lazy.is_sorted(), "second spawn installs the artifact");
        let mut s1_all: Vec<_> = vec![(first.cost, first.values)];
        s1_all.extend(s1.map(|a| (a.cost, a.values)));
        assert_eq!(s1_all, s2, "heap stream == sorted cursor, ties included");
        assert!(s2.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn lazy_sorted_exhaustion_installs_artifact() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (1, 3, 0.125),
            (3, 2, 0.75),
            (2, 1, 4.0),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        let lazy = prepare_triangle::<SumCost>(&rels);
        let mut s1 = lazy.stream();
        let all: Vec<_> = (&mut s1).map(|a| (a.cost, a.values)).collect();
        assert!(!all.is_empty());
        assert!(
            lazy.is_sorted(),
            "a drained first stream installs the sorted artifact for free"
        );
        assert!(s1.next().is_none(), "exhausted stream stays exhausted");
        let again: Vec<_> = lazy.stream().map(|a| (a.cost, a.values)).collect();
        assert_eq!(all, again, "cursor replays the first stream exactly");
    }

    #[test]
    fn lazy_sorted_empty_answer_set() {
        // No triangles at all: both the heap path and the installed
        // artifact must behave.
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0)]);
        let rels = vec![e.clone(), e.clone(), e];
        let lazy = prepare_triangle::<SumCost>(&rels);
        assert!(lazy.is_empty());
        assert!(lazy.stream().next().is_none());
        assert!(lazy.is_sorted(), "empty first stream exhausts immediately");
        assert!(lazy.stream().next().is_none());
    }

    #[test]
    fn c4_max_ranking_matches_wco_oracle() {
        // Regression: the light-light case used to merge pre-joined
        // edge weights with `+` regardless of ranking, so Max costs
        // came out as max(w1+w4, w2+w3) instead of max of all four.
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 1, 2.0),
            (2, 1, 0.125),
            (1, 4, 3.0),
            (4, 2, 0.75),
            (2, 4, 1.5),
        ]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let mut want: Vec<f64> = wco_ranked_materialize::<MaxCost>(&cycle_query(4), &rels)
            .into_iter()
            .map(|(c, _)| c.get())
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(!want.is_empty());
        for thr in [0, 1, 2, 100] {
            let got: Vec<f64> = c4_ranked_part::<MaxCost>(&rels, thr, SuccessorKind::Lazy)
                .map(|a| a.cost.get())
                .collect();
            assert_eq!(got, want, "thr {thr}");
        }
    }

    #[test]
    fn lex_on_c4_is_a_typed_rejection() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let err = match PreparedC4::<crate::ranking::LexCost>::prepare(&rels, 1) {
            Err(e) => e,
            Ok(_) => panic!("lex must be rejected on the C4 plan"),
        };
        assert_eq!(err, crate::tdp::TdpError::NonCollapsibleRanking);
    }
}
