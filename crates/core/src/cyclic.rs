//! Ranked enumeration for **cyclic** queries (§3 + §4): decompose, run
//! T-DP per tree, merge ranked streams.
//!
//! * Triangle: fractional hypertree width 1.5 — materialize all
//!   triangles with Generic-Join in O~(n^1.5) (worst-case optimal),
//!   then rank lazily ([`RankedMaterialized`]).
//! * 4-cycle: submodular width 1.5 — the union-of-trees case split of
//!   [`anyk_join::c4`] gives disjoint *acyclic* instances; each gets its
//!   own [`AnyKPart`] enumerator and a [`RankedUnion`] merges them.
//!   Preprocessing O~(n^1.5), delay O~(1): for small `k`, the k
//!   lightest 4-cycles cost about as much as the Boolean query — the
//!   paper's §1 headline.
//!
//! Ranking functions must be **commutative** here (sum/max/min/prod):
//! the per-case queries serialize the original atoms in different
//! orders, so order-sensitive rankings (lexicographic) are not
//! well-defined across cases.

use crate::answer::{AnyK, RankedAnswer};
use crate::part::AnyKPart;
use crate::ranking::RankingFunction;
use crate::rec::AnyKRec;
use crate::succorder::SuccessorKind;
use crate::tdp::TdpInstance;
use crate::union::RankedUnion;
use anyk_join::c4::{c4_cases, CaseOut};
use anyk_join::generic_join::generic_join;
use anyk_query::cq::{triangle_query, ConjunctiveQuery};
use anyk_storage::{Relation, Value};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::ops::ControlFlow;
use std::sync::Arc;

/// A materialized answer set ranked lazily through a binary heap
/// (heapify O(r), pop O(log r)).
pub struct RankedMaterialized<C: Ord> {
    heap: BinaryHeap<Reverse<HeapItem<C>>>,
}

struct HeapItem<C> {
    cost: C,
    values: Vec<Value>,
}

impl<C: Ord> PartialEq for HeapItem<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.values == other.values
    }
}
impl<C: Ord> Eq for HeapItem<C> {}
impl<C: Ord> PartialOrd for HeapItem<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: Ord> Ord for HeapItem<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| self.values.cmp(&other.values))
    }
}

impl<C: Ord + Clone + std::fmt::Debug> RankedMaterialized<C> {
    /// Heapify `(cost, values)` pairs.
    pub fn new(items: Vec<(C, Vec<Value>)>) -> Self {
        RankedMaterialized {
            heap: items
                .into_iter()
                .map(|(cost, values)| Reverse(HeapItem { cost, values }))
                .collect(),
        }
    }
}

impl<C: Ord + Clone + std::fmt::Debug> Iterator for RankedMaterialized<C> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        self.heap.pop().map(|Reverse(item)| RankedAnswer {
            cost: item.cost,
            values: item.values,
        })
    }
}

impl<C: Ord + Clone + std::fmt::Debug> AnyK for RankedMaterialized<C> {
    type Cost = C;
}

/// Materialize every answer of `q` worst-case-optimally (Generic-Join)
/// with its cost under `R`, combining tuple weights in **atom order** —
/// well-defined for the commutative rankings the cyclic routes accept.
/// This is both the triangle plan's materialization step and the
/// materialize-then-sort batch baseline for cyclic routes.
pub fn wco_ranked_materialize<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
) -> Vec<(R::Cost, Vec<Value>)> {
    let mut items: Vec<(R::Cost, Vec<Value>)> = Vec::new();
    generic_join(q, rels, None, &mut |binding, rows| {
        let mut cost = R::identity();
        for (a, &r) in rows.iter().enumerate() {
            cost = R::combine(&cost, &R::lift(rels[a].weight(r)));
        }
        items.push((cost, binding.to_vec()));
        ControlFlow::Continue(())
    });
    items
}

/// Ranked enumeration of triangles: Generic-Join materialization (the
/// width-1.5 single bag) + lazy heap ranking.
pub fn triangle_ranked<R: RankingFunction>(rels: &[Relation]) -> RankedMaterialized<R::Cost> {
    assert_eq!(rels.len(), 3);
    RankedMaterialized::new(wco_ranked_materialize::<R>(&triangle_query(), rels))
}

/// A ranked answer set **sorted once and shared**: the prepared form of
/// every materialize-then-sort plan (the triangle route, and the batch
/// baseline on cyclic routes). Construction pays the `O(r log r)` sort;
/// each [`SortedAnswers::stream`] is then a zero-copy cursor over the
/// shared `Arc` — any number of streams, on any thread, in any order.
#[derive(Debug, Clone)]
pub struct SortedAnswers<C> {
    /// Sorted by `(cost, values)` — a deterministic total order, so
    /// concurrent streams are byte-identical even among cost ties.
    items: Arc<Vec<(C, Vec<Value>)>>,
}

impl<C: Ord + Clone + std::fmt::Debug> SortedAnswers<C> {
    /// Sort `(cost, values)` pairs into the shared prepared form.
    pub fn new(mut items: Vec<(C, Vec<Value>)>) -> Self {
        items.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        SortedAnswers {
            items: Arc::new(items),
        }
    }

    /// Total number of answers.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the query has no answers.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A fresh independent cursor over the shared sorted answers.
    pub fn stream(&self) -> SortedStream<C> {
        SortedStream {
            items: Arc::clone(&self.items),
            pos: 0,
        }
    }
}

/// An independent cursor over a [`SortedAnswers`] instance.
pub struct SortedStream<C> {
    items: Arc<Vec<(C, Vec<Value>)>>,
    pos: usize,
}

impl<C: Ord + Clone + std::fmt::Debug> Iterator for SortedStream<C> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        let (cost, values) = self.items.get(self.pos)?;
        self.pos += 1;
        Some(RankedAnswer {
            cost: cost.clone(),
            values: values.clone(),
        })
    }
}

impl<C: Ord + Clone + std::fmt::Debug + Send + Sync> AnyK for SortedStream<C> {
    type Cost = C;
}

/// The prepared triangle plan: all triangles materialized
/// worst-case-optimally and sorted, ready for repeated streaming.
pub fn prepare_triangle<R: RankingFunction>(rels: &[Relation]) -> SortedAnswers<R::Cost> {
    assert_eq!(rels.len(), 3);
    SortedAnswers::new(wco_ranked_materialize::<R>(&triangle_query(), rels))
}

/// One case stream of the C4 plan: an acyclic enumerator whose answers
/// are remapped to the original `(x1, x2, x3, x4)` output.
pub struct CaseStream<I: AnyK> {
    inner: I,
    out: [CaseOut; 4],
}

impl<I: AnyK> Iterator for CaseStream<I> {
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let a = self.inner.next()?;
        let values = self
            .out
            .iter()
            .map(|o| match *o {
                CaseOut::Fixed(v) => v,
                CaseOut::Var(cv) => a.values[cv],
            })
            .collect();
        Some(RankedAnswer {
            cost: a.cost,
            values,
        })
    }
}

impl<I: AnyK> AnyK for CaseStream<I> {
    type Cost = I::Cost;
}

/// Which any-k engine drives each case of a cyclic plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclicEngine {
    /// ANYK-PART with the given successor order.
    Part(SuccessorKind),
    /// ANYK-REC.
    Rec,
}

/// The prepared 4-cycle plan: every case of the submodular-width
/// union-of-trees split with its T-DP instance behind an `Arc`, so any
/// number of ranked streams (PART or REC, on any thread) enumerate from
/// one `O~(n^1.5)` preprocessing pass.
#[derive(Clone)]
pub struct PreparedC4<R: RankingFunction> {
    cases: Vec<(Arc<TdpInstance<R>>, [CaseOut; 4])>,
}

impl<R: RankingFunction> PreparedC4<R> {
    /// Run the case split and T-DP preprocessing once. `threshold` is
    /// the heavy cutoff (see [`anyk_query::cycles::heavy_threshold`]).
    pub fn prepare(rels: &[Relation], threshold: usize) -> Result<Self, crate::tdp::TdpError> {
        let mut cases = Vec::new();
        for case in c4_cases(rels, threshold) {
            let inst = TdpInstance::<R>::prepare(&case.query, &case.tree, case.relations)?;
            cases.push((Arc::new(inst), case.out));
        }
        Ok(PreparedC4 { cases })
    }

    /// Number of cases in the union-of-trees split.
    pub fn num_cases(&self) -> usize {
        self.cases.len()
    }

    /// A fresh ranked stream driven by ANYK-PART with successor order
    /// `kind`, enumerating from the shared prepared cases.
    pub fn stream_part(&self, kind: SuccessorKind) -> RankedUnion<CaseStream<AnyKPart<R>>> {
        RankedUnion::new(
            self.cases
                .iter()
                .map(|(inst, out)| CaseStream {
                    inner: AnyKPart::new(Arc::clone(inst), kind),
                    out: *out,
                })
                .collect(),
        )
    }

    /// A fresh ranked stream driven by ANYK-REC.
    pub fn stream_rec(&self) -> RankedUnion<CaseStream<AnyKRec<R>>> {
        RankedUnion::new(
            self.cases
                .iter()
                .map(|(inst, out)| CaseStream {
                    inner: AnyKRec::new(Arc::clone(inst)),
                    out: *out,
                })
                .collect(),
        )
    }
}

/// Ranked enumeration of 4-cycles via the submodular-width
/// union-of-trees plan, driven by ANYK-PART. `threshold` is the heavy
/// cutoff (see [`anyk_query::cycles::heavy_threshold`]). Output
/// variables are `(x1, x2, x3, x4)`; cost = ranking over all four edge
/// weights.
pub fn c4_ranked_part<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
    kind: SuccessorKind,
) -> RankedUnion<CaseStream<AnyKPart<R>>> {
    try_c4_ranked_part(rels, threshold, kind)
        .expect("case query/tree are consistent by construction")
}

/// Fallible form of [`c4_ranked_part`]: surfaces a case query/tree
/// mismatch as a [`TdpError`](crate::tdp::TdpError) instead of panicking (the seam the
/// engine layer routes through).
pub fn try_c4_ranked_part<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
    kind: SuccessorKind,
) -> Result<RankedUnion<CaseStream<AnyKPart<R>>>, crate::tdp::TdpError> {
    Ok(PreparedC4::prepare(rels, threshold)?.stream_part(kind))
}

/// Ranked enumeration of 4-cycles driven by ANYK-REC.
pub fn c4_ranked_rec<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
) -> RankedUnion<CaseStream<AnyKRec<R>>> {
    try_c4_ranked_rec(rels, threshold).expect("case query/tree are consistent by construction")
}

/// Fallible form of [`c4_ranked_rec`].
pub fn try_c4_ranked_rec<R: RankingFunction>(
    rels: &[Relation],
    threshold: usize,
) -> Result<RankedUnion<CaseStream<AnyKRec<R>>>, crate::tdp::TdpError> {
    Ok(PreparedC4::prepare(rels, threshold)?.stream_rec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{MaxCost, SumCost};
    use anyk_join::generic_join::generic_join_materialize;
    use anyk_query::cq::cycle_query;
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Oracle: all 4-cycle answers with summed costs via Generic-Join.
    fn oracle_sorted(rels: &[Relation]) -> Vec<(f64, Vec<i64>)> {
        let q = cycle_query(4);
        let (res, _) = generic_join_materialize(&q, rels, None);
        let mut out: Vec<(f64, Vec<i64>)> = (0..res.len() as u32)
            .map(|i| {
                (
                    res.weight(i).get(),
                    res.row(i).iter().map(|v| v.int()).collect(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        out
    }

    fn run_part(rels: &[Relation], thr: usize, kind: SuccessorKind) -> Vec<(f64, Vec<i64>)> {
        c4_ranked_part::<SumCost>(rels, thr, kind)
            .map(|a| {
                (
                    a.cost.get(),
                    a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn check_instance(rows: &[(i64, i64, f64)], thresholds: &[usize]) {
        let e = edge_rel(rows);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let oracle = oracle_sorted(&rels);
        for &thr in thresholds {
            for kind in [SuccessorKind::Lazy, SuccessorKind::Take2] {
                let mut got = run_part(&rels, thr, kind);
                // Multiset equality + non-decreasing costs.
                assert!(
                    got.windows(2).all(|w| w[0].0 <= w[1].0),
                    "not sorted (thr {thr})"
                );
                got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                assert_eq!(got, oracle, "thr {thr} kind {kind:?}");
            }
            // REC engine too.
            let mut got: Vec<(f64, Vec<i64>)> = c4_ranked_rec::<SumCost>(&rels, thr)
                .map(|a| {
                    (
                        a.cost.get(),
                        a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                    )
                })
                .collect();
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
            got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            assert_eq!(got, oracle, "rec thr {thr}");
        }
    }

    #[test]
    fn small_cycle() {
        check_instance(
            &[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)],
            &[0, 1, 100],
        );
    }

    #[test]
    fn hub_instance() {
        // Dyadic weights: the case plans combine the four edge weights
        // in a different order than the Generic-Join oracle, so weights
        // must be exactly summable for bitwise cost comparison.
        let mut rows = Vec::new();
        for i in 2..8 {
            rows.push((1, i, 0.25 * i as f64));
            rows.push((i, 1, 0.125 * i as f64));
        }
        check_instance(&rows, &[0, 2, 3, 100]);
    }

    #[test]
    fn bidirectional_pairs() {
        check_instance(
            &[
                (1, 2, 1.0),
                (2, 1, 0.5),
                (2, 3, 0.25),
                (3, 2, 2.0),
                (1, 3, 0.125),
                (3, 1, 4.0),
            ],
            &[0, 1, 2, 100],
        );
    }

    #[test]
    fn triangle_ranked_matches_sorted_gj() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 0.75),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        let q = triangle_query();
        let (res, _) = generic_join_materialize(&q, &rels, None);
        let mut expect: Vec<f64> = (0..res.len() as u32).map(|i| res.weight(i).get()).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = triangle_ranked::<SumCost>(&rels)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn c4_max_ranking() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 1, 2.0),
            (2, 1, 0.1),
            (1, 4, 3.0),
        ]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let got: Vec<f64> = c4_ranked_part::<MaxCost>(&rels, 1, SuccessorKind::Lazy)
            .map(|a| a.cost.get())
            .collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert!(!got.is_empty());
    }
}
