//! Ranked enumeration for **arbitrary cyclic queries** through a tree
//! decomposition — the general `O~(n^fhw + r·polylog)` pipeline of §3 +
//! §4: materialize decomposition bags (worst-case-optimally), then run
//! any-k over the acyclic bag-level query.
//!
//! This complements [`crate::cyclic`]:
//!
//! * [`crate::cyclic::c4_ranked_part`] uses the 4-cycle's *submodular
//!   width* union-of-trees plan (preprocessing n^1.5);
//! * [`decomposed_ranked_part`] works for every query but pays the
//!   (possibly higher) fractional hypertree width — fhw = 2 for the
//!   4-cycle. Experiment E13 measures exactly this gap (the reason §3
//!   calls submodular width "the current frontier").

use crate::answer::{AnyK, RankedAnswer};
use crate::part::AnyKPart;
use crate::ranking::RankingFunction;
use crate::rec::AnyKRec;
use crate::succorder::SuccessorKind;
use crate::tdp::TdpInstance;
use anyk_join::decomposed::ghd_plan_provider;
use anyk_query::cq::ConjunctiveQuery;
use anyk_query::decompose::{fhw_exact, fhw_greedy, Decomposition};
use anyk_query::hypergraph::Hypergraph;
use anyk_storage::{BuildEachTime, IndexProvider, Relation};
use std::sync::Arc;

/// An any-k stream whose answers are re-ordered from bag-query variable
/// order back to the original query's `VarId` order.
pub struct DecomposedRanked<I: AnyK> {
    inner: I,
    /// `perm[v]` = bag-query VarId of original variable `v`.
    perm: Vec<usize>,
}

impl<I: AnyK> Iterator for DecomposedRanked<I> {
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let a = self.inner.next()?;
        let values = self.perm.iter().map(|&p| a.values[p]).collect();
        Some(RankedAnswer {
            cost: a.cost,
            values,
        })
    }
}

impl<I: AnyK> DecomposedRanked<I> {
    /// Wrap an any-k stream over a bag query with the permutation that
    /// maps bag-query variable order back to the original query's.
    pub fn new(inner: I, perm: Vec<usize>) -> Self {
        DecomposedRanked { inner, perm }
    }
}

impl<I: AnyK> AnyK for DecomposedRanked<I> {
    type Cost = I::Cost;
}

fn var_permutation(q: &ConjunctiveQuery, bag_query: &ConjunctiveQuery) -> Vec<usize> {
    (0..q.num_vars())
        .map(|v| {
            bag_query
                .var(q.var_name(v))
                .expect("bags cover every variable")
        })
        .collect()
}

/// The prepared GHD plan: bags materialized worst-case-optimally, the
/// bag-level T-DP run once, the instance shared behind an `Arc` — any
/// number of PART/REC streams (on any thread) enumerate from one
/// `O~(n^fhw)` preprocessing pass.
#[derive(Clone)]
pub struct PreparedDecomposed<R: RankingFunction> {
    inst: Arc<TdpInstance<R>>,
    perm: Vec<usize>,
}

impl<R: RankingFunction> PreparedDecomposed<R> {
    /// Materialize the bags of `decomp` and run T-DP once. Bag weights
    /// are merged under `R`'s weight-level `⊗`, so any scalar ranking
    /// ranks correctly; rankings without one (lexicographic) get
    /// [`TdpError::NonCollapsibleRanking`](crate::tdp::TdpError).
    pub fn prepare(
        q: &ConjunctiveQuery,
        rels: &[Relation],
        decomp: &Decomposition,
    ) -> Result<Self, crate::tdp::TdpError> {
        Self::prepare_with(q, rels, decomp, &BuildEachTime)
    }

    /// [`PreparedDecomposed::prepare`] with trie construction delegated
    /// to a shared [`IndexProvider`] — every bag's worst-case-optimal
    /// materialization resolves its tries through it.
    pub fn prepare_with(
        q: &ConjunctiveQuery,
        rels: &[Relation],
        decomp: &Decomposition,
        indexes: &dyn IndexProvider,
    ) -> Result<Self, crate::tdp::TdpError> {
        let dioid = R::weight_dioid().ok_or(crate::tdp::TdpError::NonCollapsibleRanking)?;
        let plan = ghd_plan_provider(q, rels, decomp, dioid.identity, dioid.combine, indexes);
        let perm = var_permutation(q, &plan.bag_query);
        let inst = TdpInstance::<R>::prepare(&plan.bag_query, &plan.bag_tree, plan.bag_relations)?;
        Ok(PreparedDecomposed {
            inst: Arc::new(inst),
            perm,
        })
    }

    /// A fresh ranked stream driven by ANYK-PART with successor order
    /// `kind`, enumerating from the shared prepared instance.
    pub fn stream_part(&self, kind: SuccessorKind) -> DecomposedRanked<AnyKPart<R>> {
        DecomposedRanked {
            inner: AnyKPart::new(Arc::clone(&self.inst), kind),
            perm: self.perm.clone(),
        }
    }

    /// A fresh ranked stream driven by ANYK-REC.
    pub fn stream_rec(&self) -> DecomposedRanked<AnyKRec<R>> {
        DecomposedRanked {
            inner: AnyKRec::new(Arc::clone(&self.inst)),
            perm: self.perm.clone(),
        }
    }
}

/// Ranked enumeration of a (possibly cyclic) query through `decomp`,
/// driven by ANYK-PART. Ranking must be commutative (see
/// [`crate::cyclic`] for why lexicographic is excluded on decomposed
/// plans).
///
/// # Panics
///
/// If `R` has no weight-level view ([`RankingFunction::weight_dioid`]
/// is `None`, e.g. [`LexCost`](crate::ranking::LexCost)) — use
/// [`try_decomposed_ranked_part`] for the typed error.
pub fn decomposed_ranked_part<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
    kind: SuccessorKind,
) -> DecomposedRanked<AnyKPart<R>> {
    try_decomposed_ranked_part(q, rels, decomp, kind).unwrap_or_else(|e| {
        panic!("GHD plan preparation failed: {e:?}; use try_decomposed_ranked_part")
    })
}

/// Fallible form of [`decomposed_ranked_part`]: surfaces a bag
/// query/tree mismatch or an unsupported (non-collapsible) ranking as
/// a [`TdpError`](crate::tdp::TdpError) instead of panicking (the seam
/// the engine layer routes through).
pub fn try_decomposed_ranked_part<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
    kind: SuccessorKind,
) -> Result<DecomposedRanked<AnyKPart<R>>, crate::tdp::TdpError> {
    Ok(PreparedDecomposed::prepare(q, rels, decomp)?.stream_part(kind))
}

/// Ranked enumeration through `decomp`, driven by ANYK-REC.
///
/// # Panics
///
/// If `R` has no weight-level view (see [`decomposed_ranked_part`]) —
/// use [`try_decomposed_ranked_rec`] for the typed error.
pub fn decomposed_ranked_rec<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
) -> DecomposedRanked<AnyKRec<R>> {
    try_decomposed_ranked_rec(q, rels, decomp).unwrap_or_else(|e| {
        panic!("GHD plan preparation failed: {e:?}; use try_decomposed_ranked_rec")
    })
}

/// Fallible form of [`decomposed_ranked_rec`].
pub fn try_decomposed_ranked_rec<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
) -> Result<DecomposedRanked<AnyKRec<R>>, crate::tdp::TdpError> {
    Ok(PreparedDecomposed::prepare(q, rels, decomp)?.stream_rec())
}

/// Pick a decomposition for `q` automatically: exact fhw for queries
/// with <= 9 variables, greedy min-fill beyond (exact search is
/// exponential in the variable count).
pub fn auto_decomposition(q: &ConjunctiveQuery) -> Decomposition {
    let h = Hypergraph::of_query(q);
    if q.num_vars() <= 9 {
        fhw_exact(&h)
    } else {
        fhw_greedy(&h)
    }
}

/// Convenience: pick a decomposition automatically via
/// [`auto_decomposition`] and enumerate ranked answers with
/// ANYK-PART(Lazy) under the caller's ranking function `R`.
pub fn ranked_auto<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: &[Relation],
) -> DecomposedRanked<AnyKPart<R>> {
    let decomp = auto_decomposition(q);
    decomposed_ranked_part::<R>(q, rels, &decomp, SuccessorKind::Lazy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{MaxCost, SumCost};
    use anyk_join::generic_join::generic_join_materialize;
    use anyk_query::cq::{cycle_query, triangle_query};
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Sorted oracle (costs + tuples) via Generic-Join; inputs must be
    /// duplicate-free and weights dyadic for exact comparison.
    fn oracle(q: &ConjunctiveQuery, rels: &[Relation]) -> Vec<(f64, Vec<i64>)> {
        let (res, _) = generic_join_materialize(q, rels, None);
        let mut out: Vec<(f64, Vec<i64>)> = (0..res.len() as u32)
            .map(|i| {
                (
                    res.weight(i).get(),
                    res.row(i).iter().map(|v| v.int()).collect(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        out
    }

    fn check(q: &ConjunctiveQuery, rels: &[Relation]) {
        let want = oracle(q, rels);
        let h = Hypergraph::of_query(q);
        let d = fhw_exact(&h);
        for engine in ["part", "rec", "auto"] {
            let mut got: Vec<(f64, Vec<i64>)> = match engine {
                "part" => decomposed_ranked_part::<SumCost>(q, rels, &d, SuccessorKind::Take2)
                    .map(|a| {
                        (
                            a.cost.get(),
                            a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                        )
                    })
                    .collect(),
                "rec" => decomposed_ranked_rec::<SumCost>(q, rels, &d)
                    .map(|a| {
                        (
                            a.cost.get(),
                            a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                        )
                    })
                    .collect(),
                _ => ranked_auto::<SumCost>(q, rels)
                    .map(|a| {
                        (
                            a.cost.get(),
                            a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
                        )
                    })
                    .collect(),
            };
            assert!(
                got.windows(2).all(|w| w[0].0 <= w[1].0),
                "{engine}: not sorted"
            );
            got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            assert_eq!(got.len(), want.len(), "{engine}: cardinality");
            for ((gc, gv), (wc, wv)) in got.iter().zip(&want) {
                assert!((gc - wc).abs() < 1e-9, "{engine}: cost {gc} vs {wc}");
                assert_eq!(gv, wv, "{engine}: tuple");
            }
        }
    }

    #[test]
    fn triangle_ranked_via_ghd() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 4.0),
        ]);
        check(&triangle_query(), &[e.clone(), e.clone(), e]);
    }

    #[test]
    fn four_cycle_ranked_via_ghd() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 1, 2.0),
            (2, 1, 0.75),
            (1, 4, 0.375),
        ]);
        check(&cycle_query(4), &[e.clone(), e.clone(), e.clone(), e]);
    }

    #[test]
    fn six_cycle_ranked_via_ghd() {
        // fhw(C6) = 2: this is a query the C4-specific plan cannot touch.
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 5, 0.125),
            (5, 6, 2.0),
            (6, 1, 0.0625),
            (2, 1, 1.5),
            (4, 3, 0.75),
        ]);
        check(
            &cycle_query(6),
            &[e.clone(), e.clone(), e.clone(), e.clone(), e.clone(), e],
        );
    }

    #[test]
    fn max_ranking_via_ghd_matches_wco_oracle() {
        // Regression: bag materialization used to sum assigned atoms'
        // weights regardless of ranking, corrupting Max/Min/Prod costs
        // whenever a bag covered more than one atom.
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (1, 3, 2.0),
            (3, 2, 0.125),
            (2, 1, 4.0),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let d = fhw_exact(&h);
        let mut want: Vec<f64> = crate::cyclic::wco_ranked_materialize::<MaxCost>(&q, &rels)
            .into_iter()
            .map(|(c, _)| c.get())
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(!want.is_empty());
        let got: Vec<f64> = decomposed_ranked_part::<MaxCost>(&q, &rels, &d, SuccessorKind::Lazy)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn lex_via_ghd_is_a_typed_rejection() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let rels = vec![e.clone(), e.clone(), e];
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let d = fhw_exact(&h);
        let err = match PreparedDecomposed::<crate::ranking::LexCost>::prepare(&q, &rels, &d) {
            Err(e) => e,
            Ok(_) => panic!("lex must be rejected on decomposed plans"),
        };
        assert_eq!(err, crate::tdp::TdpError::NonCollapsibleRanking);
    }
}
