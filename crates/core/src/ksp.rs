//! k-shortest paths in layered DAGs — the classic problem (Hoffman–
//! Pavley 1959, Dreyfus, Eppstein) that Part 3 of the paper identifies
//! as the historical root of ranked enumeration: a path query *is* a
//! multi-stage DP, and any-k over it *is* k-shortest paths.
//!
//! This adapter exists for two reasons: (1) it demonstrates the
//! correspondence concretely; (2) it provides an independent correctness
//! oracle for the enumeration engines (brute-force path enumeration in
//! the tests).

use crate::part::AnyKPart;
use crate::ranking::SumCost;
use crate::succorder::SuccessorKind;
use crate::tdp::TdpInstance;
use anyk_query::cq::path_query;
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_storage::{Relation, RelationBuilder, Schema};

/// A layered DAG: `edges[i]` connects layer `i` to layer `i+1` as
/// `(from, to, weight)` triples. Node ids are per-layer.
#[derive(Debug, Clone, Default)]
pub struct LayeredDag {
    /// One edge list per layer transition.
    pub edges: Vec<Vec<(u32, u32, f64)>>,
}

impl LayeredDag {
    /// Number of layer transitions (path length).
    pub fn length(&self) -> usize {
        self.edges.len()
    }

    /// Convert each layer's edges into a binary relation
    /// `R_i(x_{i-1}, x_i)` weighted by edge weight.
    fn relations(&self) -> Vec<Relation> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let schema = Schema::new([format!("x{i}"), format!("x{}", i + 1)]);
                let mut b = RelationBuilder::with_capacity(schema, layer.len());
                for &(u, v, w) in layer {
                    b.push_ints(&[u as i64, v as i64], w);
                }
                b.finish()
            })
            .collect()
    }
}

/// The `k` shortest source-to-sink paths, each as `(total weight, node
/// sequence)`. Paths arrive in non-decreasing weight; fewer than `k`
/// are returned if the DAG has fewer paths.
pub fn k_shortest_paths(dag: &LayeredDag, k: usize) -> Vec<(f64, Vec<u32>)> {
    assert!(dag.length() >= 1, "need at least one layer transition");
    let q = path_query(dag.length());
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => unreachable!("paths are acyclic"),
    };
    let inst =
        TdpInstance::<SumCost>::prepare(&q, &tree, dag.relations()).expect("tree matches query");
    AnyKPart::new(inst, SuccessorKind::Lazy)
        .take(k)
        .map(|a| {
            let nodes = a.values.iter().map(|v| v.int() as u32).collect();
            (a.cost.get(), nodes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force all paths (oracle).
    fn all_paths(dag: &LayeredDag) -> Vec<(f64, Vec<u32>)> {
        let mut paths: Vec<(f64, Vec<u32>)> = Vec::new();
        fn rec(
            dag: &LayeredDag,
            layer: usize,
            node: u32,
            acc_w: f64,
            acc_nodes: &mut Vec<u32>,
            out: &mut Vec<(f64, Vec<u32>)>,
        ) {
            if layer == dag.edges.len() {
                out.push((acc_w, acc_nodes.clone()));
                return;
            }
            for &(u, v, w) in &dag.edges[layer] {
                if u == node {
                    acc_nodes.push(v);
                    rec(dag, layer + 1, v, acc_w + w, acc_nodes, out);
                    acc_nodes.pop();
                }
            }
        }
        // Sources: all distinct `from` nodes of layer 0.
        let mut sources: Vec<u32> = dag.edges[0].iter().map(|&(u, _, _)| u).collect();
        sources.sort();
        sources.dedup();
        for s in sources {
            let mut acc = vec![s];
            rec(dag, 0, s, 0.0, &mut acc, &mut paths);
        }
        paths.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        paths
    }

    fn diamond() -> LayeredDag {
        LayeredDag {
            edges: vec![
                vec![(0, 0, 1.0), (0, 1, 2.0)],
                vec![(0, 0, 5.0), (1, 0, 1.0)],
            ],
        }
    }

    #[test]
    fn shortest_first() {
        let ksp = k_shortest_paths(&diamond(), 1);
        assert_eq!(ksp.len(), 1);
        // 0 ->(2) 1 ->(1) 0: total 3 < 0 ->(1) 0 ->(5) 0 = 6.
        assert_eq!(ksp[0].0, 3.0);
        assert_eq!(ksp[0].1, vec![0, 1, 0]);
    }

    #[test]
    fn matches_bruteforce() {
        let dag = LayeredDag {
            edges: vec![
                vec![(0, 0, 1.0), (0, 1, 0.5), (1, 0, 0.25), (1, 1, 4.0)],
                vec![(0, 0, 2.0), (0, 1, 0.125), (1, 1, 1.0)],
                vec![(0, 0, 0.5), (1, 0, 3.0), (1, 1, 0.75)],
            ],
        };
        let oracle = all_paths(&dag);
        let got = k_shortest_paths(&dag, oracle.len() + 5);
        assert_eq!(got.len(), oracle.len());
        for (g, o) in got.iter().zip(&oracle) {
            assert!((g.0 - o.0).abs() < 1e-9, "{} vs {}", g.0, o.0);
        }
        // Costs non-decreasing.
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn k_truncates() {
        let got = k_shortest_paths(&diamond(), 1);
        assert_eq!(got.len(), 1);
        let got = k_shortest_paths(&diamond(), 100);
        assert_eq!(got.len(), 2);
    }
}
