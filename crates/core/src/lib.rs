//! # anyk-core
//!
//! **Ranked enumeration over join queries ("any-k")** — the paper's
//! central topic (Part 3 of *Optimal Join Algorithms Meet Top-k*,
//! SIGMOD 2020): return join answers one by one in ranking order,
//! minimizing the time to the k-th answer *for every k simultaneously*,
//! without knowing k in advance.
//!
//! ## Architecture
//!
//! * [`ranking`] — ranking functions as selective dioids (sum, max, min,
//!   product, lexicographic).
//! * [`tdp`] — T-DP preprocessing shared by all engines: full reducer,
//!   pre-order serialization, join-key groups, bottom-up optimal
//!   subtree costs.
//! * [`part`] — **ANYK-PART** (Lawler–Murty partitioning) with five
//!   successor orders ([`succorder`]): Eager, All, Take2, Lazy, Quick.
//! * [`rec`] — **ANYK-REC** (recursive enumeration with memoized shared
//!   suffix streams, the k-shortest-path lineage).
//! * [`batch`] — join-then-sort / join-then-heap baselines.
//! * [`union`] + [`cyclic`] — union-of-trees plans for cyclic queries
//!   (triangle via WCO materialization, 4-cycle via the submodular-width
//!   case split) merged into one global ranked stream.
//! * [`decomposed`] — ranked enumeration for *arbitrary* cyclic queries
//!   through tree decompositions (pays fhw instead of subw).
//! * [`unranked`] — constant-delay *unordered* enumeration (the §4
//!   baseline that ranked enumeration adds ordering on top of).
//! * [`ksp`] — k-shortest paths as a thin adapter (the classic special
//!   case and an independent oracle).
//!
//! ## Quick example
//!
//! ```
//! use anyk_core::{AnyK, part::AnyKPart, succorder::SuccessorKind,
//!                 ranking::SumCost, tdp::TdpInstance};
//! use anyk_query::cq::path_query;
//! use anyk_query::gyo::{gyo_reduce, GyoResult};
//! use anyk_storage::{Relation, RelationBuilder, Schema};
//!
//! let q = path_query(2);
//! let tree = match gyo_reduce(&q) { GyoResult::Acyclic(t) => t, _ => unreachable!() };
//! let mk = |rows: &[(i64, i64, f64)], cols: [&str; 2]| {
//!     let mut b = RelationBuilder::new(Schema::new(cols));
//!     for &(x, y, w) in rows { b.push_ints(&[x, y], w); }
//!     b.finish()
//! };
//! let rels = vec![
//!     mk(&[(1, 2, 1.0), (1, 3, 0.5)], ["a", "b"]),
//!     mk(&[(2, 5, 1.0), (3, 6, 0.25)], ["b", "c"]),
//! ];
//! let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
//! let answers: Vec<_> = AnyKPart::new(inst, SuccessorKind::Lazy).collect();
//! assert_eq!(answers.len(), 2);
//! assert!(answers[0].cost <= answers[1].cost);
//! ```

pub mod answer;
pub mod batch;
pub mod cyclic;
pub mod decomposed;
pub mod ksp;
pub mod part;
pub mod ranking;
pub mod rec;
pub mod succorder;
pub mod tdp;
pub mod union;
pub mod unranked;

pub use answer::{AnyK, RankedAnswer};
pub use batch::{materialize_ranked, BatchHeap, BatchSorted};
pub use cyclic::{
    c4_ranked_part, c4_ranked_rec, prepare_triangle, triangle_ranked, try_c4_ranked_part,
    try_c4_ranked_rec, wco_ranked_materialize, LazySortedAnswers, LazySortedStream, PreparedC4,
    RankedMaterialized, SortedAnswers, SortedStream,
};
pub use decomposed::{
    auto_decomposition, decomposed_ranked_part, decomposed_ranked_rec, ranked_auto,
    try_decomposed_ranked_part, try_decomposed_ranked_rec, DecomposedRanked, PreparedDecomposed,
};
pub use ksp::{k_shortest_paths, LayeredDag};
pub use part::AnyKPart;
pub use ranking::{LexCost, MaxCost, MinCost, ProdCost, RankingFunction, SumCost, WeightDioid};
pub use rec::AnyKRec;
pub use succorder::SuccessorKind;
pub use tdp::{TdpError, TdpInstance};
pub use union::{CanonicalOrder, RankedMerge, RankedUnion, TournamentTree};
pub use unranked::UnrankedEnum;
