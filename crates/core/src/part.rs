//! ANYK-PART: ranked enumeration via the Lawler–Murty procedure over the
//! serialized T-DP (Part 3 of the paper).
//!
//! The solution space is partitioned by *deviation position*: popping the
//! current best solution `S` (deviating at slot `d`) spawns
//!
//! * a **sibling** — same prefix, the successor(s) of `S`'s member at
//!   slot `d` within its join-key group, and
//! * **expansions** — for every later slot `j > d`, the successor(s) of
//!   the group-best member at `j`, with `S`'s rows before `j` frozen.
//!
//! Every child's cost is computed in O(1) without cost subtraction:
//! with pre-order serialization a subtree occupies `[j, end(j))`, so
//!
//! ```text
//! cost(child at j) = prefixW(j-1) ⊗ subcost(successor) ⊗ suffixW(end(j))
//! ```
//!
//! where `prefixW`/`suffixW` are per-solution running aggregates of
//! tuple weights. This works for any monotone dioid — including `max`,
//! which has no inverse (the reason subtraction-based shortcuts are off
//! the table). The five successor orders ([`SuccessorKind`]) realize the
//! Eager / All / Take2 / Lazy / Quick variants of the companion paper.

use crate::answer::RankedAnswer;
use crate::ranking::RankingFunction;
use crate::succorder::{GroupOrder, MemberRef, SuccessorKind};
use crate::tdp::TdpInstance;
use anyk_storage::{FxHashMap, RowId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A candidate: a not-yet-materialized solution identified by its parent
/// solution plus one deviation.
struct Candidate<C> {
    cost: C,
    /// Tie-break for deterministic order (insertion sequence).
    seq: u64,
    /// Arena index of the parent solution; `u32::MAX` for the initial
    /// top-1 candidate.
    parent: u32,
    /// Deviation slot.
    dev_slot: u32,
    /// Group id at `dev_slot` (fixed by the parent's prefix).
    group: u32,
    /// Member ref within that group's successor order.
    member: MemberRef,
}

impl<C: Ord> PartialEq for Candidate<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl<C: Ord> Eq for Candidate<C> {}
impl<C: Ord> PartialOrd for Candidate<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: Ord> Ord for Candidate<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-cost first.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A materialized (popped) solution kept in the arena: its rows plus the
/// prefix/suffix weight aggregates used for children's O(1) costs.
struct Solution<C> {
    /// Chosen row per slot.
    rows: Vec<RowId>,
    /// `prefix[j]` = ⊗ of tuple weights of slots `< j` (len m+1).
    prefix: Vec<C>,
    /// `suffix[j]` = ⊗ of tuple weights of slots `>= j` (len m+1).
    suffix: Vec<C>,
}

/// Ranked enumeration over a prepared [`TdpInstance`] using the
/// Lawler–Murty partitioning scheme with a chosen successor order.
///
/// Implements [`Iterator`]; each `next()` returns the next-cheapest
/// answer — the *anytime top-k* contract: no `k` fixed in advance.
///
/// ```
/// use anyk_core::{AnyKPart, SuccessorKind, SumCost, TdpInstance};
/// use anyk_query::cq::path_query;
/// use anyk_query::gyo::{gyo_reduce, GyoResult};
/// use anyk_storage::{RelationBuilder, Schema};
///
/// let q = path_query(2);
/// let tree = match gyo_reduce(&q) { GyoResult::Acyclic(t) => t, _ => unreachable!() };
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 2], 0.25);
/// let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
/// s.push_ints(&[2, 3], 0.5);
/// s.push_ints(&[2, 4], 0.125);
/// let inst = TdpInstance::<SumCost>::prepare(&q, &tree, vec![r.finish(), s.finish()]).unwrap();
/// let costs: Vec<f64> = AnyKPart::new(inst, SuccessorKind::Take2)
///     .map(|a| a.cost.get())
///     .collect();
/// assert_eq!(costs, vec![0.375, 0.75]); // cheapest first
/// ```
pub struct AnyKPart<R: RankingFunction> {
    /// The shared prepared instance: many enumerators (on any thread)
    /// can run over one preprocessing pass.
    inst: Arc<TdpInstance<R>>,
    kind: SuccessorKind,
    /// slot -> group id -> successor order, built **lazily on first
    /// touch**: a pop touches at most one group per later slot, so a
    /// top-k enumeration only ever organizes the groups its solutions
    /// actually deviate through. This keeps stream-spawn cost
    /// proportional to the answers pulled, not to `n` — the property
    /// the prepare-once/stream-many serving path relies on.
    orders: Vec<FxHashMap<u32, GroupOrder<R::Cost>>>,
    heap: BinaryHeap<Candidate<R::Cost>>,
    arena: Vec<Solution<R::Cost>>,
    seq: u64,
    /// Scratch buffer for successor generation.
    succ_buf: Vec<(MemberRef, R::Cost, RowId)>,
    /// Answers emitted so far (diagnostics).
    emitted: u64,
    /// Largest candidate-queue size observed (diagnostics; exposes the
    /// All variant's queue flooding).
    peak_pending: usize,
}

impl<R: RankingFunction> AnyKPart<R> {
    /// Build the enumerator. Constructing the successor orders is part
    /// of the variant's preprocessing (Eager pays its full sort here;
    /// Take2/Lazy heapify; All scans for minima; Quick only copies).
    ///
    /// Accepts either an owned [`TdpInstance`] (single-stream use) or an
    /// `Arc<TdpInstance>` — the prepare-once/enumerate-many path, where
    /// every stream reads the *same* reduced relations and groups.
    pub fn new(inst: impl Into<Arc<TdpInstance<R>>>, kind: SuccessorKind) -> Self {
        let inst = inst.into();
        let m = inst.num_slots();
        let mut this = AnyKPart {
            inst,
            kind,
            orders: std::iter::repeat_with(FxHashMap::default).take(m).collect(),
            heap: BinaryHeap::new(),
            arena: Vec::new(),
            seq: 0,
            succ_buf: Vec::new(),
            emitted: 0,
            peak_pending: 0,
        };
        if !this.inst.is_empty() {
            // Seed with the top-1 candidate: the root group's best.
            let (mref, cost, _row) = this.order(0, 0).best();
            this.seq += 1;
            this.heap.push(Candidate {
                cost,
                seq: this.seq,
                parent: u32::MAX,
                dev_slot: 0,
                group: 0,
                member: mref,
            });
        }
        this
    }

    /// The successor order of `group` at `slot`, built on first touch
    /// (the variant pays its per-group organization cost here: Eager
    /// sorts, Take2/Lazy heapify, All scans for the minimum, Quick only
    /// copies).
    fn order(&mut self, slot: usize, group: u32) -> &mut GroupOrder<R::Cost> {
        let inst = &self.inst;
        let kind = self.kind;
        self.orders[slot].entry(group).or_insert_with(|| {
            let items: Vec<(R::Cost, RowId)> = inst.groups[slot][group as usize]
                .iter()
                .map(|&r| (inst.subcost[slot][r as usize].clone(), r))
                .collect();
            GroupOrder::build(kind, items)
        })
    }

    /// The successor-order variant in use.
    pub fn kind(&self) -> SuccessorKind {
        self.kind
    }

    /// Access the underlying instance (diagnostics and assembly).
    pub fn instance(&self) -> &TdpInstance<R> {
        &self.inst
    }

    /// Answers emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current number of pending candidates.
    pub fn pending_candidates(&self) -> usize {
        self.heap.len()
    }

    /// Number of join-key groups whose successor order has been built
    /// so far (laziness diagnostic: orders are created on first touch,
    /// so this stays `o(n)` for small-`k` enumerations — the property
    /// the prepare-once/stream-many serving path relies on).
    pub fn touched_groups(&self) -> usize {
        self.orders.iter().map(FxHashMap::len).sum()
    }

    /// Largest candidate-queue size observed so far (memory diagnostic;
    /// the All variant's queue-flooding shows up here).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Materialize a popped candidate: fix the prefix from its parent,
    /// apply the deviation, complete the rest optimally.
    fn materialize(&mut self, cand: &Candidate<R::Cost>) -> Solution<R::Cost> {
        let m = self.inst.num_slots();
        let dev = cand.dev_slot as usize;
        // The candidate's member ref was handed out by this group's
        // order, so the order exists already.
        let (_, dev_row) = self.order(dev, cand.group).member(cand.member);

        let mut rows = vec![0 as RowId; m];
        if cand.parent == u32::MAX {
            debug_assert_eq!(dev, 0);
            rows[0] = dev_row;
            self.inst.complete_optimally(&mut rows, 1, m);
        } else {
            let end = self.inst.subtree_end[dev];
            let parent = &self.arena[cand.parent as usize];
            rows[..dev].copy_from_slice(&parent.rows[..dev]);
            rows[dev] = dev_row;
            // Tail first: slots >= end keep the parent's (still optimal
            // given the unchanged prefix); their ancestors lie outside
            // [dev, end) by pre-order contiguity.
            rows[end..].copy_from_slice(&parent.rows[end..]);
            // Rest of the deviated subtree: best-pointer completion.
            self.inst.complete_optimally(&mut rows, dev + 1, end);
        }

        // Prefix/suffix weight aggregates for O(1) child costs.
        let mut prefix = Vec::with_capacity(m + 1);
        prefix.push(R::identity());
        for j in 0..m {
            let w = self.inst.slot_weight(j, rows[j]);
            let next = R::combine(&prefix[j], &w);
            prefix.push(next);
        }
        let mut suffix = vec![R::identity(); m + 1];
        for j in (0..m).rev() {
            let w = self.inst.slot_weight(j, rows[j]);
            suffix[j] = R::combine(&w, &suffix[j + 1]);
        }
        Solution {
            rows,
            prefix,
            suffix,
        }
    }

    /// Push all Lawler children of the solution at `sol_idx` (which was
    /// produced by deviating at `dev` in `group` from `member`).
    fn push_children(&mut self, sol_idx: u32, dev: usize, group: u32, member: MemberRef) {
        let m = self.inst.num_slots();
        for j in dev..m {
            let (gj, base) = if j == dev {
                (group, member)
            } else {
                let gj = self.inst.group_at(j, &self.arena[sol_idx as usize].rows);
                let (bref, _, _) = self.order(j, gj).best();
                (gj, bref)
            };
            let mut succ = std::mem::take(&mut self.succ_buf);
            succ.clear();
            self.order(j, gj).successors(base, &mut succ);
            let end_j = self.inst.subtree_end[j];
            for (sref, scost, _srow) in succ.drain(..) {
                let sol = &self.arena[sol_idx as usize];
                let cost = R::combine(&R::combine(&sol.prefix[j], &scost), &sol.suffix[end_j]);
                self.seq += 1;
                self.heap.push(Candidate {
                    cost,
                    seq: self.seq,
                    parent: sol_idx,
                    dev_slot: j as u32,
                    group: gj,
                    member: sref,
                });
            }
            self.succ_buf = succ;
        }
        self.peak_pending = self.peak_pending.max(self.heap.len());
    }
}

impl<R: RankingFunction> Iterator for AnyKPart<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let cand = self.heap.pop()?;
        let sol = self.materialize(&cand);
        let sol_idx = self.arena.len() as u32;
        let mut values = Vec::new();
        self.inst.assemble(&sol.rows, &mut values);
        self.arena.push(sol);
        self.push_children(sol_idx, cand.dev_slot as usize, cand.group, cand.member);
        self.emitted += 1;
        Some(RankedAnswer {
            cost: cand.cost,
            values,
        })
    }
}

impl<R: RankingFunction> crate::answer::AnyK for AnyKPart<R> {
    type Cost = R::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{MaxCost, SumCost};
    use anyk_query::cq::{path_query, star_query, ConjunctiveQuery};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_query::join_tree::JoinTree;
    use anyk_storage::{Relation, RelationBuilder, Schema};

    fn edge_rel(cols: [&str; 2], rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    fn two_path_instance() -> (ConjunctiveQuery, JoinTree, Vec<Relation>) {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(
                ["a", "b"],
                &[(1, 2, 1.0), (1, 3, 0.5), (4, 2, 0.25), (9, 9, 7.0)],
            ),
            edge_rel(
                ["b", "c"],
                &[(2, 5, 1.0), (2, 6, 0.125), (3, 7, 2.0), (8, 8, 1.0)],
            ),
        ];
        (q, tree, rels)
    }

    fn enumerate_all(kind: SuccessorKind) -> Vec<(f64, Vec<i64>)> {
        let (q, tree, rels) = two_path_instance();
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let anyk = AnyKPart::new(inst, kind);
        anyk.map(|a| {
            (
                a.cost.get(),
                a.values.iter().map(|v| v.int()).collect::<Vec<_>>(),
            )
        })
        .collect()
    }

    #[test]
    fn all_variants_enumerate_in_order() {
        // Join answers (a,b,c) and sum costs:
        // (1,2,5)=2.0 (1,2,6)=1.125 (1,3,7)=2.5 (4,2,5)=1.25 (4,2,6)=0.375
        let expected = vec![
            (0.375, vec![4, 2, 6]),
            (1.125, vec![1, 2, 6]),
            (1.25, vec![4, 2, 5]),
            (2.0, vec![1, 2, 5]),
            (2.5, vec![1, 3, 7]),
        ];
        for kind in SuccessorKind::ALL_KINDS {
            let got = enumerate_all(kind);
            assert_eq!(got, expected, "variant {kind:?}");
        }
    }

    #[test]
    fn empty_instance_yields_nothing() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.0)]),
            edge_rel(["b", "c"], &[(9, 1, 0.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let mut anyk = AnyKPart::new(inst, SuccessorKind::Lazy);
        assert!(anyk.next().is_none());
    }

    #[test]
    fn star_query_enumeration() {
        let q = star_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["o", "p"], &[(1, 10, 1.0), (1, 11, 2.0)]),
            edge_rel(["o", "q"], &[(1, 20, 4.0), (1, 21, 8.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let costs: Vec<f64> = AnyKPart::new(inst, SuccessorKind::Take2)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(costs, vec![5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn max_ranking_enumeration() {
        let (q, tree, rels) = two_path_instance();
        let inst = TdpInstance::<MaxCost>::prepare(&q, &tree, rels).unwrap();
        let costs: Vec<f64> = AnyKPart::new(inst, SuccessorKind::Eager)
            .map(|a| a.cost.get())
            .collect();
        // max-costs of the five answers: (1,2,5)=1, (1,2,6)=1, (1,3,7)=2,
        // (4,2,5)=1, (4,2,6)=0.25 -> sorted: .25, 1, 1, 1, 2.
        assert_eq!(costs, vec![0.25, 1.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_are_enumerated_exactly_once() {
        // All weights equal: every answer has the same cost; make sure
        // no duplicates and no misses (tie-break correctness).
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0), (3, 2, 1.0), (4, 2, 1.0)]),
            edge_rel(["b", "c"], &[(2, 5, 1.0), (2, 6, 1.0), (2, 7, 1.0)]),
        ];
        for kind in SuccessorKind::ALL_KINDS {
            let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels.clone()).unwrap();
            let mut seen: Vec<Vec<i64>> = AnyKPart::new(inst, kind)
                .map(|a| a.values.iter().map(|v| v.int()).collect())
                .collect();
            assert_eq!(seen.len(), 9, "variant {kind:?}");
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 9, "duplicates under {kind:?}");
        }
    }

    #[test]
    fn prefix_stability() {
        // The first k answers must not depend on how far we enumerate.
        let (q, tree, rels) = two_path_instance();
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels.clone()).unwrap();
        let full: Vec<f64> = AnyKPart::new(inst, SuccessorKind::Quick)
            .map(|a| a.cost.get())
            .collect();
        for k in 1..=full.len() {
            let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels.clone()).unwrap();
            let partial: Vec<f64> = AnyKPart::new(inst, SuccessorKind::Quick)
                .take(k)
                .map(|a| a.cost.get())
                .collect();
            assert_eq!(partial, full[..k]);
        }
    }
}
