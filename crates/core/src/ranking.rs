//! Ranking functions as *selective dioids* (Part 3 of the paper: "What
//! types of ranking functions can be supported efficiently?").
//!
//! A ranking function combines the weights of an answer's input tuples
//! into a totally ordered cost. Any-k algorithms need exactly three
//! properties, captured by [`RankingFunction`]:
//!
//! 1. a **total order** on costs (`Cost: Ord`),
//! 2. an **associative combine** with identity (a monoid) — commutativity
//!    is *not* required: all combines happen in the join tree's
//!    serialization order, which is what lets [`LexCost`] work,
//! 3. **monotonicity**: `a <= a'` implies `combine(a, b) <= combine(a',
//!    b)` and `combine(b, a) <= combine(b, a')` — the principle of
//!    optimality that dynamic programming needs.
//!
//! Together with the selective order (`min`) this is the "selective
//! dioid" structure of the companion paper. Crucially, **no inverse is
//! required**: T-DP's deviation costs are computed with prefix/suffix
//! aggregates rather than subtraction, so `max` (which has no inverse)
//! is supported.

use anyk_storage::Weight;
use std::fmt::Debug;

/// The weight-level view of a scalar ranking: an `(identity, combine)`
/// pair on raw [`Weight`]s mirroring the cost dioid, satisfying
///
/// * `lift(combine(a, b)) == combine(lift(a), lift(b))`, and
/// * `lift(identity) == identity()`.
///
/// Plans that **pre-join input tuples** — the 4-cycle's light-light
/// bags (`anyk_join::c4`) and GHD bag materialization
/// (`anyk_join::decomposed`) — must collapse several tuple weights
/// into the single weight slot of a derived tuple; this view is what
/// lets them do so under *any* scalar ranking instead of baking in
/// `+`. Rankings whose costs cannot round-trip through one weight
/// (lexicographic: costs concatenate) have no such view and cannot
/// drive weight-merging plans — the planner already rejects them on
/// cyclic routes.
#[derive(Debug, Clone, Copy)]
pub struct WeightDioid {
    /// `lift(identity)` must equal the cost dioid's identity.
    pub identity: Weight,
    /// Weight-level `⊗`, commuting with `lift`.
    pub combine: fn(Weight, Weight) -> Weight,
}

/// A ranking function over tuple weights. See module docs for the laws;
/// they are property-tested in this module.
///
/// Both the function and its cost are `Send + Sync`: prepared any-k
/// state ([`TdpInstance`](crate::tdp::TdpInstance) and the materialized
/// cyclic plans) is shared across threads by the serving layer, so
/// everything it stores — costs included — must be shareable.
pub trait RankingFunction: Clone + Send + Sync + 'static {
    /// Totally ordered cost; smaller = better (ranked earlier).
    type Cost: Clone + Ord + Debug + Send + Sync;

    /// Lift one tuple weight into a cost.
    fn lift(w: Weight) -> Self::Cost;

    /// The identity element of `combine`.
    fn identity() -> Self::Cost;

    /// Monotone associative combination (`⊗` of the dioid).
    fn combine(a: &Self::Cost, b: &Self::Cost) -> Self::Cost;

    /// The weight-level view of this ranking, or `None` when costs
    /// cannot be collapsed into a single weight (see [`WeightDioid`]).
    /// Defaults to `None` — the safe answer; scalar rankings override.
    fn weight_dioid() -> Option<WeightDioid> {
        None
    }
}

/// Rank by the **sum** of tuple weights (the paper's default: "top-k
/// lightest 4-cycles" sums edge weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumCost;

impl RankingFunction for SumCost {
    type Cost = Weight;

    #[inline]
    fn lift(w: Weight) -> Weight {
        w
    }

    #[inline]
    fn identity() -> Weight {
        Weight::ZERO
    }

    #[inline]
    fn combine(a: &Weight, b: &Weight) -> Weight {
        Weight::new(a.get() + b.get())
    }

    fn weight_dioid() -> Option<WeightDioid> {
        Some(WeightDioid {
            identity: Weight::ZERO,
            combine: |a, b| Weight::new(a.get() + b.get()),
        })
    }
}

/// Rank by the **maximum** tuple weight (bottleneck ranking). `max` has
/// no inverse — this is the ranking function that rules out
/// subtraction-based deviation costs and motivates the prefix/suffix
/// formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxCost;

impl RankingFunction for MaxCost {
    type Cost = Weight;

    #[inline]
    fn lift(w: Weight) -> Weight {
        w
    }

    #[inline]
    fn identity() -> Weight {
        Weight::new(f64::NEG_INFINITY)
    }

    #[inline]
    fn combine(a: &Weight, b: &Weight) -> Weight {
        (*a).max(*b)
    }

    fn weight_dioid() -> Option<WeightDioid> {
        Some(WeightDioid {
            identity: Weight::new(f64::NEG_INFINITY),
            combine: |a, b| a.max(b),
        })
    }
}

/// Rank by the **minimum** tuple weight, ascending (answers whose best
/// edge is lightest come first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinCost;

impl RankingFunction for MinCost {
    type Cost = Weight;

    #[inline]
    fn lift(w: Weight) -> Weight {
        w
    }

    #[inline]
    fn identity() -> Weight {
        Weight::new(f64::INFINITY)
    }

    #[inline]
    fn combine(a: &Weight, b: &Weight) -> Weight {
        (*a).min(*b)
    }

    fn weight_dioid() -> Option<WeightDioid> {
        Some(WeightDioid {
            identity: Weight::new(f64::INFINITY),
            combine: |a, b| a.min(b),
        })
    }
}

/// Rank by the **product** of tuple weights. Monotone only for
/// non-negative weights — lifting a negative weight panics in debug
/// builds (probability-style workloads satisfy this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProdCost;

impl RankingFunction for ProdCost {
    type Cost = Weight;

    #[inline]
    fn lift(w: Weight) -> Weight {
        debug_assert!(w.get() >= 0.0, "ProdCost requires non-negative weights");
        w
    }

    #[inline]
    fn identity() -> Weight {
        Weight::new(1.0)
    }

    #[inline]
    fn combine(a: &Weight, b: &Weight) -> Weight {
        Weight::new(a.get() * b.get())
    }

    fn weight_dioid() -> Option<WeightDioid> {
        Some(WeightDioid {
            identity: Weight::new(1.0),
            combine: |a, b| Weight::new(a.get() * b.get()),
        })
    }
}

/// **Lexicographic** ranking: compare the sequence of tuple weights in
/// the join tree's serialization order, position by position. The cost
/// is the concatenated weight vector; `combine` is concatenation —
/// associative and monotone but *not* commutative, which is fine (see
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LexCost;

impl RankingFunction for LexCost {
    type Cost = Vec<Weight>;

    #[inline]
    fn lift(w: Weight) -> Vec<Weight> {
        vec![w]
    }

    #[inline]
    fn identity() -> Vec<Weight> {
        Vec::new()
    }

    #[inline]
    fn combine(a: &Vec<Weight>, b: &Vec<Weight>) -> Vec<Weight> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    #[test]
    fn sum_basics() {
        let a = SumCost::lift(w(1.5));
        let b = SumCost::lift(w(2.0));
        assert_eq!(SumCost::combine(&a, &b), w(3.5));
        assert_eq!(SumCost::combine(&a, &SumCost::identity()), a);
    }

    #[test]
    fn max_basics() {
        let a = MaxCost::lift(w(1.5));
        let b = MaxCost::lift(w(2.0));
        assert_eq!(MaxCost::combine(&a, &b), w(2.0));
        assert_eq!(MaxCost::combine(&a, &MaxCost::identity()), a);
    }

    #[test]
    fn min_basics() {
        let a = MinCost::lift(w(1.5));
        let b = MinCost::lift(w(2.0));
        assert_eq!(MinCost::combine(&a, &b), w(1.5));
        assert_eq!(MinCost::combine(&b, &MinCost::identity()), b);
    }

    #[test]
    fn lex_has_no_weight_dioid() {
        // Lexicographic costs concatenate — they cannot round-trip
        // through a single weight, so weight-merging plans must be
        // unreachable for them.
        assert!(LexCost::weight_dioid().is_none());
    }

    #[test]
    fn lex_ordering() {
        let ab = LexCost::combine(&LexCost::lift(w(1.0)), &LexCost::lift(w(5.0)));
        let ab2 = LexCost::combine(&LexCost::lift(w(1.0)), &LexCost::lift(w(2.0)));
        let b = LexCost::combine(&LexCost::lift(w(2.0)), &LexCost::lift(w(0.0)));
        assert!(ab2 < ab);
        assert!(ab < b);
        assert_eq!(LexCost::combine(&LexCost::identity(), &ab), ab);
    }

    /// Check monotonicity + associativity + identity for a dioid.
    fn laws<R: RankingFunction>(xs: &[f64]) {
        // The weight-level view, if any, must commute with `lift`.
        if let Some(d) = R::weight_dioid() {
            assert_eq!(R::lift(d.identity), R::identity());
            for &a in xs {
                for &b in xs {
                    assert_eq!(
                        R::lift((d.combine)(w(a), w(b))),
                        R::combine(&R::lift(w(a)), &R::lift(w(b))),
                        "weight dioid must commute with lift"
                    );
                }
            }
        }
        let costs: Vec<R::Cost> = xs.iter().map(|&x| R::lift(w(x))).collect();
        for a in &costs {
            // identity
            assert_eq!(&R::combine(a, &R::identity()), a);
            assert_eq!(&R::combine(&R::identity(), a), a);
            for b in &costs {
                for c in &costs {
                    // associativity
                    assert_eq!(
                        R::combine(&R::combine(a, b), c),
                        R::combine(a, &R::combine(b, c))
                    );
                    // monotonicity in both arguments
                    if a <= b {
                        assert!(R::combine(a, c) <= R::combine(b, c));
                        assert!(R::combine(c, a) <= R::combine(c, b));
                    }
                }
            }
        }
    }

    // Weights are drawn as quarter-integers (dyadic rationals): float
    // arithmetic on them is exact, so the associativity law can be
    // checked with bitwise equality.
    fn dyadic(xs: &[i32]) -> Vec<f64> {
        xs.iter().map(|&x| x as f64 / 4.0).collect()
    }

    proptest! {
        #[test]
        fn sum_laws(xs in prop::collection::vec(-400i32..400, 1..5)) {
            laws::<SumCost>(&dyadic(&xs));
        }

        #[test]
        fn max_laws(xs in prop::collection::vec(-400i32..400, 1..5)) {
            laws::<MaxCost>(&dyadic(&xs));
        }

        #[test]
        fn min_laws(xs in prop::collection::vec(-400i32..400, 1..5)) {
            laws::<MinCost>(&dyadic(&xs));
        }

        #[test]
        fn prod_laws(xs in prop::collection::vec(0i32..64, 1..5)) {
            laws::<ProdCost>(&dyadic(&xs));
        }

        #[test]
        fn lex_laws(xs in prop::collection::vec(-400i32..400, 1..5)) {
            laws::<LexCost>(&dyadic(&xs));
        }
    }
}
