//! ANYK-REC: ranked enumeration by *recursive enumeration* with
//! memoization — the second major technique of Part 3, rooted in the
//! k-shortest-path line of work (Hoffman–Pavley, Dreyfus, Bellman–
//! Kalaba, Jiménez–Marzal) and rediscovered for conjunctive queries.
//!
//! Every (node, join-key group) owns a lazily extended, memoized,
//! ranked **stream** of the solutions of its subtree:
//!
//! * a *group stream* merges the streams of its member tuples (a lazy
//!   k-way merge seeded with the members' optimal subtree costs);
//! * a *tuple stream* enumerates combinations of its children's group
//!   streams in rank order (a lazy product enumeration with the classic
//!   "increment coordinate `i` only if all earlier coordinates are 0"
//!   de-duplication rule).
//!
//! Because streams are keyed by (slot, group), **suffix solutions are
//! shared across all parent tuples with the same join key** — the
//! memoization that makes REC asymptotically superior for large `k`
//! (TT(last)), while ANYK-PART tends to win time-to-first. Neither
//! dominates (§4 of the paper); experiment E9 reproduces the crossover.

use crate::answer::RankedAnswer;
use crate::ranking::RankingFunction;
use crate::tdp::TdpInstance;
use anyk_storage::RowId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Frontier entry of a group stream: the next unconsumed rank of one
/// member's tuple stream.
struct GroupCand<C> {
    cost: C,
    seq: u64,
    row: RowId,
    rank: u32,
}

/// Frontier entry of a tuple stream: a combination of child ranks.
struct TupleCand<C> {
    cost: C,
    seq: u64,
    ranks: Box<[u32]>,
}

macro_rules! impl_min_heap_ord {
    ($t:ident) => {
        impl<C: Ord> PartialEq for $t<C> {
            fn eq(&self, other: &Self) -> bool {
                self.cost == other.cost && self.seq == other.seq
            }
        }
        impl<C: Ord> Eq for $t<C> {}
        impl<C: Ord> PartialOrd for $t<C> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<C: Ord> Ord for $t<C> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .cost
                    .cmp(&self.cost)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
    };
}
impl_min_heap_ord!(GroupCand);
impl_min_heap_ord!(TupleCand);

/// Memoized ranked stream of one join-key group's subtree solutions.
struct GroupStream<C> {
    /// `(cost, member row, rank within that member's tuple stream)`.
    mat: Vec<(C, RowId, u32)>,
    frontier: BinaryHeap<GroupCand<C>>,
    initialized: bool,
}

/// Memoized ranked stream of one tuple's subtree solutions.
struct TupleStream<C> {
    /// `(cost, child ranks)` — one rank per child slot.
    mat: Vec<(C, Box<[u32]>)>,
    frontier: BinaryHeap<TupleCand<C>>,
    initialized: bool,
}

/// Ranked enumeration over a prepared [`TdpInstance`] via recursive
/// enumeration with memoization. Implements [`Iterator`].
///
/// ```
/// use anyk_core::{AnyKRec, SumCost, TdpInstance};
/// use anyk_query::cq::path_query;
/// use anyk_query::gyo::{gyo_reduce, GyoResult};
/// use anyk_storage::{RelationBuilder, Schema};
///
/// let q = path_query(2);
/// let tree = match gyo_reduce(&q) { GyoResult::Acyclic(t) => t, _ => unreachable!() };
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 2], 1.0);
/// let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
/// s.push_ints(&[2, 3], 2.0);
/// s.push_ints(&[2, 4], 0.5);
/// let inst = TdpInstance::<SumCost>::prepare(&q, &tree, vec![r.finish(), s.finish()]).unwrap();
/// let costs: Vec<f64> = AnyKRec::new(inst).map(|a| a.cost.get()).collect();
/// assert_eq!(costs, vec![1.5, 3.0]);
/// ```
pub struct AnyKRec<R: RankingFunction> {
    /// The shared prepared instance (see [`AnyKPart`](crate::part::AnyKPart)).
    inst: Arc<TdpInstance<R>>,
    /// slot -> base offset into `gstreams` (flat id = base + group id).
    group_base: Vec<usize>,
    /// slot -> base offset into `tstreams` (flat id = base + row id).
    tuple_base: Vec<usize>,
    gstreams: Vec<GroupStream<R::Cost>>,
    tstreams: Vec<TupleStream<R::Cost>>,
    /// slot of each group stream / tuple stream (parallel arrays).
    gslot: Vec<usize>,
    tslot: Vec<usize>,
    next_rank: usize,
    seq: u64,
}

impl<R: RankingFunction> AnyKRec<R> {
    /// Build the enumerator (stream shells only — constant work beyond
    /// the T-DP preprocessing already paid in `inst`). Accepts an owned
    /// [`TdpInstance`] or a shared `Arc<TdpInstance>` (the
    /// prepare-once/enumerate-many path).
    pub fn new(inst: impl Into<Arc<TdpInstance<R>>>) -> Self {
        let inst = inst.into();
        let m = inst.num_slots();
        let mut group_base = Vec::with_capacity(m);
        let mut tuple_base = Vec::with_capacity(m);
        let mut gslot = Vec::new();
        let mut tslot = Vec::new();
        let (mut gtotal, mut ttotal) = (0usize, 0usize);
        for s in 0..m {
            group_base.push(gtotal);
            tuple_base.push(ttotal);
            let ngroups = if inst.is_empty() {
                0
            } else {
                inst.groups[s].len()
            };
            let nrows = if inst.is_empty() {
                0
            } else {
                inst.rels[inst.atom_of_slot[s]].len()
            };
            gtotal += ngroups;
            ttotal += nrows;
            gslot.extend(std::iter::repeat_n(s, ngroups));
            tslot.extend(std::iter::repeat_n(s, nrows));
        }
        let gstreams = (0..gtotal)
            .map(|_| GroupStream {
                mat: Vec::new(),
                frontier: BinaryHeap::new(),
                initialized: false,
            })
            .collect();
        let tstreams = (0..ttotal)
            .map(|_| TupleStream {
                mat: Vec::new(),
                frontier: BinaryHeap::new(),
                initialized: false,
            })
            .collect();
        AnyKRec {
            inst,
            group_base,
            tuple_base,
            gstreams,
            tstreams,
            gslot,
            tslot,
            next_rank: 0,
            seq: 0,
        }
    }

    /// Access the underlying instance.
    pub fn instance(&self) -> &TdpInstance<R> {
        &self.inst
    }

    fn bump(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The cost of rank `r` of group stream `gid`, extending lazily.
    fn group_cost(&mut self, gid: usize, r: usize) -> Option<R::Cost> {
        self.ensure_group_init(gid);
        loop {
            if let Some((c, _, _)) = self.gstreams[gid].mat.get(r) {
                return Some(c.clone());
            }
            let cand = self.gstreams[gid].frontier.pop()?;
            self.gstreams[gid]
                .mat
                .push((cand.cost, cand.row, cand.rank));
            // Schedule the same member's next rank.
            let slot = self.gslot[gid];
            if let Some(nc) = self.tuple_cost(slot, cand.row, cand.rank as usize + 1) {
                let seq = self.bump();
                self.gstreams[gid].frontier.push(GroupCand {
                    cost: nc,
                    seq,
                    row: cand.row,
                    rank: cand.rank + 1,
                });
            }
        }
    }

    /// The cost of rank `r` of the tuple stream for `row` at `slot`.
    fn tuple_cost(&mut self, slot: usize, row: RowId, r: usize) -> Option<R::Cost> {
        let tid = self.tuple_base[slot] + row as usize;
        self.ensure_tuple_init(tid);
        loop {
            if let Some((c, _)) = self.tstreams[tid].mat.get(r) {
                return Some(c.clone());
            }
            let cand = self.tstreams[tid].frontier.pop()?;
            let ranks = cand.ranks.clone();
            self.tstreams[tid].mat.push((cand.cost, cand.ranks));
            // Children combos: increment coordinate i only if all
            // earlier coordinates are 0 (unique-predecessor rule).
            let child_slots = self.inst.child_slots[slot].clone();
            for i in 0..ranks.len() {
                if ranks[..i].iter().any(|&x| x != 0) {
                    break;
                }
                let mut nr = ranks.clone();
                nr[i] += 1;
                // Cost = w(row) ⊗ child costs in serialization order.
                let ci_gid = self.child_gid(slot, row, child_slots[i]);
                if self.group_cost(ci_gid, nr[i] as usize).is_none() {
                    continue; // child stream exhausted at this rank
                }
                let mut cost = self.inst.slot_weight(slot, row);
                let mut ok = true;
                for (j, &cs) in child_slots.iter().enumerate() {
                    let gj = self.child_gid(slot, row, cs);
                    match self.group_cost(gj, nr[j] as usize) {
                        Some(c) => cost = R::combine(&cost, &c),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let seq = self.bump();
                    self.tstreams[tid].frontier.push(TupleCand {
                        cost,
                        seq,
                        ranks: nr,
                    });
                }
            }
        }
    }

    /// Flat id of the group stream of child slot `cs` under `row` at
    /// `slot`.
    #[inline]
    fn child_gid(&self, _slot: usize, row: RowId, cs: usize) -> usize {
        self.group_base[cs] + self.inst.group_of_parent_row[cs][row as usize] as usize
    }

    fn ensure_group_init(&mut self, gid: usize) {
        if self.gstreams[gid].initialized {
            return;
        }
        self.gstreams[gid].initialized = true;
        let slot = self.gslot[gid];
        let group = gid - self.group_base[slot];
        // Seed with every member at rank 0; rank-0 cost of a tuple
        // stream is exactly the DP subcost — no recursion needed.
        let members = self.inst.groups[slot][group].clone();
        for row in members {
            let cost = self.inst.subcost[slot][row as usize].clone();
            let seq = self.bump();
            self.gstreams[gid].frontier.push(GroupCand {
                cost,
                seq,
                row,
                rank: 0,
            });
        }
    }

    fn ensure_tuple_init(&mut self, tid: usize) {
        if self.tstreams[tid].initialized {
            return;
        }
        self.tstreams[tid].initialized = true;
        let slot = self.tslot[tid];
        let row = (tid - self.tuple_base[slot]) as RowId;
        let child_slots = self.inst.child_slots[slot].clone();
        if child_slots.is_empty() {
            // Leaf: single solution = the tuple itself.
            let cost = self.inst.slot_weight(slot, row);
            self.tstreams[tid].mat.push((cost, Box::from([])));
            return;
        }
        // Initial combo (0, ..., 0): w(row) ⊗ each child group's best.
        let mut cost = self.inst.slot_weight(slot, row);
        for &cs in &child_slots {
            let g = self.inst.group_of_parent_row[cs][row as usize] as usize;
            cost = R::combine(&cost, &self.inst.group_best[cs][g].0);
        }
        let seq = self.bump();
        let ranks: Box<[u32]> = vec![0u32; child_slots.len()].into_boxed_slice();
        self.tstreams[tid]
            .frontier
            .push(TupleCand { cost, seq, ranks });
    }

    /// Collect the chosen row per slot for rank `rank` of group stream
    /// `gid` (all required entries are already materialized).
    fn assemble_rows(&self, gid: usize, rank: usize, rows: &mut [RowId]) {
        let slot = self.gslot[gid];
        let (_, row, trank) = self.gstreams[gid].mat[rank];
        rows[slot] = row;
        let tid = self.tuple_base[slot] + row as usize;
        let (_, ref child_ranks) = self.tstreams[tid].mat[trank as usize];
        for (i, &cs) in self.inst.child_slots[slot].iter().enumerate() {
            let cgid = self.child_gid(slot, row, cs);
            self.assemble_rows(cgid, child_ranks[i] as usize, rows);
        }
    }
}

impl<R: RankingFunction> Iterator for AnyKRec<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.inst.is_empty() {
            return None;
        }
        let root_gid = self.group_base[0]; // slot 0, group 0
        let r = self.next_rank;
        let cost = self.group_cost(root_gid, r)?;
        self.next_rank += 1;
        let mut rows = vec![0 as RowId; self.inst.num_slots()];
        self.assemble_rows(root_gid, r, &mut rows);
        let mut values = Vec::new();
        self.inst.assemble(&rows, &mut values);
        Some(RankedAnswer { cost, values })
    }
}

impl<R: RankingFunction> crate::answer::AnyK for AnyKRec<R> {
    type Cost = R::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::AnyKPart;
    use crate::ranking::{MaxCost, SumCost};
    use crate::succorder::SuccessorKind;
    use anyk_query::cq::{path_query, star_query, ConjunctiveQuery};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_query::join_tree::JoinTree;
    use anyk_storage::{Relation, RelationBuilder, Schema};

    fn edge_rel(cols: [&str; 2], rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    #[test]
    fn matches_part_on_path() {
        let q = path_query(3);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0), (1, 3, 0.5), (2, 2, 0.75)]),
            edge_rel(["b", "c"], &[(2, 5, 1.0), (2, 6, 0.125), (3, 5, 2.0)]),
            edge_rel(["c", "d"], &[(5, 8, 0.25), (6, 8, 1.5), (5, 9, 0.5)]),
        ];
        let inst1 = TdpInstance::<SumCost>::prepare(&q, &tree, rels.clone()).unwrap();
        let inst2 = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let part: Vec<_> = AnyKPart::new(inst1, SuccessorKind::Lazy)
            .map(|a| (a.cost, a.values))
            .collect();
        let rec: Vec<_> = AnyKRec::new(inst2).map(|a| (a.cost, a.values)).collect();
        assert_eq!(part.len(), rec.len());
        // Costs must agree position-wise; values may differ among ties.
        for (p, r) in part.iter().zip(&rec) {
            assert_eq!(p.0, r.0);
        }
        // As sets, identical.
        let mut pv: Vec<_> = part.into_iter().map(|x| x.1).collect();
        let mut rv: Vec<_> = rec.into_iter().map(|x| x.1).collect();
        pv.sort();
        rv.sort();
        assert_eq!(pv, rv);
    }

    #[test]
    fn matches_part_on_star_with_max() {
        let q = star_query(3);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["o", "a"], &[(1, 10, 1.0), (1, 11, 3.0), (2, 12, 2.0)]),
            edge_rel(["o", "b"], &[(1, 20, 5.0), (1, 21, 0.5), (2, 22, 2.5)]),
            edge_rel(["o", "c"], &[(1, 30, 4.0), (2, 31, 1.0), (2, 32, 6.0)]),
        ];
        let inst1 = TdpInstance::<MaxCost>::prepare(&q, &tree, rels.clone()).unwrap();
        let inst2 = TdpInstance::<MaxCost>::prepare(&q, &tree, rels).unwrap();
        let part: Vec<f64> = AnyKPart::new(inst1, SuccessorKind::Eager)
            .map(|a| a.cost.get())
            .collect();
        let rec: Vec<f64> = AnyKRec::new(inst2).map(|a| a.cost.get()).collect();
        assert_eq!(part, rec);
        assert!(!part.is_empty());
    }

    #[test]
    fn empty_instance() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.0)]),
            edge_rel(["b", "c"], &[(7, 1, 0.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let mut rec = AnyKRec::new(inst);
        assert!(rec.next().is_none());
    }

    #[test]
    fn single_atom() {
        let q = anyk_query::cq::QueryBuilder::new()
            .atom("R", &["a", "b"])
            .build();
        let tree = tree_of(&q);
        let rels = vec![edge_rel(
            ["a", "b"],
            &[(1, 2, 2.0), (3, 4, 1.0), (5, 6, 3.0)],
        )];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let costs: Vec<f64> = AnyKRec::new(inst).map(|a| a.cost.get()).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }
}
