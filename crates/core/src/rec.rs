//! ANYK-REC: ranked enumeration by *recursive enumeration* with
//! memoization — the second major technique of Part 3, rooted in the
//! k-shortest-path line of work (Hoffman–Pavley, Dreyfus, Bellman–
//! Kalaba, Jiménez–Marzal) and rediscovered for conjunctive queries.
//!
//! Every (node, join-key group) owns a lazily extended, memoized,
//! ranked **stream** of the solutions of its subtree:
//!
//! * a *group stream* merges the streams of its member tuples (a lazy
//!   k-way merge seeded with the members' optimal subtree costs);
//! * a *tuple stream* enumerates combinations of its children's group
//!   streams in rank order (a lazy product enumeration with the classic
//!   "increment coordinate `i` only if all earlier coordinates are 0"
//!   de-duplication rule).
//!
//! Because streams are keyed by (slot, group), **suffix solutions are
//! shared across all parent tuples with the same join key** — the
//! memoization that makes REC asymptotically superior for large `k`
//! (TT(last)), while ANYK-PART tends to win time-to-first. Neither
//! dominates (§4 of the paper); experiment E9 reproduces the crossover.
//!
//! Stream shells are allocated **lazily on first touch** (an
//! `FxHashMap` per slot, like [`AnyKPart`](crate::part::AnyKPart)'s
//! on-demand successor orders): spawning an enumerator over a shared
//! prepared [`TdpInstance`] costs `O(slots)`, and enumeration only ever
//! materializes the (slot, group) / (slot, tuple) streams its answers
//! actually recurse through — stream-spawn cost is proportional to the
//! answers pulled, not to `n`. This is what makes REC's time-to-first
//! serving-grade on the prepare-once/stream-many path.

use crate::answer::RankedAnswer;
use crate::ranking::RankingFunction;
use crate::tdp::TdpInstance;
use anyk_storage::{FxHashMap, RowId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Frontier entry of a group stream: the next unconsumed rank of one
/// member's tuple stream.
struct GroupCand<C> {
    cost: C,
    seq: u64,
    row: RowId,
    rank: u32,
}

/// Frontier entry of a tuple stream: a combination of child ranks.
struct TupleCand<C> {
    cost: C,
    seq: u64,
    ranks: Box<[u32]>,
}

macro_rules! impl_min_heap_ord {
    ($t:ident) => {
        impl<C: Ord> PartialEq for $t<C> {
            fn eq(&self, other: &Self) -> bool {
                self.cost == other.cost && self.seq == other.seq
            }
        }
        impl<C: Ord> Eq for $t<C> {}
        impl<C: Ord> PartialOrd for $t<C> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<C: Ord> Ord for $t<C> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .cost
                    .cmp(&self.cost)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
    };
}
impl_min_heap_ord!(GroupCand);
impl_min_heap_ord!(TupleCand);

/// Memoized ranked stream of one join-key group's subtree solutions.
/// Created (and its frontier seeded with every member at rank 0) on
/// first touch.
struct GroupStream<C> {
    /// `(cost, member row, rank within that member's tuple stream)`.
    mat: Vec<(C, RowId, u32)>,
    frontier: BinaryHeap<GroupCand<C>>,
}

/// Memoized ranked stream of one tuple's subtree solutions. Created
/// (and its frontier seeded with the all-zeros child combination) on
/// first touch.
struct TupleStream<C> {
    /// `(cost, child ranks)` — one rank per child slot.
    mat: Vec<(C, Box<[u32]>)>,
    frontier: BinaryHeap<TupleCand<C>>,
}

/// Ranked enumeration over a prepared [`TdpInstance`] via recursive
/// enumeration with memoization. Implements [`Iterator`].
///
/// ```
/// use anyk_core::{AnyKRec, SumCost, TdpInstance};
/// use anyk_query::cq::path_query;
/// use anyk_query::gyo::{gyo_reduce, GyoResult};
/// use anyk_storage::{RelationBuilder, Schema};
///
/// let q = path_query(2);
/// let tree = match gyo_reduce(&q) { GyoResult::Acyclic(t) => t, _ => unreachable!() };
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 2], 1.0);
/// let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
/// s.push_ints(&[2, 3], 2.0);
/// s.push_ints(&[2, 4], 0.5);
/// let inst = TdpInstance::<SumCost>::prepare(&q, &tree, vec![r.finish(), s.finish()]).unwrap();
/// let costs: Vec<f64> = AnyKRec::new(inst).map(|a| a.cost.get()).collect();
/// assert_eq!(costs, vec![1.5, 3.0]);
/// ```
pub struct AnyKRec<R: RankingFunction> {
    /// The shared prepared instance (see [`AnyKPart`](crate::part::AnyKPart)).
    inst: Arc<TdpInstance<R>>,
    /// slot -> group id -> group stream, **created lazily on first
    /// touch**: spawning the enumerator allocates only the per-slot
    /// maps, so a prepared stream's spawn cost is `O(slots)` — the
    /// streams an enumeration never recurses through are never built.
    gstreams: Vec<FxHashMap<u32, GroupStream<R::Cost>>>,
    /// slot -> row id -> tuple stream, created lazily on first touch.
    tstreams: Vec<FxHashMap<RowId, TupleStream<R::Cost>>>,
    next_rank: usize,
    seq: u64,
}

impl<R: RankingFunction> AnyKRec<R> {
    /// Build the enumerator — `O(slots)` work, independent of the
    /// instance's tuple count (stream shells are created on first
    /// touch during enumeration). Accepts an owned [`TdpInstance`] or
    /// a shared `Arc<TdpInstance>` (the prepare-once/enumerate-many
    /// path).
    pub fn new(inst: impl Into<Arc<TdpInstance<R>>>) -> Self {
        let inst = inst.into();
        let m = inst.num_slots();
        AnyKRec {
            inst,
            gstreams: std::iter::repeat_with(FxHashMap::default).take(m).collect(),
            tstreams: std::iter::repeat_with(FxHashMap::default).take(m).collect(),
            next_rank: 0,
            seq: 0,
        }
    }

    /// Access the underlying instance.
    pub fn instance(&self) -> &TdpInstance<R> {
        &self.inst
    }

    /// Number of group streams materialized so far (laziness
    /// diagnostic: stays `o(n)` for small-`k` enumerations).
    pub fn allocated_group_streams(&self) -> usize {
        self.gstreams.iter().map(FxHashMap::len).sum()
    }

    /// Number of tuple streams materialized so far (laziness
    /// diagnostic).
    pub fn allocated_tuple_streams(&self) -> usize {
        self.tstreams.iter().map(FxHashMap::len).sum()
    }

    fn bump(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The cost of rank `r` of the stream of `group` at `slot`,
    /// extending lazily.
    fn group_cost(&mut self, slot: usize, group: u32, r: usize) -> Option<R::Cost> {
        self.ensure_group(slot, group);
        loop {
            let gs = self.gstreams[slot].get_mut(&group).expect("just ensured");
            if let Some((c, _, _)) = gs.mat.get(r) {
                return Some(c.clone());
            }
            let cand = gs.frontier.pop()?;
            let (row, rank) = (cand.row, cand.rank);
            gs.mat.push((cand.cost, row, rank));
            // Schedule the same member's next rank.
            if let Some(nc) = self.tuple_cost(slot, row, rank as usize + 1) {
                let seq = self.bump();
                self.gstreams[slot]
                    .get_mut(&group)
                    .expect("just ensured")
                    .frontier
                    .push(GroupCand {
                        cost: nc,
                        seq,
                        row,
                        rank: rank + 1,
                    });
            }
        }
    }

    /// The cost of rank `r` of the tuple stream for `row` at `slot`.
    fn tuple_cost(&mut self, slot: usize, row: RowId, r: usize) -> Option<R::Cost> {
        self.ensure_tuple(slot, row);
        loop {
            let ts = self.tstreams[slot].get_mut(&row).expect("just ensured");
            if let Some((c, _)) = ts.mat.get(r) {
                return Some(c.clone());
            }
            let cand = ts.frontier.pop()?;
            let ranks = cand.ranks.clone();
            ts.mat.push((cand.cost, cand.ranks));
            // Children combos: increment coordinate i only if all
            // earlier coordinates are 0 (unique-predecessor rule).
            let inst = Arc::clone(&self.inst);
            let child_slots = &inst.child_slots[slot];
            for i in 0..ranks.len() {
                if ranks[..i].iter().any(|&x| x != 0) {
                    break;
                }
                let mut nr = ranks.clone();
                nr[i] += 1;
                // Cost = w(row) ⊗ child costs in serialization order.
                let ci = child_slots[i];
                let ci_group = self.child_group(row, ci);
                if self.group_cost(ci, ci_group, nr[i] as usize).is_none() {
                    continue; // child stream exhausted at this rank
                }
                let mut cost = inst.slot_weight(slot, row);
                let mut ok = true;
                for (j, &cs) in child_slots.iter().enumerate() {
                    let gj = self.child_group(row, cs);
                    match self.group_cost(cs, gj, nr[j] as usize) {
                        Some(c) => cost = R::combine(&cost, &c),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let seq = self.bump();
                    self.tstreams[slot]
                        .get_mut(&row)
                        .expect("just ensured")
                        .frontier
                        .push(TupleCand {
                            cost,
                            seq,
                            ranks: nr,
                        });
                }
            }
        }
    }

    /// Group id of the stream of child slot `cs` under parent `row`.
    #[inline]
    fn child_group(&self, row: RowId, cs: usize) -> u32 {
        self.inst.group_of_parent_row[cs][row as usize]
    }

    /// Create the stream of `group` at `slot` on first touch, seeding
    /// the frontier with every member at rank 0 (rank-0 cost of a
    /// tuple stream is exactly the DP subcost — no recursion needed).
    fn ensure_group(&mut self, slot: usize, group: u32) {
        if self.gstreams[slot].contains_key(&group) {
            return;
        }
        let inst = Arc::clone(&self.inst);
        let members = &inst.groups[slot][group as usize];
        let mut gs = GroupStream {
            mat: Vec::new(),
            frontier: BinaryHeap::with_capacity(members.len()),
        };
        for &row in members {
            let cost = inst.subcost[slot][row as usize].clone();
            let seq = self.bump();
            gs.frontier.push(GroupCand {
                cost,
                seq,
                row,
                rank: 0,
            });
        }
        self.gstreams[slot].insert(group, gs);
    }

    /// Create the tuple stream of `row` at `slot` on first touch,
    /// seeding it with the tuple itself (leaf) or the all-zeros child
    /// combination.
    fn ensure_tuple(&mut self, slot: usize, row: RowId) {
        if self.tstreams[slot].contains_key(&row) {
            return;
        }
        let inst = Arc::clone(&self.inst);
        let child_slots = &inst.child_slots[slot];
        let mut ts = TupleStream {
            mat: Vec::new(),
            frontier: BinaryHeap::new(),
        };
        if child_slots.is_empty() {
            // Leaf: single solution = the tuple itself.
            ts.mat.push((inst.slot_weight(slot, row), Box::from([])));
        } else {
            // Initial combo (0, ..., 0): w(row) ⊗ each child group's best.
            let mut cost = inst.slot_weight(slot, row);
            for &cs in child_slots {
                let g = inst.group_of_parent_row[cs][row as usize] as usize;
                cost = R::combine(&cost, &inst.group_best[cs][g].0);
            }
            let seq = self.bump();
            let ranks: Box<[u32]> = vec![0u32; child_slots.len()].into_boxed_slice();
            ts.frontier.push(TupleCand { cost, seq, ranks });
        }
        self.tstreams[slot].insert(row, ts);
    }

    /// Collect the chosen row per slot for rank `rank` of the stream of
    /// `group` at `slot` (all required entries are already
    /// materialized).
    fn assemble_rows(&self, slot: usize, group: u32, rank: usize, rows: &mut [RowId]) {
        let (_, row, trank) = self.gstreams[slot][&group].mat[rank];
        rows[slot] = row;
        let (_, ref child_ranks) = self.tstreams[slot][&row].mat[trank as usize];
        for (i, &cs) in self.inst.child_slots[slot].iter().enumerate() {
            let cgroup = self.child_group(row, cs);
            self.assemble_rows(cs, cgroup, child_ranks[i] as usize, rows);
        }
    }
}

impl<R: RankingFunction> Iterator for AnyKRec<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.inst.is_empty() {
            return None;
        }
        let r = self.next_rank;
        let cost = self.group_cost(0, 0, r)?; // root = slot 0, group 0
        self.next_rank += 1;
        let mut rows = vec![0 as RowId; self.inst.num_slots()];
        self.assemble_rows(0, 0, r, &mut rows);
        let mut values = Vec::new();
        self.inst.assemble(&rows, &mut values);
        Some(RankedAnswer { cost, values })
    }
}

impl<R: RankingFunction> crate::answer::AnyK for AnyKRec<R> {
    type Cost = R::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::AnyKPart;
    use crate::ranking::{MaxCost, SumCost};
    use crate::succorder::SuccessorKind;
    use anyk_query::cq::{path_query, star_query, ConjunctiveQuery};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_query::join_tree::JoinTree;
    use anyk_storage::{Relation, RelationBuilder, Schema};

    fn edge_rel(cols: [&str; 2], rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    #[test]
    fn matches_part_on_path() {
        let q = path_query(3);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0), (1, 3, 0.5), (2, 2, 0.75)]),
            edge_rel(["b", "c"], &[(2, 5, 1.0), (2, 6, 0.125), (3, 5, 2.0)]),
            edge_rel(["c", "d"], &[(5, 8, 0.25), (6, 8, 1.5), (5, 9, 0.5)]),
        ];
        let inst1 = TdpInstance::<SumCost>::prepare(&q, &tree, rels.clone()).unwrap();
        let inst2 = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let part: Vec<_> = AnyKPart::new(inst1, SuccessorKind::Lazy)
            .map(|a| (a.cost, a.values))
            .collect();
        let rec: Vec<_> = AnyKRec::new(inst2).map(|a| (a.cost, a.values)).collect();
        assert_eq!(part.len(), rec.len());
        // Costs must agree position-wise; values may differ among ties.
        for (p, r) in part.iter().zip(&rec) {
            assert_eq!(p.0, r.0);
        }
        // As sets, identical.
        let mut pv: Vec<_> = part.into_iter().map(|x| x.1).collect();
        let mut rv: Vec<_> = rec.into_iter().map(|x| x.1).collect();
        pv.sort();
        rv.sort();
        assert_eq!(pv, rv);
    }

    #[test]
    fn matches_part_on_star_with_max() {
        let q = star_query(3);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["o", "a"], &[(1, 10, 1.0), (1, 11, 3.0), (2, 12, 2.0)]),
            edge_rel(["o", "b"], &[(1, 20, 5.0), (1, 21, 0.5), (2, 22, 2.5)]),
            edge_rel(["o", "c"], &[(1, 30, 4.0), (2, 31, 1.0), (2, 32, 6.0)]),
        ];
        let inst1 = TdpInstance::<MaxCost>::prepare(&q, &tree, rels.clone()).unwrap();
        let inst2 = TdpInstance::<MaxCost>::prepare(&q, &tree, rels).unwrap();
        let part: Vec<f64> = AnyKPart::new(inst1, SuccessorKind::Eager)
            .map(|a| a.cost.get())
            .collect();
        let rec: Vec<f64> = AnyKRec::new(inst2).map(|a| a.cost.get()).collect();
        assert_eq!(part, rec);
        assert!(!part.is_empty());
    }

    #[test]
    fn empty_instance() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.0)]),
            edge_rel(["b", "c"], &[(7, 1, 0.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let mut rec = AnyKRec::new(inst);
        assert!(rec.next().is_none());
        assert_eq!(rec.allocated_group_streams(), 0);
        assert_eq!(rec.allocated_tuple_streams(), 0);
    }

    #[test]
    fn single_atom() {
        let q = anyk_query::cq::QueryBuilder::new()
            .atom("R", &["a", "b"])
            .build();
        let tree = tree_of(&q);
        let rels = vec![edge_rel(
            ["a", "b"],
            &[(1, 2, 2.0), (3, 4, 1.0), (5, 6, 3.0)],
        )];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let costs: Vec<f64> = AnyKRec::new(inst).map(|a| a.cost.get()).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spawn_is_lazy_and_k1_touches_few_streams() {
        // A wide 2-path: many rows, but the top-1 pull must only ever
        // materialize the streams its recursion touches — the spawn
        // itself allocates no per-row state at all.
        let rows1: Vec<(i64, i64, f64)> = (0..500).map(|i| (1, i, 1.0 + i as f64)).collect();
        let rows2: Vec<(i64, i64, f64)> = (0..500)
            .flat_map(|i| [(i, 1000 + i, 1.0), (i, 2000 + i, 2.0)])
            .collect();
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![edge_rel(["a", "b"], &rows1), edge_rel(["b", "c"], &rows2)];
        let inst = Arc::new(TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap());
        let n = inst.reduced_input_size();
        assert!(n >= 1000, "instance must be large enough to be telling");

        let mut rec = AnyKRec::new(Arc::clone(&inst));
        assert_eq!(rec.allocated_group_streams(), 0, "spawn allocates nothing");
        assert_eq!(rec.allocated_tuple_streams(), 0);

        let first = rec.next().expect("instance has answers");
        assert_eq!(first.cost.get(), 2.0); // row (1,0) + edge (0,1000+0)
                                           // k=1 touches the root group, the winning root tuple's stream,
                                           // and that tuple's child group/tuple streams — a handful, not n.
        assert!(
            rec.allocated_group_streams() + rec.allocated_tuple_streams() <= 8,
            "k=1 must touch O(1) streams, got {} + {}",
            rec.allocated_group_streams(),
            rec.allocated_tuple_streams()
        );
    }
}
