//! Successor orders over join-key groups — the five ANYK-PART variants.
//!
//! Lawler–Murty deviations replace one tuple with the "next" tuple in
//! its group. How each group organizes its members determines the
//! preprocessing/enumeration trade-off (the companion paper's variants):
//!
//! * [`SuccessorKind::Eager`]  — fully sort each group upfront; successor
//!   = next in sorted order (one successor per pop, sort paid upfront).
//! * [`SuccessorKind::All`]    — no order at all: the minimum's successors
//!   are *all* other members (cheap build, floods the queue).
//! * [`SuccessorKind::Take2`]  — binary min-heap layout: each member's
//!   successors are its ≤ 2 heap children (cheap build, two per pop).
//! * [`SuccessorKind::Lazy`]   — incremental heapsort: a sorted prefix is
//!   materialized on demand from a heap (successor = next rank).
//! * [`SuccessorKind::Quick`]  — incremental quicksort (IQS): ranks are
//!   materialized by lazily partitioning.
//!
//! Correctness requirement (Lawler): every member must be reachable from
//! the group minimum through a successor chain with non-decreasing
//! costs. All five satisfy it; property tests below check both
//! reachability and monotonicity.

use anyk_storage::RowId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which successor organization to use (the ANYK-PART variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuccessorKind {
    /// Sort groups at preprocessing time.
    Eager,
    /// Star from the minimum to everything else.
    All,
    /// Binary-heap children.
    Take2,
    /// Incremental heapsort.
    Lazy,
    /// Incremental quicksort.
    Quick,
}

impl SuccessorKind {
    /// All variants, for experiments and tests.
    pub const ALL_KINDS: [SuccessorKind; 5] = [
        SuccessorKind::Eager,
        SuccessorKind::All,
        SuccessorKind::Take2,
        SuccessorKind::Lazy,
        SuccessorKind::Quick,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SuccessorKind::Eager => "Eager",
            SuccessorKind::All => "All",
            SuccessorKind::Take2 => "Take2",
            SuccessorKind::Lazy => "Lazy",
            SuccessorKind::Quick => "Quick",
        }
    }
}

/// A member reference within a group order. Its meaning is
/// variant-specific (rank for Eager/Lazy/Quick, array index for
/// All/Take2); treat as opaque.
pub type MemberRef = u32;

/// A group's members organized for successor queries.
#[derive(Debug)]
pub struct GroupOrder<C> {
    kind: SuccessorKind,
    /// Member storage; layout depends on `kind`:
    /// * Eager: sorted ascending;
    /// * All: unsorted, `best` holds the argmin;
    /// * Take2: binary min-heap array;
    /// * Lazy: `items[..materialized]` sorted, the rest live in `heap`;
    /// * Quick: partially sorted by IQS, `items[..materialized]` final.
    items: Vec<(C, RowId)>,
    /// All: argmin index. Others: unused.
    best: u32,
    /// Lazy/Quick: how many leading ranks are final.
    materialized: usize,
    /// Lazy: pending members.
    heap: BinaryHeap<Reverse<(C, RowId)>>,
    /// Quick: IQS segment stack (exclusive segment ends; top = current).
    stack: Vec<usize>,
}

impl<C: Clone + Ord> GroupOrder<C> {
    /// Organize `members` under `kind`. `members` must be non-empty
    /// (the full reducer guarantees non-empty groups).
    pub fn build(kind: SuccessorKind, mut members: Vec<(C, RowId)>) -> Self {
        assert!(!members.is_empty(), "groups are non-empty after reduction");
        let mut best = 0u32;
        let mut heap = BinaryHeap::new();
        let mut stack = Vec::new();
        let mut materialized = 0usize;
        match kind {
            SuccessorKind::Eager => {
                members.sort();
                materialized = members.len();
            }
            SuccessorKind::All => {
                best = argmin(&members) as u32;
            }
            SuccessorKind::Take2 => {
                heapify(&mut members);
            }
            SuccessorKind::Lazy => {
                heap = members.drain(..).map(Reverse).collect();
            }
            SuccessorKind::Quick => {
                stack.push(members.len());
            }
        }
        GroupOrder {
            kind,
            items: members,
            best,
            materialized,
            heap,
            stack,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self.kind {
            SuccessorKind::Lazy => self.items.len() + self.heap.len(),
            _ => self.items.len(),
        }
    }

    /// True iff no members (cannot happen for built groups).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The minimum member.
    pub fn best(&mut self) -> (MemberRef, C, RowId) {
        match self.kind {
            SuccessorKind::Eager | SuccessorKind::Take2 => {
                let (c, r) = self.items[0].clone();
                (0, c, r)
            }
            SuccessorKind::All => {
                let (c, r) = self.items[self.best as usize].clone();
                (self.best, c, r)
            }
            SuccessorKind::Lazy | SuccessorKind::Quick => {
                self.ensure_rank(0);
                let (c, r) = self.items[0].clone();
                (0, c, r)
            }
        }
    }

    /// Push `m`'s successors into `out` as `(ref, cost, row)`.
    pub fn successors(&mut self, m: MemberRef, out: &mut Vec<(MemberRef, C, RowId)>) {
        match self.kind {
            SuccessorKind::Eager => {
                let next = m as usize + 1;
                if next < self.items.len() {
                    let (c, r) = self.items[next].clone();
                    out.push((next as u32, c, r));
                }
            }
            SuccessorKind::All => {
                if m == self.best {
                    for (i, (c, r)) in self.items.iter().enumerate() {
                        if i as u32 != self.best {
                            out.push((i as u32, c.clone(), *r));
                        }
                    }
                }
            }
            SuccessorKind::Take2 => {
                for child in [2 * m as usize + 1, 2 * m as usize + 2] {
                    if child < self.items.len() {
                        let (c, r) = self.items[child].clone();
                        out.push((child as u32, c, r));
                    }
                }
            }
            SuccessorKind::Lazy | SuccessorKind::Quick => {
                let next = m as usize + 1;
                if next < self.len() {
                    self.ensure_rank(next);
                    let (c, r) = self.items[next].clone();
                    out.push((next as u32, c, r));
                }
            }
        }
    }

    /// The member behind `m` (must have been yielded by `best` or
    /// `successors` already).
    pub fn member(&self, m: MemberRef) -> (&C, RowId) {
        let (c, r) = &self.items[m as usize];
        (c, *r)
    }

    /// Materialize ranks up to `rank` (Lazy and Quick only).
    fn ensure_rank(&mut self, rank: usize) {
        match self.kind {
            SuccessorKind::Lazy => {
                while self.materialized <= rank {
                    let Reverse(item) = self.heap.pop().expect("rank in bounds");
                    self.items.push(item);
                    self.materialized += 1;
                }
            }
            SuccessorKind::Quick => {
                // Incremental quicksort: refine segments until
                // items[..=rank] is final.
                while self.materialized <= rank {
                    // Drop completed segments.
                    while self.stack.last() == Some(&self.materialized) {
                        self.stack.pop();
                    }
                    let end = *self.stack.last().expect("rank in bounds");
                    let start = self.materialized;
                    debug_assert!(start < end);
                    if end - start <= 12 {
                        self.items[start..end].sort();
                        self.materialized = end;
                        self.stack.pop();
                    } else {
                        let p = partition(&mut self.items, start, end);
                        if p == start {
                            // Pivot is the segment minimum: final.
                            self.materialized += 1;
                        } else {
                            self.stack.push(p);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Index of the minimum element.
fn argmin<C: Ord>(items: &[(C, RowId)]) -> usize {
    let mut best = 0;
    for i in 1..items.len() {
        if items[i] < items[best] {
            best = i;
        }
    }
    best
}

/// In-place binary min-heapify (sift-down from the last parent).
fn heapify<C: Ord>(items: &mut [(C, RowId)]) {
    let n = items.len();
    for i in (0..n / 2).rev() {
        sift_down(items, i);
    }
}

fn sift_down<C: Ord>(items: &mut [(C, RowId)], mut i: usize) {
    let n = items.len();
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut small = i;
        if l < n && items[l] < items[small] {
            small = l;
        }
        if r < n && items[r] < items[small] {
            small = r;
        }
        if small == i {
            return;
        }
        items.swap(i, small);
        i = small;
    }
}

/// Hoare-style partition with middle pivot; returns the pivot's final
/// index. `[start, p)` < pivot <= `[p, end)` with pivot at `p`.
fn partition<C: Ord>(items: &mut [(C, RowId)], start: usize, end: usize) -> usize {
    let mid = start + (end - start) / 2;
    items.swap(mid, end - 1);
    let mut store = start;
    for i in start..end - 1 {
        if items[i] < items[end - 1] {
            items.swap(i, store);
            store += 1;
        }
    }
    items.swap(store, end - 1);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect_all(kind: SuccessorKind, xs: &[i64]) -> Vec<i64> {
        let members: Vec<(i64, RowId)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i as RowId))
            .collect();
        let mut g = GroupOrder::build(kind, members);
        // BFS over the successor DAG from the minimum.
        let mut out = Vec::new();
        let mut frontier = vec![g.best()];
        let mut succ = Vec::new();
        while let Some((m, c, _row)) = frontier.pop() {
            out.push(c);
            succ.clear();
            g.successors(m, &mut succ);
            for (s, sc, sr) in succ.drain(..) {
                frontier.push((s, sc, sr));
            }
        }
        out
    }

    #[test]
    fn eager_is_sorted_chain() {
        let got = collect_all(SuccessorKind::Eager, &[5, 1, 4, 2, 3]);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn lazy_is_sorted_chain() {
        let got = collect_all(SuccessorKind::Lazy, &[5, 1, 4, 2, 3]);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn quick_is_sorted_chain() {
        let got = collect_all(SuccessorKind::Quick, &[5, 1, 4, 2, 3, 9, 0, 7, 8, 6]);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn all_star_reaches_everything() {
        let mut got = collect_all(SuccessorKind::All, &[5, 1, 4]);
        got.sort();
        assert_eq!(got, vec![1, 4, 5]);
    }

    #[test]
    fn take2_heap_property() {
        let xs = [9, 3, 7, 1, 8, 2, 6];
        let members: Vec<(i64, RowId)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i as RowId))
            .collect();
        let mut g = GroupOrder::build(SuccessorKind::Take2, members);
        let (b, c, _) = g.best();
        assert_eq!(c, 1);
        // Children of any member are >= the member.
        let mut stack = vec![(b, c)];
        let mut succ = Vec::new();
        while let Some((m, c)) = stack.pop() {
            succ.clear();
            g.successors(m, &mut succ);
            for (s, sc, _) in succ.drain(..) {
                assert!(sc >= c, "heap order violated");
                stack.push((s, sc));
            }
        }
    }

    #[test]
    fn singleton_group() {
        for kind in SuccessorKind::ALL_KINDS {
            let got = collect_all(kind, &[42]);
            assert_eq!(got, vec![42], "{kind:?}");
        }
    }

    proptest! {
        /// Every variant enumerates exactly the multiset of members,
        /// reachable from the minimum, with monotone successor chains.
        #[test]
        fn reachability_and_monotonicity(
            kind_idx in 0usize..5,
            xs in prop::collection::vec(-1000i64..1000, 1..60),
        ) {
            let kind = SuccessorKind::ALL_KINDS[kind_idx];
            let members: Vec<(i64, RowId)> =
                xs.iter().enumerate().map(|(i, &x)| (x, i as RowId)).collect();
            let mut g = GroupOrder::build(kind, members);
            let mut seen: Vec<i64> = Vec::new();
            let best = g.best();
            prop_assert_eq!(best.1, *xs.iter().min().unwrap());
            let mut frontier = vec![best];
            let mut succ = Vec::new();
            while let Some((m, c, _)) = frontier.pop() {
                seen.push(c);
                succ.clear();
                g.successors(m, &mut succ);
                for (s, sc, sr) in succ.drain(..) {
                    prop_assert!(sc >= c, "successor cost decreased");
                    frontier.push((s, sc, sr));
                }
            }
            let mut expect = xs.clone();
            expect.sort();
            seen.sort();
            prop_assert_eq!(seen, expect);
        }
    }
}
