//! T-DP: tree-based dynamic programming over join trees — the shared
//! preprocessing phase of every any-k algorithm (Part 3 of the paper,
//! following the companion VLDB 2020 paper).
//!
//! Given an acyclic full CQ, a join tree, and weighted relations:
//!
//! 1. **Full reducer** — establish global consistency so every tuple
//!    participates in ≥ 1 answer (dangling tuples would break both the
//!    DP and the constant-delay completion argument).
//! 2. **Serialization** — nodes in pre-order; each subtree occupies a
//!    contiguous slot range `[j, end(j))`, which is what makes O(1)
//!    deviation costs possible without cost subtraction.
//! 3. **Grouping** — for each non-root node, tuples are grouped by join
//!    key with the parent; a parent tuple points to exactly one group
//!    per child.
//! 4. **Bottom-up costs** — `subcost(t) = w(t) ⊗ best(g₁) ⊗ … ⊗
//!    best(g_d)` over `t`'s child groups, combined in serialization
//!    order (supports non-commutative rankings like lexicographic).
//!
//! An answer is one tuple per slot, consistent with the group structure;
//! its cost is the ⊗ of tuple weights in slot order. The top-1 answer
//! follows best-pointers from the root; ranked enumeration on top of
//! this structure is [`crate::part`] / [`crate::rec`].

use crate::ranking::RankingFunction;
use anyk_join::semijoin::{full_reducer, join_key_positions};
use anyk_query::cq::ConjunctiveQuery;
use anyk_query::join_tree::JoinTree;
use anyk_storage::{FxHashMap, HashIndex, Relation, RowId, Value};

/// Errors from T-DP preparation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdpError {
    /// The tree does not have one node per atom.
    TreeAtomMismatch,
    /// The ranking has no weight-level view
    /// ([`RankingFunction::weight_dioid`] is `None`, e.g.
    /// lexicographic), but the plan pre-joins input tuples and must
    /// collapse their weights (the 4-cycle's light-light bags, GHD bag
    /// materialization). The engine's planner rejects such rankings on
    /// cyclic routes before reaching this; hand-built plans get the
    /// typed error instead of wrong costs.
    NonCollapsibleRanking,
}

/// The prepared T-DP state (see module docs). Fields are crate-visible:
/// `part` and `rec` build their enumeration structures directly on it.
pub struct TdpInstance<R: RankingFunction> {
    pub(crate) query: ConjunctiveQuery,
    pub(crate) tree: JoinTree,
    /// Reduced relations (parallel to atoms).
    pub(crate) rels: Vec<Relation>,
    /// slot -> node id (pre-order).
    pub(crate) slots: Vec<usize>,
    /// slot -> atom index (== node's atom).
    pub(crate) atom_of_slot: Vec<usize>,
    /// slot -> parent slot (`usize::MAX` for the root slot 0).
    pub(crate) parent_slot: Vec<usize>,
    /// slot -> first slot after its subtree (pre-order contiguity).
    pub(crate) subtree_end: Vec<usize>,
    /// slot -> child slots in serialization order.
    pub(crate) child_slots: Vec<Vec<usize>>,
    /// slot -> group -> member rows. Slot 0 has a single group 0.
    pub(crate) groups: Vec<Vec<Vec<RowId>>>,
    /// slot (> 0) -> parent row id -> group id in this slot.
    pub(crate) group_of_parent_row: Vec<Vec<u32>>,
    /// slot -> row id -> optimal subtree cost through that row.
    pub(crate) subcost: Vec<Vec<R::Cost>>,
    /// slot -> group -> (best member cost, best member row).
    pub(crate) group_best: Vec<Vec<(R::Cost, RowId)>>,
    /// True iff the (reduced) query has no answers.
    pub(crate) empty: bool,
}

impl<R: RankingFunction> TdpInstance<R> {
    /// Run the preprocessing phase. `rels` are consumed (reduced in
    /// place). The query/tree must describe an acyclic join (one tree
    /// node per atom, running-intersection holds — as produced by
    /// [`anyk_query::gyo::gyo_reduce`]).
    pub fn prepare(
        q: &ConjunctiveQuery,
        tree: &JoinTree,
        mut rels: Vec<Relation>,
    ) -> Result<Self, TdpError> {
        if tree.len() != q.num_atoms() || rels.len() != q.num_atoms() {
            return Err(TdpError::TreeAtomMismatch);
        }
        full_reducer(q, tree, &mut rels);
        let empty = rels.iter().any(|r| r.is_empty());

        let slots = tree.preorder();
        let m = slots.len();
        let mut slot_of_node = vec![usize::MAX; m];
        for (s, &n) in slots.iter().enumerate() {
            slot_of_node[n] = s;
        }
        let atom_of_slot: Vec<usize> = slots.iter().map(|&n| tree.node(n).atom).collect();
        let parent_slot: Vec<usize> = slots
            .iter()
            .map(|&n| tree.node(n).parent.map_or(usize::MAX, |p| slot_of_node[p]))
            .collect();
        let child_slots: Vec<Vec<usize>> = slots
            .iter()
            .map(|&n| {
                let mut cs: Vec<usize> = tree
                    .node(n)
                    .children
                    .iter()
                    .map(|&c| slot_of_node[c])
                    .collect();
                cs.sort_unstable(); // serialization order
                cs
            })
            .collect();
        // subtree_end: max slot in subtree + 1, computable right-to-left.
        let mut subtree_end = vec![0usize; m];
        for s in (0..m).rev() {
            let mut end = s + 1;
            for &c in &child_slots[s] {
                end = end.max(subtree_end[c]);
            }
            subtree_end[s] = end;
        }

        // Grouping (skip entirely for empty instances).
        let mut groups: Vec<Vec<Vec<RowId>>> = vec![Vec::new(); m];
        let mut group_of_parent_row: Vec<Vec<u32>> = vec![Vec::new(); m];
        if !empty {
            for s in 0..m {
                let atom = atom_of_slot[s];
                if s == 0 {
                    groups[0] = vec![(0..rels[atom].len() as RowId).collect()];
                    continue;
                }
                let node = slots[s];
                let (cpos, ppos) = join_key_positions(q, tree, node);
                let idx = HashIndex::build(&rels[atom], &cpos);
                // Assign group ids in index iteration order.
                let mut gid_of_key: FxHashMap<Vec<Value>, u32> = FxHashMap::default();
                gid_of_key.reserve(idx.num_keys());
                let mut slot_groups: Vec<Vec<RowId>> = Vec::with_capacity(idx.num_keys());
                for (key, members) in idx.iter() {
                    gid_of_key.insert(key.to_vec(), slot_groups.len() as u32);
                    slot_groups.push(members.to_vec());
                }
                // Parent row -> group id (must exist post-reduction).
                let patom = atom_of_slot[parent_slot[s]];
                let prel = &rels[patom];
                let mut key = Vec::with_capacity(ppos.len());
                let mut map = Vec::with_capacity(prel.len());
                for prow in 0..prel.len() as RowId {
                    prel.key_into(prow, &ppos, &mut key);
                    let gid = *gid_of_key
                        .get(&key)
                        .expect("full reducer guarantees a matching group");
                    map.push(gid);
                }
                groups[s] = slot_groups;
                group_of_parent_row[s] = map;
            }
        }

        // Bottom-up subtree costs + per-group bests.
        let mut subcost: Vec<Vec<R::Cost>> = vec![Vec::new(); m];
        let mut group_best: Vec<Vec<(R::Cost, RowId)>> = vec![Vec::new(); m];
        if !empty {
            for s in (0..m).rev() {
                let atom = atom_of_slot[s];
                let rel = &rels[atom];
                let mut costs: Vec<R::Cost> = Vec::with_capacity(rel.len());
                for row in 0..rel.len() as RowId {
                    let mut c = R::lift(rel.weight(row));
                    for &cs in &child_slots[s] {
                        let gid = group_of_parent_row[cs][row as usize] as usize;
                        c = R::combine(&c, &group_best[cs][gid].0);
                    }
                    costs.push(c);
                }
                // Group bests for this slot. Ties MUST break by row id:
                // the Lawler partition in `part` assumes the completion
                // chosen here is the exact member the successor orders
                // call "best" — `GroupOrder` compares `(cost, row)`
                // tuples, so we do too.
                let mut bests: Vec<(R::Cost, RowId)> = Vec::with_capacity(groups[s].len());
                for members in &groups[s] {
                    debug_assert!(!members.is_empty());
                    let mut best = (costs[members[0] as usize].clone(), members[0]);
                    for &r in &members[1..] {
                        let c = &costs[r as usize];
                        if (c, r) < (&best.0, best.1) {
                            best = (c.clone(), r);
                        }
                    }
                    bests.push(best);
                }
                subcost[s] = costs;
                group_best[s] = bests;
            }
        }

        Ok(TdpInstance {
            query: q.clone(),
            tree: tree.clone(),
            rels,
            slots,
            atom_of_slot,
            parent_slot,
            subtree_end,
            child_slots,
            groups,
            group_of_parent_row,
            subcost,
            group_best,
            empty,
        })
    }

    /// Number of slots (= atoms = join-tree nodes).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The query this instance answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The join tree driving the DP.
    pub fn join_tree(&self) -> &JoinTree {
        &self.tree
    }

    /// Total rows across the (reduced) relations — the preprocessing
    /// input size `n` reported by experiments.
    pub fn reduced_input_size(&self) -> usize {
        self.rels.iter().map(|r| r.len()).sum()
    }

    /// True iff the query has no answers on this database.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// The cost of the top-ranked answer, if any.
    pub fn top1_cost(&self) -> Option<R::Cost> {
        if self.empty {
            None
        } else {
            Some(self.group_best[0][0].0.clone())
        }
    }

    /// Lifted weight of the tuple chosen at `slot`.
    #[inline]
    pub(crate) fn slot_weight(&self, slot: usize, row: RowId) -> R::Cost {
        R::lift(self.rels[self.atom_of_slot[slot]].weight(row))
    }

    /// Assemble the output tuple (one value per variable, `VarId`
    /// order) from per-slot row choices.
    pub(crate) fn assemble(&self, rows_by_slot: &[RowId], out: &mut Vec<Value>) {
        out.clear();
        out.resize(self.query.num_vars(), Value::Int(0));
        for (s, &row) in rows_by_slot.iter().enumerate() {
            let atom_idx = self.atom_of_slot[s];
            let atom = self.query.atom(atom_idx);
            let tuple = self.rels[atom_idx].row(row);
            for (pos, &v) in atom.vars.iter().enumerate() {
                out[v] = tuple[pos];
            }
        }
    }

    /// The group id at `slot` given the (already chosen) parent row.
    #[inline]
    pub(crate) fn group_at(&self, slot: usize, rows_by_slot: &[RowId]) -> u32 {
        debug_assert!(slot > 0);
        let prow = rows_by_slot[self.parent_slot[slot]];
        self.group_of_parent_row[slot][prow as usize]
    }

    /// Complete slots `[from, to)` optimally via best-pointers, assuming
    /// all ancestors of those slots (at positions `< from` or already
    /// filled) are set in `rows_by_slot`.
    pub(crate) fn complete_optimally(&self, rows_by_slot: &mut [RowId], from: usize, to: usize) {
        for s in from..to {
            let gid = self.group_at(s, rows_by_slot) as usize;
            rows_by_slot[s] = self.group_best[s][gid].1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{MaxCost, SumCost};
    use anyk_query::cq::{path_query, star_query};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_storage::{RelationBuilder, Schema, Weight};

    fn edge_rel(cols: [&str; 2], rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    #[test]
    fn top1_on_path() {
        // Two 2-paths: 1-2-5 (w 1+1=2) and 1-3-6 (w 0.5+0.25=0.75).
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0), (1, 3, 0.5)]),
            edge_rel(["b", "c"], &[(2, 5, 1.0), (3, 6, 0.25)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        assert!(!inst.is_empty());
        assert_eq!(inst.top1_cost(), Some(Weight::new(0.75)));
    }

    #[test]
    fn top1_max_ranking() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0), (1, 3, 0.5)]),
            edge_rel(["b", "c"], &[(2, 5, 0.1), (3, 6, 0.9)]),
        ];
        // max(1.0, 0.1) = 1.0 vs max(0.5, 0.9) = 0.9 -> 0.9 wins.
        let inst = TdpInstance::<MaxCost>::prepare(&q, &tree, rels).unwrap();
        assert_eq!(inst.top1_cost(), Some(Weight::new(0.9)));
    }

    #[test]
    fn empty_when_no_join() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0)]),
            edge_rel(["b", "c"], &[(9, 5, 1.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.top1_cost(), None);
    }

    #[test]
    fn star_subtree_ends() {
        // Build the star-shaped tree explicitly (GYO may produce a
        // chain, which is also valid but has different subtree ranges).
        let q = star_query(3);
        let tree = JoinTree::from_parents(&q, &[None, Some(0), Some(0)]);
        let rels = vec![
            edge_rel(["o", "a"], &[(1, 2, 0.0)]),
            edge_rel(["o", "b"], &[(1, 3, 0.0)]),
            edge_rel(["o", "c"], &[(1, 4, 0.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let m = inst.num_slots();
        assert_eq!(m, 3);
        assert_eq!(inst.subtree_end[0], 3);
        // Leaf slots have singleton subtrees.
        for s in 1..m {
            assert_eq!(inst.subtree_end[s], s + 1);
        }
    }

    #[test]
    fn completion_follows_best_pointers() {
        // Pin the tree shape: root = R1, chain R1 <- R2 <- R3.
        let q = path_query(3);
        let tree = JoinTree::from_parents(&q, &[None, Some(0), Some(1)]);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 1.0)]),
            edge_rel(["b", "c"], &[(2, 3, 5.0), (2, 4, 1.0)]),
            edge_rel(["c", "d"], &[(3, 9, 1.0), (4, 9, 2.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let mut rows = vec![0 as RowId; 3];
        rows[0] = 0; // slot 0 = root = R1's single row (1,2).
        inst.complete_optimally(&mut rows, 1, 3);
        // Best completion: (2,4) w1 + (4,9) w2 = 3 < (2,3)+(3,9) = 6.
        let chosen_mid = inst.rels[inst.atom_of_slot[1]].row(rows[1]);
        assert_eq!(chosen_mid[1].int(), 4);
        assert_eq!(inst.top1_cost(), Some(Weight::new(4.0)));
    }

    #[test]
    fn mismatched_tree_rejected() {
        let q = path_query(2);
        let tree = tree_of(&path_query(3));
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.0)]),
            edge_rel(["b", "c"], &[(2, 3, 0.0)]),
        ];
        assert!(TdpInstance::<SumCost>::prepare(&q, &tree, rels).is_err());
    }
}
