//! Ranked union: merge several ranked streams into one global ranked
//! stream — the glue of the union-of-trees technique (§3: submodular
//! width "decomposes a cyclic query into a union of multiple trees,
//! each one receiving a subset of the input").
//!
//! Because the cases partition the output, no de-duplication is needed;
//! the merge is a plain k-way heap merge with O(log #streams) delay
//! overhead.

use crate::answer::{AnyK, RankedAnswer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Debug;

struct Head<C> {
    cost: C,
    seq: u64,
    stream: usize,
    values: Vec<anyk_storage::Value>,
}

impl<C: Ord> PartialEq for Head<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl<C: Ord> Eq for Head<C> {}
impl<C: Ord> PartialOrd for Head<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C: Ord> Ord for Head<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A k-way merge of ranked streams (all yielding the same cost type).
pub struct RankedUnion<I: AnyK> {
    streams: Vec<I>,
    heap: BinaryHeap<Head<I::Cost>>,
    seq: u64,
}

impl<I: AnyK> RankedUnion<I> {
    /// Merge `streams`; pulls one head answer from each immediately.
    pub fn new(streams: Vec<I>) -> Self {
        let mut this = RankedUnion {
            streams,
            heap: BinaryHeap::new(),
            seq: 0,
        };
        for i in 0..this.streams.len() {
            this.refill(i);
        }
        this
    }

    fn refill(&mut self, i: usize) {
        if let Some(a) = self.streams[i].next() {
            self.seq += 1;
            self.heap.push(Head {
                cost: a.cost,
                seq: self.seq,
                stream: i,
                values: a.values,
            });
        }
    }
}

impl<I: AnyK> Iterator for RankedUnion<I>
where
    I::Cost: Debug,
{
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let head = self.heap.pop()?;
        self.refill(head.stream);
        Some(RankedAnswer {
            cost: head.cost,
            values: head.values,
        })
    }
}

impl<I: AnyK> AnyK for RankedUnion<I>
where
    I::Cost: Debug,
{
    type Cost = I::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_storage::{Value, Weight};

    /// A canned ranked stream for testing.
    struct Canned {
        items: std::vec::IntoIter<f64>,
    }
    impl Iterator for Canned {
        type Item = RankedAnswer<Weight>;
        fn next(&mut self) -> Option<Self::Item> {
            self.items.next().map(|c| RankedAnswer {
                cost: Weight::new(c),
                values: vec![Value::Int((c * 10.0) as i64)],
            })
        }
    }
    impl AnyK for Canned {
        type Cost = Weight;
    }

    #[test]
    fn merges_in_order() {
        let a = Canned {
            items: vec![0.1, 0.5, 0.9].into_iter(),
        };
        let b = Canned {
            items: vec![0.2, 0.3, 1.5].into_iter(),
        };
        let c = Canned {
            items: vec![].into_iter(),
        };
        let merged: Vec<f64> = RankedUnion::new(vec![a, b, c])
            .map(|x| x.cost.get())
            .collect();
        assert_eq!(merged, vec![0.1, 0.2, 0.3, 0.5, 0.9, 1.5]);
    }

    #[test]
    fn empty_union() {
        let merged: Vec<f64> = RankedUnion::new(Vec::<Canned>::new())
            .map(|x| x.cost.get())
            .collect();
        assert!(merged.is_empty());
    }
}
