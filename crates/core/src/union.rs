//! Ranked union: merge several ranked streams into one global ranked
//! stream — the glue of the union-of-trees technique (§3: submodular
//! width "decomposes a cyclic query into a union of multiple trees,
//! each one receiving a subset of the input") and of scatter-gather
//! serving across hash-partitioned shards.
//!
//! Because the cases (or shards) partition the output, no
//! de-duplication is needed; the merge is a k-way **tournament tree**
//! (loser tree) with O(log #streams) delay overhead. Two tie policies
//! share the same tree:
//!
//! * [`RankedUnion`] — arrival order: equal-cost answers keep the order
//!   in which they were pulled from the inputs. This is the historical
//!   union-of-trees behaviour.
//! * [`RankedMerge`] — canonical order: equal-cost answers are emitted
//!   sorted by output tuple (`Vec<Value>` has a total order), then by
//!   stream index. Feeding it streams wrapped in [`CanonicalOrder`]
//!   makes the merged stream byte-identical regardless of how answers
//!   were partitioned across the inputs — the contract sharded serving
//!   relies on.

use crate::answer::{AnyK, RankedAnswer};
use anyk_storage::Value;
use std::collections::VecDeque;
use std::fmt::Debug;

/// An index-based tournament ("loser") tree over `k` leaves.
///
/// The tree stores only leaf *indices*; the caller owns the heads and
/// supplies a strict `beats(a, b)` comparator per operation (`true` iff
/// leaf `a`'s head must surface before leaf `b`'s). The comparator must
/// be tie-free — break ties by sequence number or leaf index.
///
/// After any leaf's head changes, [`replay`](Self::replay) restores the
/// winner in O(log k) comparisons; [`rebuild`](Self::rebuild) recomputes
/// the whole tree in O(k) when many heads changed at once.
#[derive(Debug, Clone)]
pub struct TournamentTree {
    /// `tree[0]` is the overall winner; `tree[1..k]` hold the loser of
    /// each internal match. Leaves live at virtual nodes `k..2k-1`.
    tree: Vec<usize>,
    k: usize,
}

impl TournamentTree {
    /// A tree over `k` leaves. Call [`rebuild`](Self::rebuild) before
    /// reading the winner.
    pub fn new(k: usize) -> Self {
        TournamentTree {
            tree: vec![0; k.max(1)],
            k,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.k
    }

    /// True when the tree has no leaves (and thus no winner).
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The current winning leaf, if any.
    pub fn winner(&self) -> Option<usize> {
        if self.k == 0 {
            None
        } else {
            Some(self.tree[0])
        }
    }

    /// Recompute every match bottom-up. O(k) comparisons.
    pub fn rebuild(&mut self, mut beats: impl FnMut(usize, usize) -> bool) {
        let k = self.k;
        if k == 0 {
            return;
        }
        if k == 1 {
            self.tree[0] = 0;
            return;
        }
        // winners[j] = winning leaf of the subtree rooted at internal
        // node j; children of j are nodes 2j and 2j+1, where a node
        // x >= k is leaf x - k.
        let mut winners = vec![0usize; k];
        for j in (1..k).rev() {
            let resolve = |x: usize, w: &[usize]| if x >= k { x - k } else { w[x] };
            let a = resolve(2 * j, &winners);
            let b = resolve(2 * j + 1, &winners);
            let (win, lose) = if beats(a, b) { (a, b) } else { (b, a) };
            winners[j] = win;
            self.tree[j] = lose;
        }
        self.tree[0] = winners[1];
    }

    /// Re-run the matches on the path from `leaf` to the root after its
    /// head changed. O(log k) comparisons.
    pub fn replay(&mut self, leaf: usize, mut beats: impl FnMut(usize, usize) -> bool) {
        debug_assert!(leaf < self.k);
        let mut s = leaf;
        let mut t = (self.k + leaf) / 2;
        while t >= 1 {
            if beats(self.tree[t], s) {
                std::mem::swap(&mut self.tree[t], &mut s);
            }
            t /= 2;
        }
        self.tree[0] = s;
    }
}

/// Adapts a ranked stream to the *canonical* tie order: within each
/// maximal run of equal-cost answers, answers are re-emitted sorted by
/// output tuple (`Value` and therefore `Vec<Value>` are totally
/// ordered). Costs are untouched, so the any-k invariant is preserved.
///
/// The lookahead is bounded by the largest tie group in the stream —
/// the "bounded lookahead" of the sharded merge: a shard never buffers
/// past the first answer whose cost strictly increases.
pub struct CanonicalOrder<C, I> {
    inner: I,
    /// The current equal-cost run, sorted by tuple, ready to emit.
    run: VecDeque<RankedAnswer<C>>,
    /// First answer of the *next* run (its cost broke the current tie).
    lookahead: Option<RankedAnswer<C>>,
}

impl<C: Clone + Ord, I: Iterator<Item = RankedAnswer<C>>> CanonicalOrder<C, I> {
    /// Wrap `inner`, which must already yield non-decreasing costs.
    pub fn new(inner: I) -> Self {
        CanonicalOrder {
            inner,
            run: VecDeque::new(),
            lookahead: None,
        }
    }

    fn fill_run(&mut self) {
        let first = match self.lookahead.take().or_else(|| self.inner.next()) {
            Some(a) => a,
            None => return,
        };
        let cost = first.cost.clone();
        let mut run = vec![first];
        for a in self.inner.by_ref() {
            if a.cost == cost {
                run.push(a);
            } else {
                self.lookahead = Some(a);
                break;
            }
        }
        run.sort_by(|a, b| a.values.cmp(&b.values));
        self.run = run.into();
    }
}

impl<C: Clone + Ord, I: Iterator<Item = RankedAnswer<C>>> Iterator for CanonicalOrder<C, I> {
    type Item = RankedAnswer<C>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.run.is_empty() {
            self.fill_run();
        }
        self.run.pop_front()
    }
}

impl<I: AnyK> AnyK for CanonicalOrder<I::Cost, I> {
    type Cost = I::Cost;
}

/// How a [`Merge`] breaks ties between equal-cost heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TiePolicy {
    /// First pulled wins (global sequence number).
    Arrival,
    /// Smaller output tuple wins; equal tuples fall back to the lower
    /// stream index.
    Canonical,
}

struct HeadEntry<C> {
    cost: C,
    seq: u64,
    values: Vec<Value>,
}

/// Shared k-way merge body: one buffered head per stream plus a
/// tournament tree over them.
struct Merge<I: AnyK> {
    streams: Vec<I>,
    heads: Vec<Option<HeadEntry<I::Cost>>>,
    tree: TournamentTree,
    seq: u64,
    policy: TiePolicy,
}

/// Strict comparator over head slots: a live head beats an exhausted
/// one; otherwise (cost, tie policy) decides; exhausted slots order by
/// index so the relation stays total.
fn beats<C: Ord>(heads: &[Option<HeadEntry<C>>], policy: TiePolicy, a: usize, b: usize) -> bool {
    match (&heads[a], &heads[b]) {
        (Some(x), Some(y)) => x
            .cost
            .cmp(&y.cost)
            .then_with(|| match policy {
                TiePolicy::Arrival => x.seq.cmp(&y.seq),
                TiePolicy::Canonical => x.values.cmp(&y.values).then_with(|| a.cmp(&b)),
            })
            .is_lt(),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

impl<I: AnyK> Merge<I> {
    fn new(streams: Vec<I>, policy: TiePolicy) -> Self {
        let n = streams.len();
        let mut this = Merge {
            streams,
            heads: Vec::with_capacity(n),
            tree: TournamentTree::new(n),
            seq: 0,
            policy,
        };
        for i in 0..n {
            let head = this.pull(i);
            this.heads.push(head);
        }
        let (heads, policy) = (&this.heads, this.policy);
        this.tree.rebuild(|a, b| beats(heads, policy, a, b));
        this
    }

    fn pull(&mut self, i: usize) -> Option<HeadEntry<I::Cost>> {
        self.streams[i].next().map(|a| {
            self.seq += 1;
            HeadEntry {
                cost: a.cost,
                seq: self.seq,
                values: a.values,
            }
        })
    }

    fn next_answer(&mut self) -> Option<RankedAnswer<I::Cost>> {
        let w = self.tree.winner()?;
        let head = self.heads[w].take()?;
        self.heads[w] = self.pull(w);
        let (heads, policy) = (&self.heads, self.policy);
        self.tree.replay(w, |a, b| beats(heads, policy, a, b));
        Some(RankedAnswer {
            cost: head.cost,
            values: head.values,
        })
    }
}

/// A k-way merge of ranked streams (all yielding the same cost type),
/// breaking cost ties in arrival order — the union-of-trees merger.
pub struct RankedUnion<I: AnyK> {
    inner: Merge<I>,
}

impl<I: AnyK> RankedUnion<I> {
    /// Merge `streams`; pulls one head answer from each immediately.
    pub fn new(streams: Vec<I>) -> Self {
        RankedUnion {
            inner: Merge::new(streams, TiePolicy::Arrival),
        }
    }
}

impl<I: AnyK> Iterator for RankedUnion<I>
where
    I::Cost: Debug,
{
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next_answer()
    }
}

impl<I: AnyK> AnyK for RankedUnion<I>
where
    I::Cost: Debug,
{
    type Cost = I::Cost;
}

/// A k-way merge of ranked streams with the *canonical* deterministic
/// tie-break: (cost, output tuple, stream index). When every input is
/// wrapped in [`CanonicalOrder`], the merged stream is the globally
/// canonical ranked stream — identical no matter how the answer set was
/// partitioned across the inputs. This is the cross-shard tie-break
/// contract of sharded serving.
pub struct RankedMerge<I: AnyK> {
    inner: Merge<CanonicalOrder<I::Cost, I>>,
}

impl<I: AnyK> RankedMerge<I> {
    /// Merge `streams`, canonicalizing each input's tie groups first.
    pub fn new(streams: Vec<I>) -> Self {
        RankedMerge {
            inner: Merge::new(
                streams.into_iter().map(CanonicalOrder::new).collect(),
                TiePolicy::Canonical,
            ),
        }
    }
}

impl<I: AnyK> Iterator for RankedMerge<I>
where
    I::Cost: Debug,
{
    type Item = RankedAnswer<I::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next_answer()
    }
}

impl<I: AnyK> AnyK for RankedMerge<I>
where
    I::Cost: Debug,
{
    type Cost = I::Cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_storage::{Value, Weight};

    /// A canned ranked stream for testing.
    struct Canned {
        items: std::vec::IntoIter<f64>,
    }
    impl Iterator for Canned {
        type Item = RankedAnswer<Weight>;
        fn next(&mut self) -> Option<Self::Item> {
            self.items.next().map(|c| RankedAnswer {
                cost: Weight::new(c),
                values: vec![Value::Int((c * 10.0) as i64)],
            })
        }
    }
    impl AnyK for Canned {
        type Cost = Weight;
    }

    fn canned(items: Vec<f64>) -> Canned {
        Canned {
            items: items.into_iter(),
        }
    }

    /// A canned stream with explicit (cost, tuple) pairs.
    struct Pairs {
        items: std::vec::IntoIter<(f64, Vec<i64>)>,
    }
    impl Iterator for Pairs {
        type Item = RankedAnswer<Weight>;
        fn next(&mut self) -> Option<Self::Item> {
            self.items.next().map(|(c, vs)| RankedAnswer {
                cost: Weight::new(c),
                values: vs.into_iter().map(Value::Int).collect(),
            })
        }
    }
    impl AnyK for Pairs {
        type Cost = Weight;
    }

    fn pairs(items: Vec<(f64, Vec<i64>)>) -> Pairs {
        Pairs {
            items: items.into_iter(),
        }
    }

    #[test]
    fn merges_in_order() {
        let a = canned(vec![0.1, 0.5, 0.9]);
        let b = canned(vec![0.2, 0.3, 1.5]);
        let c = canned(vec![]);
        let merged: Vec<f64> = RankedUnion::new(vec![a, b, c])
            .map(|x| x.cost.get())
            .collect();
        assert_eq!(merged, vec![0.1, 0.2, 0.3, 0.5, 0.9, 1.5]);
    }

    #[test]
    fn empty_union() {
        let merged: Vec<f64> = RankedUnion::new(Vec::<Canned>::new())
            .map(|x| x.cost.get())
            .collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn arrival_order_breaks_ties_by_pull_sequence() {
        // Both streams open with cost 1.0; stream 0's head was pulled
        // first, so it must surface first.
        let a = pairs(vec![(1.0, vec![9]), (2.0, vec![1])]);
        let b = pairs(vec![(1.0, vec![0]), (3.0, vec![2])]);
        let merged: Vec<Vec<Value>> = RankedUnion::new(vec![a, b]).map(|x| x.values).collect();
        assert_eq!(
            merged,
            vec![
                vec![Value::Int(9)],
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ]
        );
    }

    #[test]
    fn tournament_tree_single_leaf_and_empty() {
        let mut t = TournamentTree::new(0);
        t.rebuild(|_, _| unreachable!());
        assert_eq!(t.winner(), None);
        assert!(t.is_empty());

        let mut t = TournamentTree::new(1);
        t.rebuild(|_, _| unreachable!());
        assert_eq!(t.winner(), Some(0));
        t.replay(0, |_, _| unreachable!());
        assert_eq!(t.winner(), Some(0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tournament_tree_replay_tracks_changing_heads() {
        // Heads are plain integers; smaller beats larger, index breaks
        // ties strictly.
        let mut heads = [5u64, 3, 8, 1, 9, 2, 7];
        let mut t = TournamentTree::new(heads.len());
        let cmp = |h: &[u64; 7], a: usize, b: usize| (h[a], a) < (h[b], b);
        t.rebuild(|a, b| cmp(&heads, a, b));
        // Drain by repeatedly bumping the winner's head, exactly as a
        // merge does, and check the pop order is globally sorted.
        let mut order = Vec::new();
        for step in 0..heads.len() {
            let w = t.winner().unwrap();
            order.push(heads[w]);
            heads[w] = u64::MAX - step as u64; // exhausted marker, still unique
            t.replay(w, |a, b| cmp(&heads, a, b));
        }
        assert_eq!(order, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn canonical_order_sorts_within_tie_groups_only() {
        let s = pairs(vec![
            (1.0, vec![3]),
            (1.0, vec![1]),
            (1.0, vec![2]),
            (2.0, vec![9]),
            (3.0, vec![5]),
            (3.0, vec![4]),
        ]);
        let out: Vec<(f64, i64)> = CanonicalOrder::new(s)
            .map(|a| {
                let v = match a.values[0] {
                    Value::Int(i) => i,
                    _ => unreachable!(),
                };
                (a.cost.get(), v)
            })
            .collect();
        assert_eq!(
            out,
            vec![(1.0, 1), (1.0, 2), (1.0, 3), (2.0, 9), (3.0, 4), (3.0, 5)]
        );
    }

    #[test]
    fn ranked_merge_is_partition_invariant() {
        // The same six answers split two different ways across streams
        // must merge to the identical canonical sequence.
        let all = [
            (1.0, vec![1, 7]),
            (1.0, vec![2, 0]),
            (1.0, vec![2, 4]),
            (2.0, vec![0, 0]),
            (2.0, vec![9, 9]),
            (5.0, vec![3, 3]),
        ];
        let split_a = vec![
            pairs(vec![all[1].clone(), all[2].clone(), all[5].clone()]),
            pairs(vec![all[0].clone(), all[3].clone(), all[4].clone()]),
        ];
        let split_b = vec![
            pairs(vec![all[4].clone()]),
            pairs(vec![all[2].clone(), all[3].clone()]),
            pairs(vec![all[0].clone(), all[1].clone(), all[5].clone()]),
        ];
        let run = |streams: Vec<Pairs>| -> Vec<(String, Vec<Value>)> {
            RankedMerge::new(streams)
                .map(|a| (format!("{:?}", a.cost), a.values))
                .collect()
        };
        let a = run(split_a);
        let b = run(split_b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        // And the canonical order equals the (cost, tuple) sort of the set.
        let tuples: Vec<Vec<i64>> = a
            .iter()
            .map(|(_, vs)| {
                vs.iter()
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => unreachable!(),
                    })
                    .collect()
            })
            .collect();
        assert_eq!(
            tuples,
            vec![
                vec![1, 7],
                vec![2, 0],
                vec![2, 4],
                vec![0, 0],
                vec![9, 9],
                vec![3, 3]
            ]
        );
    }
}
