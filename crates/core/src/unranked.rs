//! Constant-delay **unranked** enumeration — the §4 connection: "if an
//! algorithm returns join results with constant delay after spending
//! time `t_prep` on pre-processing, then it guarantees join time
//! O~(t_prep + r)". Ranked enumeration is exactly this plus "a little
//! more" preprocessing to emit in order.
//!
//! After the full reducer, every partial binding extends to an answer,
//! so a plain odometer over the join-key groups visits each answer
//! exactly once with O(1) work between answers — no priority queue, no
//! order. This is the fair baseline for measuring what *ranking* costs
//! on top of *enumeration* (experiment E6 compares the delays).

use crate::answer::RankedAnswer;
use crate::ranking::RankingFunction;
use crate::tdp::TdpInstance;
use anyk_storage::{RowId, Value};

/// Unordered constant-delay enumeration over a prepared
/// [`TdpInstance`]. Yields [`RankedAnswer`]s whose `cost` is computed
/// per answer (so downstream code can re-rank or filter), but **arrival
/// order is arbitrary**.
pub struct UnrankedEnum<R: RankingFunction> {
    inst: TdpInstance<R>,
    /// Current member index within each slot's active group.
    pos: Vec<usize>,
    /// Current row per slot.
    rows: Vec<RowId>,
    state: State,
}

#[derive(PartialEq)]
enum State {
    Fresh,
    Running,
    Done,
}

impl<R: RankingFunction> UnrankedEnum<R> {
    /// Wrap a prepared instance.
    pub fn new(inst: TdpInstance<R>) -> Self {
        let m = inst.num_slots();
        let state = if inst.is_empty() {
            State::Done
        } else {
            State::Fresh
        };
        UnrankedEnum {
            inst,
            pos: vec![0; m],
            rows: vec![0; m],
            state,
        }
    }

    /// Group members of `slot` under the current prefix.
    fn group(&self, slot: usize) -> &[RowId] {
        if slot == 0 {
            &self.inst.groups[0][0]
        } else {
            let gid = self.inst.group_at(slot, &self.rows) as usize;
            &self.inst.groups[slot][gid]
        }
    }

    /// Reset slots `from..m` to the first member of their groups.
    fn reset_from(&mut self, from: usize) {
        let m = self.inst.num_slots();
        for s in from..m {
            self.pos[s] = 0;
            self.rows[s] = self.group(s)[0];
        }
    }

    fn assemble(&self) -> RankedAnswer<R::Cost> {
        let mut cost = R::identity();
        for (s, &row) in self.rows.iter().enumerate() {
            cost = R::combine(&cost, &self.inst.slot_weight(s, row));
        }
        let mut values: Vec<Value> = Vec::new();
        self.inst.assemble(&self.rows, &mut values);
        RankedAnswer { cost, values }
    }
}

impl<R: RankingFunction> Iterator for UnrankedEnum<R> {
    type Item = RankedAnswer<R::Cost>;

    fn next(&mut self) -> Option<Self::Item> {
        let m = self.inst.num_slots();
        match self.state {
            State::Done => return None,
            State::Fresh => {
                self.reset_from(0);
                self.state = State::Running;
                return Some(self.assemble());
            }
            State::Running => {}
        }
        // Odometer: advance the deepest slot with a next member; all
        // groups are non-empty post-reduction, so resets always land on
        // valid rows.
        let mut s = m;
        loop {
            if s == 0 {
                self.state = State::Done;
                return None;
            }
            s -= 1;
            let (glen, next_row) = {
                let g = self.group(s);
                let p = self.pos[s] + 1;
                (g.len(), g.get(p).copied())
            };
            if self.pos[s] + 1 < glen {
                self.pos[s] += 1;
                self.rows[s] = next_row.expect("bounds checked");
                self.reset_from(s + 1);
                return Some(self.assemble());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchSorted;
    use crate::ranking::SumCost;
    use anyk_query::cq::{path_query, star_query, ConjunctiveQuery};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_query::join_tree::JoinTree;
    use anyk_storage::{Relation, RelationBuilder, Schema};

    fn edge_rel(cols: [&str; 2], rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    fn check_same_multiset(q: &ConjunctiveQuery, rels: Vec<Relation>) {
        let tree = tree_of(q);
        let inst = TdpInstance::<SumCost>::prepare(q, &tree, rels.clone()).unwrap();
        let mut unranked: Vec<(Vec<i64>, f64)> = UnrankedEnum::new(inst)
            .map(|a| (a.values.iter().map(|v| v.int()).collect(), a.cost.get()))
            .collect();
        let mut ranked: Vec<(Vec<i64>, f64)> = BatchSorted::<SumCost>::new(q, &tree, rels)
            .map(|a| (a.values.iter().map(|v| v.int()).collect(), a.cost.get()))
            .collect();
        unranked.sort_by(|a, b| a.0.cmp(&b.0));
        ranked.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(unranked.len(), ranked.len());
        for ((uv, uc), (rv, rc)) in unranked.iter().zip(&ranked) {
            assert_eq!(uv, rv);
            assert!((uc - rc).abs() < 1e-9);
        }
    }

    #[test]
    fn path_multiset_matches_batch() {
        let rels = vec![
            edge_rel(
                ["a", "b"],
                &[(1, 2, 0.5), (1, 3, 1.0), (4, 2, 0.25), (9, 9, 8.0)],
            ),
            edge_rel(["b", "c"], &[(2, 5, 2.0), (2, 6, 0.125), (3, 5, 0.0625)]),
        ];
        check_same_multiset(&path_query(2), rels);
    }

    #[test]
    fn star_multiset_matches_batch() {
        let rels = vec![
            edge_rel(["o", "a"], &[(1, 10, 0.5), (1, 11, 1.0), (2, 12, 0.25)]),
            edge_rel(["o", "b"], &[(1, 20, 2.0), (2, 21, 0.125)]),
            edge_rel(["o", "c"], &[(1, 30, 4.0), (2, 31, 0.0625), (2, 32, 8.0)]),
        ];
        check_same_multiset(&star_query(3), rels);
    }

    #[test]
    fn empty_result() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.0)]),
            edge_rel(["b", "c"], &[(9, 5, 0.0)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        assert_eq!(UnrankedEnum::new(inst).count(), 0);
    }

    #[test]
    fn single_answer() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2, 0.25)]),
            edge_rel(["b", "c"], &[(2, 3, 0.5)]),
        ];
        let inst = TdpInstance::<SumCost>::prepare(&q, &tree, rels).unwrap();
        let all: Vec<_> = UnrankedEnum::new(inst).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].cost.get(), 0.75);
    }
}
