//! The engine's typed error — every failure mode of planning and
//! execution that previously surfaced as a `panic!` on an internal
//! seam (catalog lookup, schema lookup, tree/atom mismatch).

use anyk_core::tdp::TdpError;
use anyk_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Why the engine could not plan or execute a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A storage-layer lookup failed (unknown relation or attribute).
    Storage(StorageError),
    /// Atom `atom` binds relation `relation`, whose arity does not
    /// match the atom's variable count.
    ArityMismatch {
        /// Index of the offending atom in the query.
        atom: usize,
        /// The relation name the atom references.
        relation: String,
        /// The atom's variable count.
        expected: usize,
        /// The relation's actual arity.
        found: usize,
    },
    /// T-DP preparation rejected a query/tree pair (one tree node per
    /// atom is required) — reachable only through hand-built plans,
    /// but typed instead of panicking.
    Prepare(TdpError),
    /// The query has no atoms (nothing to enumerate).
    EmptyQuery,
    /// `try_from_query_bindings` was given a relation list whose
    /// length differs from the query's atom count.
    BindingCountMismatch {
        /// The query's atom count.
        atoms: usize,
        /// The number of relations supplied.
        relations: usize,
    },
    /// `try_from_query_bindings` found two atoms sharing a relation
    /// name but bound to different relations — the query would run on
    /// the wrong data.
    ConflictingBindings {
        /// The shared relation name.
        relation: String,
    },
    /// A [`ShardedEngine`](crate::ShardedEngine) was asked for zero
    /// shards — there would be nothing to merge.
    ZeroShards,
    /// A relation name uses the reserved shard-fragment marker `#`
    /// (fragments are addressed as `{name}#frag` internally, so user
    /// relations must not collide with that namespace).
    ReservedRelationName {
        /// The offending relation name.
        relation: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::ArityMismatch {
                atom,
                relation,
                expected,
                found,
            } => write!(
                f,
                "atom #{atom} uses relation `{relation}` with {expected} variable(s), \
                 but the relation has arity {found}"
            ),
            EngineError::Prepare(e) => write!(f, "T-DP preparation failed: {e:?}"),
            EngineError::EmptyQuery => write!(f, "query has no atoms"),
            EngineError::BindingCountMismatch { atoms, relations } => write!(
                f,
                "query has {atoms} atom(s) but {relations} relation(s) were supplied"
            ),
            EngineError::ConflictingBindings { relation } => write!(
                f,
                "atoms sharing the name `{relation}` were bound to different relations"
            ),
            EngineError::ZeroShards => write!(f, "a sharded engine needs at least one shard"),
            EngineError::ReservedRelationName { relation } => write!(
                f,
                "relation name `{relation}` uses the reserved shard-fragment marker `#`"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<TdpError> for EngineError {
    fn from(e: TdpError) -> Self {
        EngineError::Prepare(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::from(StorageError::RelationNotFound { name: "R".into() });
        assert!(e.to_string().contains("`R`"));
        assert!(Error::source(&e).is_some());

        let e = EngineError::ArityMismatch {
            atom: 1,
            relation: "S".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        assert!(Error::source(&e).is_none());
    }
}
