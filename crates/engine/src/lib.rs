//! # anyk-engine — the unified entry point for ranked enumeration
//!
//! The paper's central promise (*Optimal Join Algorithms Meet Top-k*,
//! SIGMOD 2020) is a single contract: **answers arrive in ranking
//! order, any `k`, with optimal time-to-k**. This crate is that
//! contract as an API. Callers describe *what* they want — a
//! conjunctive query over a catalog, ranked by a runtime-chosen
//! function — and the planner decides *how*: GYO + T-DP for acyclic
//! queries, the specialized union-of-trees plans for triangles and
//! 4-cycles, GHD decompositions for everything else.
//!
//! ## Serving model
//!
//! The paper splits ranked enumeration into `O~(n^w)` **preprocessing**
//! and cheap **per-answer delay**; the engine splits the API the same
//! way. [`Engine::prepare`] routes and preprocesses exactly once and
//! returns a [`PreparedQuery`] whose [`stream`](PreparedQuery::stream)
//! spawns any number of independent ranked streams — preprocessing is
//! never repeated. The ad-hoc path `query(..).plan()` is backed by an
//! internal cache keyed on (query signature, ranking, batch-ness), so
//! repeated ad-hoc queries amortize automatically. `Engine` is
//! `Clone + Send + Sync`: clones are handles to the same catalog and
//! cache, and any number of threads may plan and stream concurrently.
//! Catalog updates go through [`Engine::update_catalog`], which bumps
//! an epoch — cached plans from older epochs are never served again.
//!
//! ```
//! use anyk_engine::{Engine, RankSpec};
//! use anyk_query::cq::QueryBuilder;
//! use anyk_storage::{Catalog, RelationBuilder, Schema};
//!
//! let mut catalog = Catalog::new();
//! let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
//! r.push_ints(&[1, 10], 0.3);
//! r.push_ints(&[2, 10], 0.1);
//! catalog.register("R", r.finish());
//! let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
//! s.push_ints(&[10, 100], 0.5);
//! catalog.register("S", s.finish());
//!
//! let engine = Engine::new(catalog);
//! let q = QueryBuilder::new()
//!     .atom("R", &["a", "b"])
//!     .atom("S", &["b", "c"])
//!     .build();
//! let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
//! let top2 = stream.top_k(2);
//! assert_eq!(top2.len(), 2);
//! assert!(top2[0].cost <= top2[1].cost);
//! ```

mod error;
mod plan;
mod prepared;
mod rank;
mod shard;
mod stream;

pub use error::EngineError;
pub use plan::{AnyKVariant, EngineOpts, IndexUse, Plan, Route};
pub use prepared::PreparedQuery;
pub use rank::{Cost, IntoCost, RankSpec};
pub use shard::{ShardFanIn, ShardedEngine, ShardedPrepared, FRAGMENT_SUFFIX};
pub use stream::{RankedAnswer, RankedStream};

pub use anyk_obs::ObsRegistry;

use anyk_core::decomposed::auto_decomposition;
use anyk_join::c4::c4_trie_requests;
use anyk_join::decomposed::ghd_trie_requests;
use anyk_join::generic_join_trie_requests;
use anyk_query::cq::{triangle_query, ConjunctiveQuery};
use anyk_query::cycles::{cycle_length, cycle_submodular_width, heavy_threshold};
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_storage::{Catalog, FxHashMap, IndexCatalog, IndexProvider, IndexStats, Relation};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// The unified, planner-routed engine for ranked enumeration.
///
/// # Which engine runs when (the routing table)
///
/// | query shape | route | algorithm | preprocessing | delay |
/// |---|---|---|---|---|
/// | α-acyclic (GYO succeeds) | [`Route::Acyclic`] | T-DP + ANYK-PART / ANYK-REC / batch | `O~(n)` | `O~(1)` |
/// | triangle `R(a,b)⋈S(b,c)⋈T(c,a)` | [`Route::Triangle`] | Generic-Join materialization + shared sorted answers | `O~(n^1.5)` | `O(1)` |
/// | 4-cycle | [`Route::FourCycle`] | submodular-width union-of-trees, k-way merge | `O~(n^1.5)` | `O~(1)` |
/// | any other cyclic query | [`Route::Decomposed`] | GHD bags (exact fhw ≤ 9 vars, greedy beyond) + any-k | `O~(n^fhw)` | `O~(1)` |
///
/// The ranking function is a runtime value ([`RankSpec`]); the engine
/// monomorphizes internally. Lexicographic ranking is order-sensitive:
/// on the acyclic route its weights serialize in join-tree pre-order,
/// while cyclic routes (whose any-k case plans serialize atoms in
/// per-case orders) run it off the materialized answer set with
/// weights serialized in **canonical atom order** — the route's
/// `Batch`-style artifact, so the answer order is still exact.
///
/// All failure modes are typed ([`EngineError`]): unknown relations,
/// arity mismatches, malformed bindings. The planner never panics on
/// user input.
///
/// # Sharing and concurrency
///
/// `Engine` is `Clone + Send + Sync`. A clone is a *handle* to the same
/// underlying state — catalog, plan cache, epoch — so cloning an engine
/// into N worker threads gives all of them the same amortization.
/// Relations themselves are `Arc`-backed handles
/// ([`anyk_storage::Relation`]): resolving a query's atoms is a
/// refcount bump per atom, never an `O(n)` copy.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
    opts: EngineOpts,
}

/// State shared by all clones of one [`Engine`].
struct EngineShared {
    /// The catalog plus its epoch, swapped copy-on-write under a write
    /// lock by [`Engine::update_catalog`]. Reads take a snapshot
    /// (`Arc` clone) and never block behind preprocessing.
    catalog: RwLock<CatalogState>,
    /// Prepared plans keyed by (query signature, ranking, batch-ness).
    /// Entries record the epoch they were prepared at and are served
    /// only while the catalog is still at that epoch. Bounded: see
    /// [`PlanCache`].
    cache: Mutex<PlanCache>,
    /// Engine-side telemetry: prepare-time and sampled per-pull delay
    /// histograms plus the injected clock. In a sharded deployment
    /// each shard engine carries its own registry; the server merges
    /// their histograms bucket-wise for `STATS`.
    obs: Arc<ObsRegistry>,
    /// Write-path counters ([`Engine::write_stats`]), shared by all
    /// clones. Plain relaxed atomics: monotone counters, no ordering
    /// dependencies.
    writes: WriteCounters,
}

/// The atomics behind [`WriteStats`].
#[derive(Default)]
struct WriteCounters {
    appends: std::sync::atomic::AtomicU64,
    appended_rows: std::sync::atomic::AtomicU64,
    compactions: std::sync::atomic::AtomicU64,
    invalidated_plans: std::sync::atomic::AtomicU64,
}

/// A snapshot of the engine's write-path counters
/// ([`Engine::write_stats`]): appends accepted, rows appended,
/// compactions run (explicit and threshold-triggered), and cached
/// plans dropped by relation-scoped invalidation. Fragment appends in
/// a sharded deployment are bookkeeping, not logical writes, and are
/// not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteStats {
    /// Append batches accepted (empty batches included).
    pub appends: u64,
    /// Total rows appended.
    pub appended_rows: u64,
    /// Delta-folding compactions that actually ran.
    pub compactions: u64,
    /// Cached plans dropped because a relation they read was appended
    /// to (or compacted under them).
    pub invalidated_plans: u64,
}

/// Default plan-cache capacity: generous enough that steady workloads
/// (a fixed set of query shapes) never evict, small enough that a
/// stream of distinct ad-hoc shapes cannot grow memory without bound.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// The bounded LRU store behind the engine's plan cache.
///
/// Eviction policy (when an insert exceeds `capacity`): the
/// least-recently-used entry holding **materialized answers** (the
/// triangle route and `Batch` plans — full answer sets, the heaviest
/// residents) is evicted first; only when no such entry exists does
/// the overall LRU entry go. Epoch invalidation ([`Engine::update_catalog`])
/// still purges everything at once.
struct PlanCache {
    map: FxHashMap<CacheKey, CacheSlot>,
    /// The all-base terms of delta-union prepares, kept across
    /// relation-scoped invalidations: an append changes only a
    /// relation's delta tail, so the (expensive) prepared state over
    /// the bases stays valid and the re-prepare pays only for the
    /// delta-sized terms. Entries are validated by epoch and base
    /// payload ids (a compaction swaps the base payload out), and
    /// LRU-bounded by the same `capacity` as the main map.
    base_terms: FxHashMap<CacheKey, BaseTermSlot>,
    capacity: usize,
    /// Monotone use counter backing the LRU order.
    tick: u64,
    /// Lookups served from the cache (epoch-valid entries only).
    hits: u64,
    /// Lookups that fell through to a fresh prepare — cold keys,
    /// epoch-stale entries, and capacity-evicted entries alike.
    misses: u64,
    /// Entries removed by the capacity bound (not epoch purges).
    evictions: u64,
}

/// A snapshot of the engine's plan-cache counters
/// ([`Engine::cache_stats`]): how well the prepare-once/execute-many
/// amortization is actually working for the current workload.
///
/// `hits`/`misses` count [`prepare`](Engine::prepare)/
/// [`plan`](QueryRequest::plan) lookups (an epoch-stale entry counts as
/// a miss: it must be re-prepared). `evictions` counts entries removed
/// by the capacity bound — epoch purges ([`Engine::update_catalog`])
/// are invalidations, not evictions, and are not counted. `entries` is
/// the current resident count, `capacity` the configured bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh prepare.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Prepared plans currently resident.
    pub entries: usize,
    /// The configured capacity (`0` = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups so far (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheSlot {
    prepared: PreparedQuery,
    last_used: u64,
    /// The relations this plan reads, with the source payload ids
    /// (base + deltas, in order) each had at prepare time. A slot is
    /// served only while every dependency still has exactly these
    /// sources — so an [`Engine::append`] invalidates precisely the
    /// plans that read the appended relation, even if a racing prepare
    /// inserts a stale entry after the eager purge.
    deps: Vec<(String, Vec<u64>)>,
    /// The exact prepare inputs, kept so the write path can re-prepare
    /// (refresh) this plan right after invalidating it — readers then
    /// keep hitting the cache instead of absorbing the rebuild.
    origin: (ConjunctiveQuery, RankSpec, EngineOpts),
}

struct BaseTermSlot {
    prepared: PreparedQuery,
    /// Base payload ids of every atom at build time, in atom order.
    base_ids: Vec<u64>,
    last_used: u64,
}

/// Is every dependency fingerprint still current in `catalog`?
fn deps_current(catalog: &Catalog, deps: &[(String, Vec<u64>)]) -> bool {
    deps.iter().all(|(name, ids)| {
        catalog.entry(name).is_some_and(|e| {
            e.sources()
                .map(Relation::payload_id)
                .eq(ids.iter().copied())
        })
    })
}

/// The dependency fingerprint for `cq` against `catalog`: one entry
/// per distinct relation name the query reads, with its current
/// source payload ids.
fn query_deps(catalog: &Catalog, cq: &ConjunctiveQuery) -> Vec<(String, Vec<u64>)> {
    let mut deps: Vec<(String, Vec<u64>)> = Vec::new();
    for atom in cq.atoms() {
        if deps.iter().any(|(n, _)| n == &atom.relation) {
            continue;
        }
        if let Some(e) = catalog.entry(&atom.relation) {
            deps.push((atom.relation.clone(), e.source_ids()));
        }
    }
    deps
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            map: FxHashMap::default(),
            base_terms: FxHashMap::default(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a prepared plan, refreshing its LRU position on a hit.
    fn get(&mut self, key: &CacheKey) -> Option<&CacheSlot> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            &*slot
        })
    }

    /// Look up without refreshing the LRU position — for speculative
    /// probes (the triangle batch/any-k normalization) that may not
    /// end up serving the entry.
    fn peek(&self, key: &CacheKey) -> Option<&CacheSlot> {
        self.map.get(key)
    }

    /// Refresh an entry's LRU position after a [`peek`](Self::peek)
    /// turned into an actual serve.
    fn touch(&mut self, key: &CacheKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(key) {
            slot.last_used = tick;
        }
    }

    /// Insert (or replace) an entry, then evict down to capacity —
    /// LRU materialized-answer entries first. The just-inserted entry
    /// is never its own victim (a hot materialized plan must be
    /// retainable even when every other resident is cheap), so a
    /// capacity ≥ 1 always caches the newest plan. A capacity of 0
    /// disables caching entirely.
    fn insert(
        &mut self,
        key: CacheKey,
        prepared: PreparedQuery,
        deps: Vec<(String, Vec<u64>)>,
        origin: (ConjunctiveQuery, RankSpec, EngineOpts),
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(
            key.clone(),
            CacheSlot {
                prepared,
                last_used: tick,
                deps,
                origin,
            },
        );
        self.evict_to_capacity(Some(&key));
    }

    /// A still-valid all-base term for `key`, if one was stashed by a
    /// previous delta-union prepare over the same base payloads.
    /// Deliberately *not* dropped by `invalidate_relation`:
    /// appends leave bases untouched, so
    /// the stale union's most expensive term outlives the union itself.
    fn base_term(&mut self, key: &CacheKey, epoch: u64, base_ids: &[u64]) -> Option<PreparedQuery> {
        self.tick += 1;
        let tick = self.tick;
        match self.base_terms.get_mut(key) {
            Some(slot) if slot.prepared.epoch() == epoch && slot.base_ids == base_ids => {
                slot.last_used = tick;
                Some(slot.prepared.clone())
            }
            _ => None,
        }
    }

    /// Stash a delta-union prepare's all-base term for reuse, evicting
    /// the coldest entries past `capacity`.
    fn store_base_term(&mut self, key: CacheKey, prepared: PreparedQuery, base_ids: Vec<u64>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.base_terms.insert(
            key,
            BaseTermSlot {
                prepared,
                base_ids,
                last_used: tick,
            },
        );
        while self.base_terms.len() > self.capacity {
            let Some(coldest) = self
                .base_terms
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.base_terms.remove(&coldest);
        }
    }

    /// Drop every entry whose dependency set includes `relation` —
    /// the relation-scoped invalidation behind [`Engine::append`].
    /// Returns each removed entry's prepare inputs so the write path
    /// can refresh it. These are invalidations, not capacity
    /// evictions, and do not count as such.
    fn invalidate_relation(
        &mut self,
        relation: &str,
    ) -> Vec<(ConjunctiveQuery, RankSpec, EngineOpts)> {
        let mut removed = Vec::new();
        self.map.retain(|_, slot| {
            let keep = !slot.deps.iter().any(|(name, _)| name == relation);
            if !keep {
                removed.push(slot.origin.clone());
            }
            keep
        });
        removed
    }

    /// Pick and remove victims until the map fits `capacity`.
    ///
    /// Within each round the most-recently-used candidate is also
    /// spared (a hot materialized plan must not be sacrificed to every
    /// cold insert just because it is the only heavy resident — the
    /// materialized-first preference only applies to entries that are
    /// not the current hottest), falling back to it only when it is
    /// the sole evictable entry.
    fn evict_to_capacity(&mut self, protect: Option<&CacheKey>) {
        while self.map.len() > self.capacity {
            let candidates = || self.map.iter().filter(|(k, _)| Some(*k) != protect);
            let mru = candidates().map(|(_, s)| s.last_used).max();
            let cold = || candidates().filter(|(_, s)| Some(s.last_used) != mru);
            let victim = cold()
                .filter(|(_, s)| s.prepared.holds_materialized_answers())
                .min_by_key(|(_, s)| s.last_used)
                .or_else(|| cold().min_by_key(|(_, s)| s.last_used))
                .or_else(|| candidates().min_by_key(|(_, s)| s.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            };
        }
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.evictions += self.map.len() as u64;
            self.map.clear();
        } else {
            self.evict_to_capacity(None);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[derive(Debug)]
struct CatalogState {
    catalog: Arc<Catalog>,
    epoch: u64,
}

/// Cache key for prepared plans. The `batch` flag is part of the key
/// because batch plans prepare a different artifact (materialized
/// sorted answers) than the any-k variants (T-DP state) — while all
/// PART successor orders and REC share one entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    sig: String,
    rank: RankSpec,
    batch: bool,
}

impl CacheKey {
    fn new(cq: &ConjunctiveQuery, rank: RankSpec, opts: EngineOpts) -> Self {
        CacheKey {
            sig: cq.to_string(),
            rank,
            batch: matches!(opts.variant, AnyKVariant::Batch),
        }
    }
}

// The serving contract: one engine / one prepared query, any number of
// threads. Enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<Relation>();
    assert_send_sync::<Catalog>();
};

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("epoch", &self.catalog_epoch())
            .field("cached_plans", &self.cached_plans())
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine over `catalog` with default options
    /// (ANYK-PART(Lazy), the paper's overall winner).
    pub fn new(catalog: Catalog) -> Self {
        Engine::with_opts(catalog, EngineOpts::default())
    }

    /// An engine with explicit execution options. Observability comes
    /// from the environment (`ANYK_OBS=off` disables recording); use
    /// [`with_obs`](Self::with_obs) to inject a registry — e.g. one on
    /// a deterministic clock — instead.
    pub fn with_opts(catalog: Catalog, opts: EngineOpts) -> Self {
        Engine::with_obs(catalog, opts, Arc::new(ObsRegistry::from_env()))
    }

    /// An engine with explicit options **and** an injected
    /// observability registry (clock, histograms, enable switch).
    pub fn with_obs(catalog: Catalog, opts: EngineOpts, obs: Arc<ObsRegistry>) -> Self {
        Engine {
            shared: Arc::new(EngineShared {
                catalog: RwLock::new(CatalogState {
                    catalog: Arc::new(catalog),
                    epoch: 0,
                }),
                cache: Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
                obs,
                writes: WriteCounters::default(),
            }),
            opts,
        }
    }

    /// This engine's observability registry (shared by all clones).
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.shared.obs
    }

    /// Set the plan-cache capacity (default
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`]): at most this many prepared
    /// plans are retained; inserts beyond it evict the least-recently-
    /// used entry, preferring entries that hold **materialized answer
    /// sets** (the triangle route and `Batch` plans — the heaviest
    /// residents). `0` disables caching. The capacity lives in the
    /// shared state, so it applies to every clone of this engine.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .set_capacity(capacity);
        self
    }

    /// The current plan-cache capacity.
    pub fn cache_capacity(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .capacity
    }

    /// Build an engine by registering `rels[i]` under the relation
    /// name of `q`'s atom `i` — the ergonomic path from the workload
    /// generators, whose instances carry positional relation lists.
    /// Self-joins (several atoms sharing a name) must bind the same
    /// relation at every occurrence.
    ///
    /// # Panics
    ///
    /// On the conditions [`try_from_query_bindings`](Self::try_from_query_bindings)
    /// reports as typed errors — convenience for tests and examples
    /// with known-good bindings; servers handling untrusted input
    /// should use the fallible form.
    pub fn from_query_bindings(q: &ConjunctiveQuery, rels: Vec<Relation>) -> Self {
        // LINT-ALLOW(no-panic-hot-path): documented panicking convenience; servers use try_from_query_bindings.
        Engine::try_from_query_bindings(q, rels).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`from_query_bindings`](Self::from_query_bindings):
    /// rejects a relation list whose length differs from the atom
    /// count, and atoms sharing a name but bound to different
    /// relations — either would silently run the query on the wrong
    /// data. The conflict check compares shared handles first
    /// (pointer equality), so rebinding the same `Arc`-backed relation
    /// is free.
    pub fn try_from_query_bindings(
        q: &ConjunctiveQuery,
        rels: Vec<Relation>,
    ) -> Result<Self, EngineError> {
        if q.num_atoms() != rels.len() {
            return Err(EngineError::BindingCountMismatch {
                atoms: q.num_atoms(),
                relations: rels.len(),
            });
        }
        let mut catalog = Catalog::new();
        for (atom, rel) in q.atoms().iter().zip(rels) {
            if let Some(prev) = catalog.get(&atom.relation) {
                if *prev != rel {
                    return Err(EngineError::ConflictingBindings {
                        relation: atom.relation.clone(),
                    });
                }
            }
            catalog.register(atom.relation.clone(), rel);
        }
        Ok(Engine::new(catalog))
    }

    /// A snapshot of the catalog (to resolve symbols, inspect
    /// relations). Cheap: an `Arc` clone, no relation data is copied.
    /// The snapshot is immutable; concurrent [`Engine::update_catalog`]
    /// calls produce *new* catalog versions without disturbing it.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.read_state().0
    }

    /// The current catalog epoch: bumped by every
    /// [`Engine::update_catalog`]. Prepared plans record the epoch they
    /// were built at; the internal cache serves an entry only while its
    /// epoch is current, so a stale plan can never be served.
    pub fn catalog_epoch(&self) -> u64 {
        self.read_state().1
    }

    /// Mutate the catalog (register, replace, or remove relations) and
    /// bump the epoch, invalidating every cached plan. This replaces
    /// the old `catalog_mut` accessor: mutation through a closure is
    /// the only write path, so the cache-epoch bump can never be
    /// forgotten. Copy-on-write: relation payloads shared with live
    /// snapshots or prepared queries are not copied — only the catalog
    /// map is.
    ///
    /// The closure runs while the catalog **write lock** is held, which
    /// serializes updates (no lost-update races between concurrent
    /// writers). Consequently the closure must not call back into this
    /// engine (`catalog()`, `plan()`, `register`, a nested
    /// `update_catalog`, …) — the lock is not reentrant and such a call
    /// would deadlock. Read what you need *before* updating; the
    /// closure receives the up-to-date catalog as its argument.
    pub fn update_catalog<F: FnOnce(&mut Catalog)>(&self, f: F) {
        {
            let mut st = self
                .shared
                .catalog
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            // Bump the epoch *before* running the closure: if `f`
            // panics mid-mutation, the poisoned state is recovered (see
            // the `unwrap_or_else` above), and the already-bumped epoch
            // guarantees no cached plan built against the old catalog
            // can ever be served against the half-updated one.
            st.epoch += 1;
            f(Arc::make_mut(&mut st.catalog));
        }
        // Outside the write lock: eagerly drop stale entries. Purely an
        // eviction — correctness comes from the epoch check on every
        // cache hit, so an entry inserted by a racing prepare between
        // the bump and this clear is merely unused memory, never served.
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Register (or replace) one relation — convenience wrapper over
    /// [`Engine::update_catalog`].
    pub fn register<S: Into<String>>(&self, name: S, rel: Relation) {
        let name = name.into();
        self.update_catalog(|c| c.register(name, rel));
    }

    /// Append one immutable batch to the named relation. `O(batch)`:
    /// the batch payload is adopted as a delta — the base payload, its
    /// shared trie indexes, and every cached plan over *other*
    /// relations stay untouched. Unlike [`Engine::update_catalog`]
    /// this does **not** bump the epoch: only cached plans that read
    /// `name` are invalidated (relation-scoped), so a streaming writer
    /// never recreates the cold-start cliff for the rest of the
    /// workload. Each invalidated plan is then refreshed on this call
    /// (re-prepared against base ⊎ deltas, reusing the stashed
    /// all-base term) so concurrent readers keep hitting the cache —
    /// the rebuild cost rides on the writer. Open streams keep their
    /// `Arc` snapshots — a mid-stream append is invisible to them
    /// (snapshot isolation).
    ///
    /// Once the relation's delta tail outgrows its base (past a floor,
    /// [`anyk_storage::MIN_COMPACT_ROWS`]), the deltas are folded into
    /// a fresh base payload automatically.
    ///
    /// Typed failures: unknown relation, batch arity mismatch, and the
    /// reserved `#` fragment namespace.
    pub fn append(&self, name: &str, batch: Relation) -> Result<(), EngineError> {
        if name.contains('#') {
            return Err(EngineError::ReservedRelationName {
                relation: name.to_string(),
            });
        }
        self.append_raw(name, batch)
    }

    /// [`Engine::append`] without the reserved-name guard — the
    /// internal path a [`ShardedEngine`] uses to maintain `{name}#frag`
    /// fragments. Fragment appends skip the write counters (they are
    /// shard bookkeeping, not logical writes).
    pub(crate) fn append_raw(&self, name: &str, batch: Relation) -> Result<(), EngineError> {
        use std::sync::atomic::Ordering::Relaxed;
        let rows = batch.len() as u64;
        let compacted = {
            let mut st = self
                .shared
                .catalog
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            // Copy-on-write on the catalog *map* only: snapshots taken
            // by concurrent readers keep every relation handle they
            // already resolved.
            let cat = Arc::make_mut(&mut st.catalog);
            cat.append(name, batch)?;
            let due = cat
                .entry(name)
                .is_some_and(anyk_storage::DeltaRelation::should_compact);
            if due {
                cat.compact(name)?;
            }
            due
        };
        // Outside the write lock: eagerly drop dependent plans. Purely
        // an eviction — correctness comes from the per-hit dependency
        // check, so an entry inserted by a racing prepare between the
        // append and this purge is merely unused memory, never served.
        let removed = self
            .shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .invalidate_relation(name);
        if !name.contains('#') {
            let w = &self.shared.writes;
            w.appends.fetch_add(1, Relaxed);
            w.appended_rows.fetch_add(rows, Relaxed);
            if compacted {
                w.compactions.fetch_add(1, Relaxed);
            }
            w.invalidated_plans.fetch_add(removed.len() as u64, Relaxed);
        }
        self.refresh_plans(removed);
        Ok(())
    }

    /// Re-prepare plans the write path just invalidated, so the next
    /// reader of each is a cache hit instead of paying the delta-union
    /// rebuild. The cost lands on the writer — with the stashed
    /// all-base term the rebuild is delta-sized, so a streaming writer
    /// keeps the read tail flat. A failing re-prepare is dropped
    /// silently: the next reader re-derives the same typed error.
    fn refresh_plans(&self, removed: Vec<(ConjunctiveQuery, RankSpec, EngineOpts)>) {
        for (cq, rank, opts) in removed {
            let _ = self.prepare_cached(&cq, rank, opts);
        }
    }

    /// Fold the named relation's pending deltas into a fresh base
    /// payload now, regardless of the automatic threshold. Returns
    /// whether a compaction actually ran (`false` when delta-free).
    /// Cached plans reading `name` are invalidated (their dependency
    /// fingerprint names the replaced payloads); everything else stays
    /// warm. Open streams keep serving their old snapshots.
    pub fn compact(&self, name: &str) -> Result<bool, EngineError> {
        use std::sync::atomic::Ordering::Relaxed;
        let compacted = {
            let mut st = self
                .shared
                .catalog
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            Arc::make_mut(&mut st.catalog).compact(name)?
        };
        if compacted {
            let removed = self
                .shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .invalidate_relation(name);
            if !name.contains('#') {
                let w = &self.shared.writes;
                w.compactions.fetch_add(1, Relaxed);
                w.invalidated_plans.fetch_add(removed.len() as u64, Relaxed);
            }
            self.refresh_plans(removed);
        }
        Ok(compacted)
    }

    /// A snapshot of the write-path counters: appends, appended rows,
    /// compactions, and relation-scoped plan invalidations. Cumulative
    /// over the engine's lifetime and shared by all clones.
    pub fn write_stats(&self) -> WriteStats {
        use std::sync::atomic::Ordering::Relaxed;
        let w = &self.shared.writes;
        WriteStats {
            appends: w.appends.load(Relaxed),
            appended_rows: w.appended_rows.load(Relaxed),
            compactions: w.compactions.load(Relaxed),
            invalidated_plans: w.invalidated_plans.load(Relaxed),
        }
    }

    /// Number of prepared plans currently cached (diagnostics).
    pub fn cached_plans(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// A snapshot of the plan-cache counters: hits, misses, capacity
    /// evictions, resident entries, and the configured capacity.
    /// Counters are cumulative over the engine's lifetime (shared by
    /// all clones) and are **not** reset by catalog updates — an epoch
    /// purge empties the cache but keeps the history.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self
            .shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            entries: cache.map.len(),
            capacity: cache.capacity,
        }
    }

    /// A snapshot of the shared index-catalog counters: trie lookups
    /// served resident (`hits`) vs built on demand (`misses`/`builds`),
    /// capacity `evictions`, and the resident byte footprint. The index
    /// catalog is owned by the [`Catalog`] and **survives epoch bumps**:
    /// [`Engine::update_catalog`] invalidates only the tries of
    /// relations actually replaced or removed, so a steady serving
    /// workload keeps its indexes warm across unrelated catalog updates.
    pub fn index_stats(&self) -> IndexStats {
        self.read_state().0.indexes().stats()
    }

    /// Start planning `cq`. Returns a request builder; nothing
    /// executes until [`QueryRequest::plan`] /
    /// [`QueryRequest::prepare`].
    pub fn query(&self, cq: ConjunctiveQuery) -> QueryRequest<'_> {
        QueryRequest {
            engine: self,
            cq,
            rank: RankSpec::default(),
            opts: self.opts,
        }
    }

    /// Route and preprocess `cq` under `rank` exactly once, returning a
    /// shareable [`PreparedQuery`]. This is the prepare-once/
    /// execute-many serving path: `prepare` pays the full `O~(n^w)`
    /// preprocessing; every [`PreparedQuery::stream`] afterwards costs
    /// only the per-answer delay side. Results also land in the
    /// engine's plan cache, so subsequent ad-hoc
    /// [`plan`](QueryRequest::plan) calls for the same query hit it.
    pub fn prepare(
        &self,
        cq: ConjunctiveQuery,
        rank: RankSpec,
    ) -> Result<PreparedQuery, EngineError> {
        self.query(cq).rank_by(rank).prepare()
    }

    fn read_state(&self) -> (Arc<Catalog>, u64) {
        let st = self
            .shared
            .catalog
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&st.catalog), st.epoch)
    }

    /// [`prepare_cached`](Self::prepare_cached) plus provenance: did
    /// the plan cache serve it, and how long did prepare take on the
    /// engine's clock? The wall time also lands in the registry's
    /// prepare histogram (zero-cost when recording is disabled).
    pub(crate) fn prepare_cached_report(
        &self,
        cq: &ConjunctiveQuery,
        rank: RankSpec,
        opts: EngineOpts,
    ) -> Result<(PreparedQuery, PrepareReport), EngineError> {
        let obs = &self.shared.obs;
        let enabled = obs.enabled();
        let t0 = if enabled { obs.now_us() } else { 0 };
        let (prepared, cache_hit) = self.prepare_cached(cq, rank, opts)?;
        let prepare_us = if enabled {
            let us = obs.now_us().saturating_sub(t0);
            obs.record_prepare(us);
            us
        } else {
            0
        };
        Ok((
            prepared,
            PrepareReport {
                cache_hit,
                prepare_us,
            },
        ))
    }

    /// Get-or-build the prepared query for `(cq, rank, opts)` through
    /// the cache (`true` = served from it). Concurrent misses may
    /// prepare twice (last insert wins) — wasted work, never wrong
    /// results.
    fn prepare_cached(
        &self,
        cq: &ConjunctiveQuery,
        rank: RankSpec,
        opts: EngineOpts,
    ) -> Result<(PreparedQuery, bool), EngineError> {
        let mut key = CacheKey::new(cq, rank, opts);
        let (catalog, epoch) = self.read_state();
        {
            let mut cache = self
                .shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // A hit must pass both freshness gates: the epoch (schema
            // changes via `update_catalog`) and the per-relation
            // dependency fingerprint (appends/compactions, which do not
            // bump the epoch).
            if let Some(slot) = cache.get(&key) {
                if slot.prepared.epoch() == epoch && deps_current(&catalog, &slot.deps) {
                    let served = slot.prepared.adopt_variant(opts.variant);
                    cache.hits += 1;
                    return Ok((served, true));
                }
            }
            // Single-artifact plans (`variant == None`: the triangle
            // route, and cyclic routes under a non-commutative
            // ranking) build the same materialized artifact whether or
            // not Batch was requested, and are stored under
            // `batch: false` — accept that entry for a Batch request
            // rather than materializing a duplicate. Peek first: the
            // probe must not refresh the entry's LRU position unless
            // it is actually served.
            if key.batch {
                let alt = CacheKey {
                    batch: false,
                    ..key.clone()
                };
                if let Some(slot) = cache.peek(&alt) {
                    if slot.prepared.epoch() == epoch
                        && slot.prepared.plan().variant.is_none()
                        && deps_current(&catalog, &slot.deps)
                    {
                        let served = slot.prepared.adopt_variant(opts.variant);
                        cache.touch(&alt);
                        cache.hits += 1;
                        return Ok((served, true));
                    }
                }
            }
            cache.misses += 1;
        }
        let live = resolve_live(&catalog, cq)?;
        let fulls: Vec<Relation> = live.iter().map(|a| a.full.clone()).collect();
        let delta_atoms = live.iter().filter(|a| a.delta.is_some()).count();
        let mut plan = make_plan(cq, rank, opts, &fulls, catalog.indexes())?;
        plan.deltas = delta_atoms;
        if plan.variant.is_none() {
            // Normalize: one cache entry serves Batch and any-k alike.
            key.batch = false;
        }
        let prepared = if delta_atoms == 0 {
            // Delta-free: `fulls` share the base payloads, so this is
            // exactly the classic single-stream prepare — warm shared
            // tries included.
            PreparedQuery::build(plan, fulls, key.batch, epoch, &**catalog.indexes())?
        } else {
            // Delta union, telescoped so the terms partition the full
            // cross product of (base ⊎ deltas) per atom:
            //   term 0:          (B_1, …, B_m)            — all bases
            //   term for atom i: (F_1, …, F_{i-1}, D_i, B_{i+1}, …, B_m)
            // where F = base ⊎ deltas and D_i = atom i's delta rows.
            // Disjoint and complete by telescoping, and positional — a
            // self-join's occurrences telescope independently. Delta
            // terms route index requests through [`DurableOnly`]: base
            // payloads (and delta-free fulls, which alias their base)
            // are append-stable, so their tries come from the shared
            // catalog — a re-prepare after an append then costs only
            // the delta-sized private builds, not a rebuild of every
            // base trie. Delta and flattened payloads change on every
            // append and stay private.
            let bases: Vec<Relation> = live.iter().map(|a| a.base.clone()).collect();
            // Delta-free fulls alias their base payload, so base ids
            // cover every append-stable relation a term can mention.
            let durable: Vec<u64> = live.iter().map(|a| a.base.payload_id()).collect();
            // The all-base term is by far the heaviest build and is
            // untouched by appends — reuse the one stashed by the
            // previous prepare of this key whenever the bases (and
            // epoch) still match, so successive appends pay only for
            // the delta-sized terms.
            let stashed = self
                .shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .base_term(&key, epoch, &durable);
            let mut terms = Vec::with_capacity(delta_atoms + 1);
            terms.push(match stashed {
                Some(term) => term,
                None => PreparedQuery::build(
                    plan.clone(),
                    bases.clone(),
                    key.batch,
                    epoch,
                    &**catalog.indexes(),
                )?,
            });
            let provider = DurableOnly {
                shared: &**catalog.indexes(),
                durable: durable.clone(),
            };
            for (i, atom) in live.iter().enumerate() {
                let Some(delta) = &atom.delta else { continue };
                let rels: Vec<Relation> = live
                    .iter()
                    .enumerate()
                    .map(|(j, a)| match j.cmp(&i) {
                        std::cmp::Ordering::Less => a.full.clone(),
                        std::cmp::Ordering::Equal => delta.clone(),
                        std::cmp::Ordering::Greater => a.base.clone(),
                    })
                    .collect();
                terms.push(PreparedQuery::build(
                    plan.clone(),
                    rels,
                    key.batch,
                    epoch,
                    &provider,
                )?);
            }
            let base_term = terms[0].clone();
            let union = PreparedQuery::union(plan, terms, epoch);
            self.shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .store_base_term(key.clone(), base_term, durable);
            union
        };
        let deps = query_deps(&catalog, cq);
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, prepared.clone(), deps, (cq.clone(), rank, opts));
        Ok((prepared, false))
    }
}

/// Provenance of one prepare: cache outcome and wall time (on the
/// engine's injected clock; 0 when recording is disabled). Index
/// provenance is on the resulting plan ([`Plan::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepareReport {
    /// Served from the plan cache (epoch-valid entry).
    pub cache_hit: bool,
    /// Wall time of the prepare, µs.
    pub prepare_us: u64,
}

/// An [`IndexProvider`] for delta-union terms: requests over the
/// append-stable payloads in `durable` (bases — immutable until a
/// compaction swaps the payload out) are delegated to the shared
/// catalog, everything else (delta batches, flattened base ⊎ delta
/// payloads) gets a private ephemeral build. This keeps the cost of a
/// post-append re-prepare proportional to the *delta*, while the
/// short-lived payloads never pollute the shared catalog.
struct DurableOnly<'a> {
    shared: &'a dyn IndexProvider,
    durable: Vec<u64>,
}

impl IndexProvider for DurableOnly<'_> {
    fn trie(&self, rel: &Relation, positions: &[usize]) -> Arc<anyk_storage::Trie> {
        if self.durable.contains(&rel.payload_id()) {
            self.shared.trie(rel, positions)
        } else {
            anyk_storage::BuildEachTime.trie(rel, positions)
        }
    }

    fn probe(&self, rel: &Relation, positions: &[usize]) -> bool {
        self.durable.contains(&rel.payload_id()) && self.shared.probe(rel, positions)
    }
}

/// One atom's relation resolved against the live catalog entry: the
/// base payload, the flattened full content (base ⊎ deltas — shares
/// the base payload when delta-free), and the concatenated delta rows
/// when any exist. All three are `Arc`-backed handles.
struct ResolvedAtom {
    base: Relation,
    full: Relation,
    delta: Option<Relation>,
}

/// Resolve each atom against the live (delta-aware) catalog entries:
/// per atom, the base, the flattened full content, and the pending
/// delta rows (if any), with typed arity/existence errors. On a
/// delta-free catalog every `full` shares its base payload — each
/// entry is a refcount bump, never a tuple copy.
fn resolve_live(
    catalog: &Catalog,
    cq: &ConjunctiveQuery,
) -> Result<Vec<ResolvedAtom>, EngineError> {
    if cq.num_atoms() == 0 {
        return Err(EngineError::EmptyQuery);
    }
    let mut atoms = Vec::with_capacity(cq.num_atoms());
    for (i, atom) in cq.atoms().iter().enumerate() {
        let entry = catalog.entry(&atom.relation).ok_or_else(|| {
            EngineError::Storage(anyk_storage::StorageError::RelationNotFound {
                name: atom.relation.clone(),
            })
        })?;
        let base = entry.base();
        if base.arity() != atom.vars.len() {
            return Err(EngineError::ArityMismatch {
                atom: i,
                relation: atom.relation.clone(),
                expected: atom.vars.len(),
                found: base.arity(),
            });
        }
        let delta = entry.has_deltas().then(|| Relation::concat(entry.deltas()));
        atoms.push(ResolvedAtom {
            base: base.clone(),
            full: entry.flatten(),
            delta,
        });
    }
    Ok(atoms)
}

/// Route the query. Relations are needed for the 4-cycle's heavy
/// threshold (≈ √n) and for probing `indexes` (are the shared tries
/// this route will request already catalog-resident?).
fn make_plan(
    cq: &ConjunctiveQuery,
    rank: RankSpec,
    opts: EngineOpts,
    rels: &[Relation],
    indexes: &IndexCatalog,
) -> Result<Plan, EngineError> {
    let route = match gyo_reduce(cq) {
        GyoResult::Acyclic(tree) => Route::Acyclic { tree },
        GyoResult::Cyclic(_) => match cycle_length(cq) {
            Some(3) => Route::Triangle,
            Some(4) => {
                let n = rels.iter().map(Relation::len).max().unwrap_or(0);
                Route::FourCycle {
                    threshold: heavy_threshold(n),
                }
            }
            _ => Route::Decomposed {
                decomp: auto_decomposition(cq),
            },
        },
    };
    let width = match &route {
        Route::Acyclic { .. } => 1.0,
        Route::Triangle => cycle_submodular_width(3),
        Route::FourCycle { .. } => cycle_submodular_width(4),
        Route::Decomposed { decomp } => decomp.width,
    };
    // Record the *effective* variant so `explain` never reports a
    // variant that does not run: the triangle plan has a single
    // implementation (worst-case-optimal materialization + deferred
    // sort) that no variant choice affects, and so does any cyclic
    // route under a non-commutative ranking — the per-case/bag any-k
    // plans serialize atoms in per-case orders, so e.g. lexicographic
    // ranking runs off the materialized answers with weights
    // serialized in canonical atom order instead. Batch is honored on
    // every other route — cyclic routes materialize
    // worst-case-optimally.
    let variant = match &route {
        Route::Triangle => None,
        Route::FourCycle { .. } | Route::Decomposed { .. } if !rank.is_commutative() => None,
        _ => Some(opts.variant),
    };
    let index = index_use(cq, &route, rank, opts, rels, indexes);
    Ok(Plan {
        query: cq.clone(),
        route,
        rank,
        variant,
        width,
        index,
        // The caller (prepare/explain) overwrites this from the live
        // catalog entries; `make_plan` itself only sees flattened data.
        deltas: 0,
    })
}

/// Probe the index catalog for the shared tries `route`'s prepare will
/// request, without building anything: [`IndexUse::Cached`] iff every
/// unconditional request is already resident. The request listings
/// mirror what the route's prepare actually does — the canonical
/// triangle join, the 4-cycle case split (or its worst-case-optimal
/// materialization under Batch / a non-commutative ranking, which
/// cannot drive the case plans), and the GHD per-bag cover joins.
/// Acyclic plans never consult the catalog (T-DP builds its own
/// per-node structures): [`IndexUse::NotApplicable`].
fn index_use(
    cq: &ConjunctiveQuery,
    route: &Route,
    rank: RankSpec,
    opts: EngineOpts,
    rels: &[Relation],
    indexes: &IndexCatalog,
) -> IndexUse {
    use anyk_storage::IndexProvider as _;
    let wco = matches!(opts.variant, AnyKVariant::Batch) || !rank.is_commutative();
    let requests: Vec<(usize, Vec<usize>)> = match route {
        Route::Acyclic { .. } => return IndexUse::NotApplicable,
        Route::Triangle => generic_join_trie_requests(&triangle_query(), None),
        Route::FourCycle { .. } if wco => generic_join_trie_requests(cq, None),
        Route::FourCycle { .. } => c4_trie_requests(),
        Route::Decomposed { .. } if wco => generic_join_trie_requests(cq, None),
        Route::Decomposed { decomp } => ghd_trie_requests(cq, decomp),
    };
    if requests
        .iter()
        .all(|(a, positions)| indexes.probe(&rels[*a], positions))
    {
        IndexUse::Cached
    } else {
        IndexUse::Built
    }
}

/// A query being configured: `engine.query(cq).rank_by(...).plan()?`.
pub struct QueryRequest<'e> {
    engine: &'e Engine,
    cq: ConjunctiveQuery,
    rank: RankSpec,
    opts: EngineOpts,
}

impl QueryRequest<'_> {
    /// Choose the ranking function (default: [`RankSpec::Sum`]).
    pub fn rank_by(mut self, rank: RankSpec) -> Self {
        self.rank = rank;
        self
    }

    /// Override execution options for this query only.
    pub fn with_opts(mut self, opts: EngineOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Override just the any-k variant for this query.
    pub fn with_variant(mut self, variant: AnyKVariant) -> Self {
        self.opts.variant = variant;
        self
    }

    /// Plan without executing: resolve relations, route, and return
    /// the [`Plan`] for inspection (`plan.explain()`). No relation
    /// data is copied.
    pub fn explain(&self) -> Result<Plan, EngineError> {
        let catalog = self.engine.catalog();
        let live = resolve_live(&catalog, &self.cq)?;
        let fulls: Vec<Relation> = live.iter().map(|a| a.full.clone()).collect();
        let mut plan = make_plan(&self.cq, self.rank, self.opts, &fulls, catalog.indexes())?;
        plan.deltas = live.iter().filter(|a| a.delta.is_some()).count();
        Ok(plan)
    }

    /// Route and preprocess once, returning the shareable
    /// [`PreparedQuery`] (see [`Engine::prepare`]).
    pub fn prepare(self) -> Result<PreparedQuery, EngineError> {
        Ok(self
            .engine
            .prepare_cached(&self.cq, self.rank, self.opts)?
            .0)
    }

    /// [`prepare`](Self::prepare) plus provenance — cache outcome and
    /// prepare wall time ([`PrepareReport`]).
    pub fn prepare_report(self) -> Result<(PreparedQuery, PrepareReport), EngineError> {
        self.engine
            .prepare_cached_report(&self.cq, self.rank, self.opts)
    }

    /// Plan **and** prepare: returns a ranked stream. Backed by the
    /// engine's plan cache — the first call for a (query, ranking)
    /// pays preprocessing (full reducer, T-DP, case materialization);
    /// repeated calls reuse the shared prepared state and pay only the
    /// per-answer delay side. Enumeration is lazy either way.
    pub fn plan(self) -> Result<RankedStream, EngineError> {
        Ok(self.plan_report()?.0)
    }

    /// [`plan`](Self::plan) plus prepare provenance. The returned
    /// stream carries the engine's per-pull delay sampler (every Nth
    /// pull, to bound overhead) when recording is enabled.
    pub fn plan_report(self) -> Result<(RankedStream, PrepareReport), EngineError> {
        let obs = Arc::clone(self.engine.obs());
        let (prepared, report) = self
            .engine
            .prepare_cached_report(&self.cq, self.rank, self.opts)?;
        let stream = prepared.stream();
        let stream = if obs.enabled() {
            stream.sampled(obs)
        } else {
            stream
        };
        Ok((stream, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::succorder::SuccessorKind;
    use anyk_query::cq::{cycle_query, path_query, triangle_query, QueryBuilder};
    use anyk_storage::{RelationBuilder, Schema, StorageError};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn path_engine() -> (Engine, ConjunctiveQuery) {
        let q = path_query(2);
        let r1 = edge_rel(&[(1, 10, 0.3), (2, 10, 0.1), (3, 30, 0.2)]);
        let r2 = edge_rel(&[(10, 100, 0.5), (10, 200, 0.05)]);
        (Engine::from_query_bindings(&q, vec![r1, r2]), q)
    }

    #[test]
    fn acyclic_routes_and_orders() {
        let (engine, q) = path_engine();
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "acyclic");
        assert!((plan.width - 1.0).abs() < 1e-12);

        let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
        let all = stream.next_batch(100);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        // Cheapest: (2,10,200) = 0.1 + 0.05.
        assert_eq!(all[0].ints(), vec![2, 10, 200]);
    }

    #[test]
    fn unknown_relation_is_typed() {
        let (engine, _) = path_engine();
        let q = QueryBuilder::new().atom("Nope", &["a", "b"]).build();
        let err = engine.query(q).plan().unwrap_err();
        assert_eq!(
            err,
            EngineError::Storage(StorageError::RelationNotFound {
                name: "Nope".into()
            })
        );
    }

    #[test]
    fn arity_mismatch_is_typed() {
        let (engine, _) = path_engine();
        let q = QueryBuilder::new().atom("R1", &["a", "b", "c"]).build();
        let err = engine.query(q).plan().unwrap_err();
        assert!(matches!(
            err,
            EngineError::ArityMismatch {
                atom: 0,
                expected: 3,
                found: 2,
                ..
            }
        ));
    }

    #[test]
    fn triangle_routes_to_wco() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
        assert_eq!(stream.plan().route.label(), "triangle");
        let top = stream.top_k(10);
        assert_eq!(top.len(), 3, "3 rotations of the single triangle");
        for a in &top {
            assert_eq!(a.cost.scalar(), Some(1.75));
        }
    }

    #[test]
    fn four_cycle_routes_to_union_of_trees() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)]);
        let q = cycle_query(4);
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone(), e]);
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "four-cycle");
        assert!((plan.width - 1.5).abs() < 1e-12);
        let answers: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(answers.len(), 4, "4 rotations of the single cycle");
        assert!(answers.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn six_cycle_routes_to_decomposition() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 5, 0.125),
            (5, 6, 2.0),
            (6, 1, 0.0625),
        ]);
        let q = cycle_query(6);
        let engine = Engine::from_query_bindings(
            &q,
            vec![e.clone(), e.clone(), e.clone(), e.clone(), e.clone(), e],
        );
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "decomposed");
        assert!(plan.width > 1.0);
        let answers: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(answers.len(), 6);
    }

    #[test]
    fn lex_on_cyclic_runs_off_materialized_answers() {
        // Two triangles with distinct edge weights: lex order is
        // decided by the first atom's weight (canonical atom order).
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (4, 5, 0.125),
            (5, 6, 8.0),
            (6, 4, 2.0),
        ]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let plan = engine
            .query(q.clone())
            .rank_by(RankSpec::Lex)
            .explain()
            .unwrap();
        assert_eq!(
            plan.variant, None,
            "lex on a cyclic route has a single (materialized) implementation"
        );
        let all: Vec<_> = engine
            .query(q)
            .rank_by(RankSpec::Lex)
            .plan()
            .unwrap()
            .collect();
        assert_eq!(all.len(), 6, "3 rotations of each triangle");
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        // The best answer starts with the lightest first-atom weight.
        assert_eq!(
            all[0].cost.lex().map(|v| v[0].get()),
            Some(0.125),
            "canonical atom order: the first atom's weight leads"
        );
    }

    #[test]
    fn lex_on_cyclic_shares_one_cache_entry_with_batch() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)]);
        let q = cycle_query(4);
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone(), e]);
        let anyk: Vec<_> = engine
            .query(q.clone())
            .rank_by(RankSpec::Lex)
            .plan()
            .unwrap()
            .collect();
        assert_eq!(engine.cached_plans(), 1);
        let batch: Vec<_> = engine
            .query(q)
            .rank_by(RankSpec::Lex)
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap()
            .collect();
        assert_eq!(engine.cached_plans(), 1, "no duplicate lex-cyclic artifact");
        assert_eq!(anyk, batch);
    }

    #[test]
    fn lex_on_acyclic_works() {
        let (engine, q) = path_engine();
        let mut stream = engine.query(q).rank_by(RankSpec::Lex).plan().unwrap();
        let all = stream.next_batch(10);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(
            all[0].cost.lex().map(<[anyk_storage::Weight]>::len),
            Some(2)
        );
    }

    #[test]
    fn variants_agree_on_acyclic() {
        let (engine, q) = path_engine();
        let base: Vec<Vec<i64>> = engine
            .query(q.clone())
            .plan()
            .unwrap()
            .map(|a| a.ints())
            .collect();
        for variant in [
            AnyKVariant::Part(SuccessorKind::Eager),
            AnyKVariant::Rec,
            AnyKVariant::Batch,
        ] {
            let got: Vec<Vec<i64>> = engine
                .query(q.clone())
                .with_variant(variant)
                .plan()
                .unwrap()
                .map(|a| a.ints())
                .collect();
            assert_eq!(got, base, "{variant:?}");
        }
    }

    #[test]
    fn runtime_rank_switch_changes_order() {
        let q = path_query(2);
        let r1 = edge_rel(&[(1, 10, 0.9), (2, 10, 0.1)]);
        let r2 = edge_rel(&[(10, 100, 0.5)]);
        let engine = Engine::from_query_bindings(&q, vec![r1, r2]);
        // Sum: (2,10,100) = 0.6 beats (1,10,100) = 1.4.
        let sum_first = engine
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(sum_first.ints(), vec![2, 10, 100]);
        // Min (ascending by best edge): (2,10,100) has min 0.1.
        let min_first = engine
            .query(q.clone())
            .rank_by(RankSpec::Min)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(min_first.ints(), vec![2, 10, 100]);
        assert_eq!(min_first.cost.scalar(), Some(0.1));
        // Max (bottleneck): 0.5 vs 0.9.
        let max_first = engine
            .query(q)
            .rank_by(RankSpec::Max)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(max_first.ints(), vec![2, 10, 100]);
        assert_eq!(max_first.cost.scalar(), Some(0.5));
    }

    #[test]
    fn plan_reports_effective_variant() {
        // Triangle: no variant applies, even when one was requested.
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone()]);
        let plan = engine
            .query(q)
            .with_variant(AnyKVariant::Rec)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, None);
        assert!(plan.explain().contains("variant = n/a"), "{plan}");

        // Cyclic + Batch: the materialize-then-sort baseline is wired
        // on cyclic routes, so the requested variant is honored.
        let q4 = cycle_query(4);
        let engine =
            Engine::from_query_bindings(&q4, vec![e.clone(), e.clone(), e.clone(), e.clone()]);
        let plan = engine
            .query(q4.clone())
            .with_variant(AnyKVariant::Batch)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, Some(AnyKVariant::Batch));

        // Cyclic + Rec is honored and reported as such.
        let plan = engine
            .query(q4)
            .with_variant(AnyKVariant::Rec)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, Some(AnyKVariant::Rec));
    }

    #[test]
    fn batch_variant_agrees_on_cyclic_routes() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (3, 4, 0.125),
            (4, 1, 2.0),
            (2, 1, 4.0),
            (1, 3, 8.0),
        ]);
        for (label, q, m) in [
            ("triangle", triangle_query(), 3usize),
            ("c4", cycle_query(4), 4),
            ("c5", cycle_query(5), 5),
        ] {
            let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
            let engine = Engine::from_query_bindings(&q, rels);
            let anyk: Vec<f64> = engine
                .query(q.clone())
                .plan()
                .unwrap()
                .map(|a| a.cost.scalar().unwrap())
                .collect();
            let batch: Vec<f64> = engine
                .query(q.clone())
                .with_variant(AnyKVariant::Batch)
                .plan()
                .unwrap()
                .map(|a| a.cost.scalar().unwrap())
                .collect();
            assert_eq!(anyk, batch, "{label}: batch vs any-k cost sequence");
        }
    }

    #[test]
    fn binding_errors_are_typed() {
        let e = edge_rel(&[(1, 2, 0.5)]);
        let q = triangle_query();
        let err = Engine::try_from_query_bindings(&q, vec![e.clone(), e.clone()]).unwrap_err();
        assert_eq!(
            err,
            EngineError::BindingCountMismatch {
                atoms: 3,
                relations: 2
            }
        );

        // Two atoms named E bound to different relations.
        let q2 = QueryBuilder::new()
            .atom("E", &["a", "b"])
            .atom("E", &["b", "c"])
            .build();
        let other = edge_rel(&[(9, 9, 9.0)]);
        let err = Engine::try_from_query_bindings(&q2, vec![e.clone(), other]).unwrap_err();
        assert_eq!(
            err,
            EngineError::ConflictingBindings {
                relation: "E".into()
            }
        );

        // Identical relations under a shared name are a valid self-join.
        assert!(Engine::try_from_query_bindings(&q2, vec![e.clone(), e]).is_ok());
    }

    #[test]
    fn plan_explain_renders() {
        let (engine, q) = path_engine();
        let plan = engine.query(q).explain().unwrap();
        let text = plan.explain();
        assert!(text.contains("route = acyclic"), "{text}");
        assert!(text.contains("join on"), "{text}");
    }

    #[test]
    fn prepare_then_stream_matches_plan() {
        let (engine, q) = path_engine();
        let ad_hoc: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        let prepared = engine.prepare(q, RankSpec::Sum).unwrap();
        for _ in 0..3 {
            let again: Vec<_> = prepared.stream().collect();
            assert_eq!(again, ad_hoc, "each prepared stream replays the answers");
        }
    }

    #[test]
    fn plan_cache_hits_and_epoch_invalidation() {
        let (engine, q) = path_engine();
        assert_eq!(engine.cached_plans(), 0);
        let first: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 1);
        // Same query + rank: served from cache (still one entry).
        let second: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(first, second);
        // Different rank: new entry.
        let _ = engine.query(q.clone()).rank_by(RankSpec::Max).plan();
        assert_eq!(engine.cached_plans(), 2);

        // Catalog update: epoch bumps, cache is invalidated, and the
        // next plan sees the new data.
        let epoch0 = engine.catalog_epoch();
        engine.register("R2", edge_rel(&[(10, 999, 0.0)]));
        assert_eq!(engine.catalog_epoch(), epoch0 + 1);
        assert_eq!(engine.cached_plans(), 0);
        let fresh: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(fresh.len(), 2, "one R2 row joins both R1 rows on b=10");
        assert!(fresh.iter().all(|a| a.ints()[2] == 999));
    }

    #[test]
    fn prepared_query_is_a_snapshot() {
        let (engine, q) = path_engine();
        let prepared = engine.prepare(q.clone(), RankSpec::Sum).unwrap();
        let before: Vec<_> = prepared.stream().collect();
        // Replace a relation after preparing: the prepared query keeps
        // serving its snapshot, while new plans see the update.
        engine.register("R2", edge_rel(&[(10, 999, 0.0)]));
        let after: Vec<_> = prepared.stream().collect();
        assert_eq!(before, after, "prepared state is immutable");
        let fresh: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_ne!(before, fresh);
    }

    #[test]
    fn cache_shares_artifact_across_part_and_rec() {
        let (engine, q) = path_engine();
        let part: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 1);
        // Rec reuses the cached T-DP artifact (no new entry), only the
        // stream-time enumerator differs.
        let rec: Vec<Vec<i64>> = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Rec)
            .plan()
            .unwrap()
            .map(|a| a.ints())
            .collect();
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(part.iter().map(|a| a.ints()).collect::<Vec<_>>(), rec);
        // Batch prepares a different artifact: second entry.
        let _ = engine
            .query(q)
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        assert_eq!(engine.cached_plans(), 2);
    }

    #[test]
    fn triangle_cache_entry_serves_batch_and_anyk_alike() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        // Any-k first, Batch second: the normalized entry is reused.
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone()]);
        let anyk: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 1);
        let batch: Vec<_> = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap()
            .collect();
        assert_eq!(engine.cached_plans(), 1, "no duplicate triangle artifact");
        assert_eq!(anyk, batch);
        // Batch first, any-k second: same normalization.
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let _ = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        assert_eq!(engine.cached_plans(), 1);
        let _ = engine.query(q).plan().unwrap();
        assert_eq!(engine.cached_plans(), 1, "no duplicate triangle artifact");
    }

    #[test]
    fn plan_cache_evicts_lru_materialized_entry_first() {
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(2);
        assert_eq!(engine.cache_capacity(), 2);

        // Two materialized (Batch) entries: Sum then Max.
        let _ = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        let _ = engine
            .query(q.clone())
            .rank_by(RankSpec::Max)
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        assert_eq!(engine.cached_plans(), 2);

        // Touch the Sum entry: the Max entry becomes the LRU
        // materialized resident.
        let _ = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        assert_eq!(engine.cached_plans(), 2);

        // A third shape (T-DP, not materialized) exceeds capacity: the
        // LRU *materialized* entry (Max/Batch) must be evicted — not
        // the overall-LRU policy victim.
        let _ = engine.query(q.clone()).plan().unwrap();
        assert_eq!(engine.cached_plans(), 2);
        {
            let cache = engine.shared.cache.lock().unwrap();
            assert!(
                cache
                    .map
                    .keys()
                    .any(|k| !k.batch && k.rank == RankSpec::Sum),
                "the fresh T-DP entry stays"
            );
            assert!(
                cache.map.keys().any(|k| k.batch && k.rank == RankSpec::Sum),
                "the recently-used materialized entry stays"
            );
            assert!(
                !cache.map.keys().any(|k| k.rank == RankSpec::Max),
                "the LRU materialized entry is evicted first"
            );
        }

        // Epoch bump still purges everything at once.
        engine.register("R9", edge_rel(&[(1, 2, 0.0)]));
        assert_eq!(engine.cached_plans(), 0);
    }

    #[test]
    fn fresh_materialized_insert_is_not_its_own_victim() {
        // A hot materialized plan arriving into a cache full of cheap
        // T-DP entries must displace one of *them* — evicting the entry
        // just inserted would make every repeat of the hot query re-run
        // its full materialization.
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(2);
        for rank in [RankSpec::Sum, RankSpec::Max] {
            let _ = engine.query(q.clone()).rank_by(rank).plan().unwrap();
        }
        let _ = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        assert_eq!(engine.cached_plans(), 2);
        let cache = engine.shared.cache.lock().unwrap();
        assert!(
            cache.map.keys().any(|k| k.batch),
            "the just-inserted materialized entry is retained"
        );
        assert!(
            !cache
                .map
                .keys()
                .any(|k| !k.batch && k.rank == RankSpec::Sum),
            "the overall-LRU non-materialized entry goes instead"
        );
    }

    #[test]
    fn hot_materialized_entry_survives_cold_inserts() {
        // A materialized plan that keeps getting served must not be
        // sacrificed to every cold insert merely for being the only
        // heavy resident — materialized-first eviction only applies to
        // entries that are not the current most-recently-used.
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(2);
        let _ = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        let _ = engine.query(q.clone()).plan().unwrap(); // cold T-DP Sum
        for rank in [RankSpec::Max, RankSpec::Min, RankSpec::Prod] {
            // Keep the materialized entry hot, then push a cold shape.
            let _ = engine
                .query(q.clone())
                .with_variant(AnyKVariant::Batch)
                .plan()
                .unwrap();
            let _ = engine.query(q.clone()).rank_by(rank).plan().unwrap();
            let cache = engine.shared.cache.lock().unwrap();
            assert!(
                cache.map.keys().any(|k| k.batch),
                "hot materialized entry evicted by a cold {rank} insert"
            );
        }
        // Once it goes cold (not used while others churn), it is the
        // first to go again.
        let _ = engine
            .query(q.clone())
            .rank_by(RankSpec::Max)
            .plan()
            .unwrap();
        let _ = engine
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .unwrap();
        let cache = engine.shared.cache.lock().unwrap();
        assert!(
            !cache.map.keys().any(|k| k.batch),
            "a cold materialized entry is evicted first again"
        );
    }

    #[test]
    fn plan_cache_plain_lru_without_materialized_entries() {
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(2);
        // Three T-DP entries in insertion order Sum, Max, Min: with no
        // materialized residents, the overall LRU (Sum) goes.
        for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Min] {
            let _ = engine.query(q.clone()).rank_by(rank).plan().unwrap();
        }
        assert_eq!(engine.cached_plans(), 2);
        let cache = engine.shared.cache.lock().unwrap();
        assert!(!cache.map.keys().any(|k| k.rank == RankSpec::Sum));
        assert!(cache.map.keys().any(|k| k.rank == RankSpec::Max));
        assert!(cache.map.keys().any(|k| k.rank == RankSpec::Min));
    }

    #[test]
    fn plan_cache_capacity_zero_disables_caching() {
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(0);
        let a: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 0, "nothing is retained");
        let b: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(engine.cached_plans(), 0);
        assert_eq!(a, b, "uncached planning still answers identically");
    }

    #[test]
    fn shrinking_cache_capacity_evicts_immediately() {
        let (engine, q) = path_engine();
        for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Min] {
            let _ = engine.query(q.clone()).rank_by(rank).plan().unwrap();
        }
        assert_eq!(engine.cached_plans(), 3);
        let engine = engine.with_cache_capacity(1);
        assert_eq!(engine.cached_plans(), 1, "set_capacity trims eagerly");
    }

    #[test]
    fn cache_stats_count_hits_misses_and_entries() {
        let (engine, q) = path_engine();
        assert_eq!(engine.cache_stats(), CacheStats::default_with(&engine));

        // First plan: a miss; second: a hit; a new rank: another miss.
        let _ = engine.query(q.clone()).plan().unwrap();
        let _ = engine.query(q.clone()).plan().unwrap();
        let _ = engine
            .query(q.clone())
            .rank_by(RankSpec::Max)
            .plan()
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);

        // The triangle batch/any-k normalization's peek-serve is a hit.
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let tq = triangle_query();
        let tri = Engine::from_query_bindings(&tq, vec![e.clone(), e.clone(), e]);
        let _ = tri.query(tq.clone()).plan().unwrap();
        let _ = tri
            .query(tq)
            .with_variant(AnyKVariant::Batch)
            .plan()
            .unwrap();
        let stats = tri.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // Epoch purge empties the cache but keeps the counters.
        engine.register("R9", edge_rel(&[(1, 2, 0.0)]));
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!((stats.hits, stats.misses), (1, 2));
        // A stale-epoch-free lookup after the purge is a plain miss.
        let _ = engine.query(q).plan().unwrap();
        assert_eq!(engine.cache_stats().misses, 3);
    }

    impl CacheStats {
        /// The all-zero baseline at an engine's configured capacity.
        fn default_with(engine: &Engine) -> CacheStats {
            CacheStats {
                capacity: engine.cache_capacity(),
                ..CacheStats::default()
            }
        }
    }

    #[test]
    fn cache_stats_count_capacity_evictions() {
        let (engine, q) = path_engine();
        let engine = engine.with_cache_capacity(2);
        for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Min, RankSpec::Prod] {
            let _ = engine.query(q.clone()).rank_by(rank).plan().unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2, "four inserts into capacity 2");
        assert_eq!(stats.misses, 4);
        // Shrinking the capacity evicts (and counts) immediately.
        let engine = engine.with_cache_capacity(1);
        assert_eq!(engine.cache_stats().evictions, 3);
        assert_eq!(engine.cache_stats().capacity, 1);
        // Disabling the cache counts the purged residents too.
        let engine = engine.with_cache_capacity(0);
        assert_eq!(engine.cache_stats().evictions, 4);
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn engine_clones_share_cache_and_catalog() {
        let (engine, q) = path_engine();
        let clone = engine.clone();
        let _ = engine.query(q.clone()).plan().unwrap();
        assert_eq!(clone.cached_plans(), 1, "clones see the same cache");
        clone.register("X", edge_rel(&[(1, 2, 0.0)]));
        assert_eq!(engine.catalog_epoch(), 1, "clones see the same catalog");
        assert!(engine.catalog().get("X").is_some());
    }

    #[test]
    fn resolution_hands_out_shared_handles() {
        let (engine, q) = path_engine();
        let catalog = engine.catalog();
        let live = resolve_live(&catalog, &q).unwrap();
        for (atom, resolved) in q.atoms().iter().zip(&live) {
            assert!(
                resolved
                    .full
                    .shares_payload(catalog.get(&atom.relation).unwrap()),
                "delta-free resolution must be a refcount bump, not a copy"
            );
            assert!(resolved.delta.is_none());
        }
    }

    /// A single edge relation rich enough to host triangles, 4-cycles,
    /// and 6-cycles with distinct weights.
    fn dense_edges() -> Relation {
        edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 4.0),
            (1, 4, 0.75),
            (4, 1, 0.375),
            (4, 5, 1.5),
            (5, 4, 0.0625),
            (5, 1, 3.0),
            (2, 4, 0.8125),
            (4, 2, 1.25),
        ])
    }

    #[test]
    fn warm_index_catalog_makes_prepare_a_lookup() {
        let e = dense_edges();
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        assert_eq!(engine.index_stats().builds, 0);
        let first = engine.prepare(q.clone(), RankSpec::Sum).unwrap();
        let builds = engine.index_stats().builds;
        // One shared payload, two trie orders ([0,1] and [1,0]).
        assert_eq!(builds, 2);
        // A second engine over the same catalog has a *cold plan cache*
        // but a *warm index catalog*: prepare does zero trie builds.
        let cold_cache = Engine::new((*engine.catalog()).clone());
        assert_eq!(cold_cache.cached_plans(), 0);
        let second = cold_cache.prepare(q, RankSpec::Sum).unwrap();
        let stats = cold_cache.index_stats();
        assert_eq!(stats.builds, builds, "second prepare is pure index lookup");
        assert!(stats.hits >= 2, "both tries served resident");
        assert_eq!(first.stream().top_k(100), second.stream().top_k(100));
    }

    #[test]
    fn explain_reports_index_cached_after_warmup() {
        let e = dense_edges();
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let before = engine.query(q.clone()).explain().unwrap();
        assert_eq!(before.index, IndexUse::Built);
        assert!(before.explain().contains("index = built"), "{before}");
        engine.prepare(q.clone(), RankSpec::Sum).unwrap();
        let after = engine.query(q.clone()).explain().unwrap();
        assert_eq!(after.index, IndexUse::Cached);
        assert!(after.explain().contains("index = cached"), "{after}");
        // Acyclic plans never consult the shared index catalog.
        let (acyclic, pq) = path_engine();
        let plan = acyclic.query(pq).explain().unwrap();
        assert_eq!(plan.index, IndexUse::NotApplicable);
        assert!(plan.explain().contains("index = n/a"), "{plan}");
    }

    #[test]
    fn concurrent_prepares_build_each_index_once() {
        let e = dense_edges();
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        // Fresh engines (separate plan caches) over one shared catalog:
        // only the index catalog can deduplicate the build work.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let eng = Engine::new((*engine.catalog()).clone());
                let q = q.clone();
                std::thread::spawn(move || {
                    eng.prepare(q, RankSpec::Sum).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            engine.index_stats().builds,
            2,
            "each distinct trie order built exactly once across threads"
        );
    }

    #[test]
    fn catalog_update_keeps_unrelated_indexes_warm() {
        let e = dense_edges();
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let baseline: Vec<_> = engine
            .prepare(q.clone(), RankSpec::Sum)
            .unwrap()
            .stream()
            .collect();
        let builds = engine.index_stats().builds;
        // An unrelated registration bumps the epoch (plan cache purged)
        // but must not touch the triangle's resident tries.
        engine.register("Unrelated", edge_rel(&[(7, 8, 0.0)]));
        assert_eq!(engine.cached_plans(), 0, "epoch bump purges the plan cache");
        let warm: Vec<_> = engine
            .prepare(q.clone(), RankSpec::Sum)
            .unwrap()
            .stream()
            .collect();
        assert_eq!(
            engine.index_stats().builds,
            builds,
            "re-prepare after an unrelated update is an index lookup"
        );
        assert_eq!(baseline, warm);
        // Replacing a participating relation invalidates its payload's
        // tries; the next prepare rebuilds against the new data.
        engine.register("R1", dense_edges());
        engine.prepare(q, RankSpec::Sum).unwrap();
        assert!(
            engine.index_stats().builds > builds,
            "replaced relation forces fresh builds"
        );
    }

    #[test]
    fn shared_indexes_preserve_answers_across_routes_and_rankings() {
        let e = dense_edges();
        for (label, q, n) in [
            ("triangle", triangle_query(), 3),
            ("four-cycle", cycle_query(4), 4),
            ("six-cycle", cycle_query(6), 6),
        ] {
            let rels: Vec<Relation> = (0..n).map(|_| e.clone()).collect();
            let warm = Engine::from_query_bindings(&q, rels.clone());
            // Warm every trie the routes request, then serve each
            // ranking from a fresh plan cache over the warm catalog.
            warm.prepare(q.clone(), RankSpec::Sum).unwrap();
            let warm = Engine::new((*warm.catalog()).clone());
            for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Lex] {
                let cold = Engine::from_query_bindings(&q, rels.clone());
                let want: Vec<_> = cold.prepare(q.clone(), rank).unwrap().stream().collect();
                let got: Vec<_> = warm.prepare(q.clone(), rank).unwrap().stream().collect();
                assert!(!want.is_empty(), "{label}/{rank}: no answers");
                assert_eq!(want, got, "{label}/{rank}: warm-index answers diverge");
            }
        }
    }

    #[test]
    fn append_is_typed_and_counted() {
        let (engine, _) = path_engine();
        let err = engine.append("Nope", edge_rel(&[(1, 2, 0.0)])).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Storage(StorageError::RelationNotFound { .. })
        ));
        let mut bad = RelationBuilder::new(Schema::new(["a", "b", "c"]));
        bad.push_ints(&[1, 2, 3], 0.0);
        let err = engine.append("R1", bad.finish()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Storage(StorageError::ArityMismatch { .. })
        ));
        let err = engine
            .append("R1#frag", edge_rel(&[(1, 2, 0.0)]))
            .unwrap_err();
        assert!(matches!(err, EngineError::ReservedRelationName { .. }));
        assert_eq!(engine.write_stats(), WriteStats::default());

        engine.append("R1", edge_rel(&[(9, 10, 0.7)])).unwrap();
        engine.append("R1", edge_rel(&[(8, 10, 0.9)])).unwrap();
        let w = engine.write_stats();
        assert_eq!(w.appends, 2);
        assert_eq!(w.appended_rows, 2);
        assert_eq!(w.compactions, 0);
    }

    #[test]
    fn append_invalidates_only_dependent_plans() {
        let (engine, q) = path_engine();
        // Plan A reads R1 and R2; plan B reads only R2.
        let _ = engine.query(q.clone()).plan().unwrap();
        let q_b = QueryBuilder::new().atom("R2", &["b", "c"]).build();
        let _ = engine.query(q_b.clone()).plan().unwrap();
        assert_eq!(engine.cached_plans(), 2);
        assert_eq!(engine.catalog_epoch(), 0);

        engine.append("R1", edge_rel(&[(9, 10, 0.7)])).unwrap();
        assert_eq!(engine.catalog_epoch(), 0, "appends never bump the epoch");
        assert_eq!(
            engine.cached_plans(),
            2,
            "the dependent plan is invalidated, then refreshed in place by the write path"
        );
        assert_eq!(engine.write_stats().invalidated_plans, 1);
        let (_, report) = engine
            .query(q_b)
            .rank_by(RankSpec::Sum)
            .prepare_report()
            .unwrap();
        assert!(report.cache_hit, "the untouched plan stays served");
        let (prepared, report) = engine
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .prepare_report()
            .unwrap();
        assert!(
            report.cache_hit,
            "the write path refreshed the dependent plan — the reader never misses"
        );
        assert_eq!(
            prepared.plan().deltas,
            1,
            "the refreshed entry is the delta-aware union, not the stale base plan"
        );
    }

    #[test]
    fn appended_rows_join_the_answers() {
        let (engine, q) = path_engine();
        assert_eq!(engine.query(q.clone()).plan().unwrap().count(), 4);
        // New R1 row joining R2's b=10 rows adds two answers; the plan
        // now unions one delta term in.
        engine.append("R1", edge_rel(&[(7, 10, 0.01)])).unwrap();
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.deltas, 1);
        assert!(plan.explain().contains("deltas = 1"), "{plan}");
        let all: Vec<_> = engine.query(q.clone()).plan().unwrap().collect();
        assert_eq!(all.len(), 6);
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(all[0].ints(), vec![7, 10, 200], "cheapest is the new row");

        // The flattened content served through the delta union equals a
        // fresh single-payload engine over the same rows.
        let flat = Engine::new(engine.catalog().flattened());
        let want: Vec<_> = flat.query(q.clone()).plan().unwrap().collect();
        assert_eq!(all, want);

        // Compaction folds the deltas; answers are unchanged.
        assert!(engine.compact("R1").unwrap());
        assert!(!engine.compact("R1").unwrap(), "second compact is a no-op");
        assert_eq!(engine.query(q.clone()).explain().unwrap().deltas, 0);
        let after: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(after, want);
        assert_eq!(engine.write_stats().compactions, 1);
    }

    #[test]
    fn open_streams_are_snapshot_isolated() {
        let (engine, q) = path_engine();
        let mut stream = engine.query(q.clone()).plan().unwrap();
        let first = stream.next_batch(1);
        engine.append("R1", edge_rel(&[(7, 10, 0.01)])).unwrap();
        let rest = stream.next_batch(100);
        assert_eq!(
            first.len() + rest.len(),
            4,
            "a mid-stream append is invisible to the open stream"
        );
        assert_eq!(engine.query(q).plan().unwrap().count(), 6);
    }

    #[test]
    fn delta_heavy_relation_auto_compacts() {
        let (engine, q) = path_engine();
        // R1 has 3 base rows; the floor dominates, so it takes
        // MIN_COMPACT_ROWS appended rows to trigger auto-compaction.
        let rows_needed = anyk_storage::MIN_COMPACT_ROWS;
        let mut appended = 0usize;
        while appended < rows_needed {
            engine
                .append("R1", edge_rel(&[(900 + appended as i64, 1, 5.0)]))
                .unwrap();
            appended += 1;
        }
        let w = engine.write_stats();
        assert_eq!(w.appends as usize, appended);
        assert_eq!(w.compactions, 1, "threshold crossing compacts exactly once");
        assert!(
            engine
                .catalog()
                .entry("R1")
                .is_some_and(|e| !e.has_deltas()),
            "deltas folded into the base"
        );
        assert_eq!(engine.query(q).plan().unwrap().count(), 4);
    }
}
