//! # anyk-engine — the unified entry point for ranked enumeration
//!
//! The paper's central promise (*Optimal Join Algorithms Meet Top-k*,
//! SIGMOD 2020) is a single contract: **answers arrive in ranking
//! order, any `k`, with optimal time-to-k**. This crate is that
//! contract as an API. Callers describe *what* they want — a
//! conjunctive query over a catalog, ranked by a runtime-chosen
//! function — and the planner decides *how*: GYO + T-DP for acyclic
//! queries, the specialized union-of-trees plans for triangles and
//! 4-cycles, GHD decompositions for everything else.
//!
//! ```
//! use anyk_engine::{Engine, RankSpec};
//! use anyk_query::cq::QueryBuilder;
//! use anyk_storage::{Catalog, RelationBuilder, Schema};
//!
//! let mut catalog = Catalog::new();
//! let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
//! r.push_ints(&[1, 10], 0.3);
//! r.push_ints(&[2, 10], 0.1);
//! catalog.register("R", r.finish());
//! let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
//! s.push_ints(&[10, 100], 0.5);
//! catalog.register("S", s.finish());
//!
//! let engine = Engine::new(catalog);
//! let q = QueryBuilder::new()
//!     .atom("R", &["a", "b"])
//!     .atom("S", &["b", "c"])
//!     .build();
//! let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
//! let top2 = stream.top_k(2);
//! assert_eq!(top2.len(), 2);
//! assert!(top2[0].cost <= top2[1].cost);
//! ```

mod error;
mod plan;
mod rank;
mod stream;

pub use error::EngineError;
pub use plan::{AnyKVariant, EngineOpts, Plan, Route};
pub use rank::{Cost, IntoCost, RankSpec};
pub use stream::{RankedAnswer, RankedStream};

use anyk_core::batch::BatchSorted;
use anyk_core::cyclic::{triangle_ranked, try_c4_ranked_part, try_c4_ranked_rec};
use anyk_core::decomposed::{
    auto_decomposition, try_decomposed_ranked_part, try_decomposed_ranked_rec,
};
use anyk_core::part::AnyKPart;
use anyk_core::ranking::{LexCost, MaxCost, MinCost, ProdCost, RankingFunction, SumCost};
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_query::cq::ConjunctiveQuery;
use anyk_query::cycles::{cycle_length, cycle_submodular_width, heavy_threshold};
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_storage::{Catalog, Relation};

/// The unified, planner-routed engine for ranked enumeration.
///
/// # Which engine runs when (the routing table)
///
/// | query shape | route | algorithm | preprocessing | delay |
/// |---|---|---|---|---|
/// | α-acyclic (GYO succeeds) | [`Route::Acyclic`] | T-DP + ANYK-PART / ANYK-REC / batch | `O~(n)` | `O~(1)` |
/// | triangle `R(a,b)⋈S(b,c)⋈T(c,a)` | [`Route::Triangle`] | Generic-Join materialization + lazy heap | `O~(n^1.5)` | `O(log r)` |
/// | 4-cycle | [`Route::FourCycle`] | submodular-width union-of-trees, k-way merge | `O~(n^1.5)` | `O~(1)` |
/// | any other cyclic query | [`Route::Decomposed`] | GHD bags (exact fhw ≤ 9 vars, greedy beyond) + any-k | `O~(n^fhw)` | `O~(1)` |
///
/// The ranking function is a runtime value ([`RankSpec`]); the engine
/// monomorphizes internally. Lexicographic ranking is order-sensitive
/// and therefore only valid on the acyclic route — requesting it on a
/// cyclic query is a typed [`EngineError::UnsupportedRanking`], not a
/// wrong answer.
///
/// All failure modes are typed ([`EngineError`]): unknown relations,
/// arity mismatches, unsupported rankings. The planner never panics
/// on user input.
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    opts: EngineOpts,
}

impl Engine {
    /// An engine over `catalog` with default options
    /// (ANYK-PART(Lazy), the paper's overall winner).
    pub fn new(catalog: Catalog) -> Self {
        Engine {
            catalog,
            opts: EngineOpts::default(),
        }
    }

    /// An engine with explicit execution options.
    pub fn with_opts(catalog: Catalog, opts: EngineOpts) -> Self {
        Engine { catalog, opts }
    }

    /// Build an engine by registering `rels[i]` under the relation
    /// name of `q`'s atom `i` — the ergonomic path from the workload
    /// generators, whose instances carry positional relation lists.
    /// Self-joins (several atoms sharing a name) must bind the same
    /// relation at every occurrence.
    ///
    /// # Panics
    ///
    /// On the conditions [`try_from_query_bindings`](Self::try_from_query_bindings)
    /// reports as typed errors — convenience for tests and examples
    /// with known-good bindings; servers handling untrusted input
    /// should use the fallible form.
    pub fn from_query_bindings(q: &ConjunctiveQuery, rels: Vec<Relation>) -> Self {
        Engine::try_from_query_bindings(q, rels).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`from_query_bindings`](Self::from_query_bindings):
    /// rejects a relation list whose length differs from the atom
    /// count, and atoms sharing a name but bound to different
    /// relations — either would silently run the query on the wrong
    /// data. The conflict check is a full comparison, but runs only
    /// when names collide and is strictly cheaper than the join that
    /// would otherwise produce wrong answers.
    pub fn try_from_query_bindings(
        q: &ConjunctiveQuery,
        rels: Vec<Relation>,
    ) -> Result<Self, EngineError> {
        if q.num_atoms() != rels.len() {
            return Err(EngineError::BindingCountMismatch {
                atoms: q.num_atoms(),
                relations: rels.len(),
            });
        }
        let mut catalog = Catalog::new();
        for (atom, rel) in q.atoms().iter().zip(rels) {
            if let Some(prev) = catalog.get(&atom.relation) {
                if *prev != rel {
                    return Err(EngineError::ConflictingBindings {
                        relation: atom.relation.clone(),
                    });
                }
            }
            catalog.register(atom.relation.clone(), rel);
        }
        Ok(Engine::new(catalog))
    }

    /// The catalog (to resolve symbols, inspect relations).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (to register or replace relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Start planning `cq`. Returns a request builder; nothing
    /// executes until [`QueryRequest::plan`].
    pub fn query(&self, cq: ConjunctiveQuery) -> QueryRequest<'_> {
        QueryRequest {
            engine: self,
            cq,
            rank: RankSpec::default(),
            opts: self.opts,
        }
    }

    /// Resolve each atom's relation from the catalog by reference,
    /// checking arity. Borrowed so that planning (`explain`) never
    /// copies relation data; execution clones exactly once.
    fn resolve<'a>(&'a self, cq: &ConjunctiveQuery) -> Result<Vec<&'a Relation>, EngineError> {
        if cq.num_atoms() == 0 {
            return Err(EngineError::EmptyQuery);
        }
        let mut rels = Vec::with_capacity(cq.num_atoms());
        for (i, atom) in cq.atoms().iter().enumerate() {
            let rel = self.catalog.lookup(&atom.relation)?;
            if rel.arity() != atom.vars.len() {
                return Err(EngineError::ArityMismatch {
                    atom: i,
                    relation: atom.relation.clone(),
                    expected: atom.vars.len(),
                    found: rel.arity(),
                });
            }
            rels.push(rel);
        }
        Ok(rels)
    }
}

/// A query being configured: `engine.query(cq).rank_by(...).plan()?`.
pub struct QueryRequest<'e> {
    engine: &'e Engine,
    cq: ConjunctiveQuery,
    rank: RankSpec,
    opts: EngineOpts,
}

impl QueryRequest<'_> {
    /// Choose the ranking function (default: [`RankSpec::Sum`]).
    pub fn rank_by(mut self, rank: RankSpec) -> Self {
        self.rank = rank;
        self
    }

    /// Override execution options for this query only.
    pub fn with_opts(mut self, opts: EngineOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Override just the any-k variant for this query.
    pub fn with_variant(mut self, variant: AnyKVariant) -> Self {
        self.opts.variant = variant;
        self
    }

    /// Plan without executing: resolve relations, route, and return
    /// the [`Plan`] for inspection (`plan.explain()`). No relation
    /// data is copied.
    pub fn explain(&self) -> Result<Plan, EngineError> {
        let rels = self.engine.resolve(&self.cq)?;
        self.make_plan(&rels)
    }

    /// Plan **and** prepare: returns the ranked stream (which still
    /// carries its [`Plan`]). Preprocessing (full reducer, T-DP,
    /// case materialization) happens here; enumeration is lazy.
    pub fn plan(self) -> Result<RankedStream, EngineError> {
        let refs = self.engine.resolve(&self.cq)?;
        let plan = self.make_plan(&refs)?;
        // The one unavoidable copy: the enumerators reduce relations
        // in place (full reducer) or consume them, so execution works
        // on an owned snapshot of the catalog's relations.
        let rels: Vec<Relation> = refs.into_iter().cloned().collect();
        execute(plan, rels)
    }

    /// Route the query. Relations are needed only for the 4-cycle's
    /// heavy threshold (≈ √n).
    fn make_plan(&self, rels: &[&Relation]) -> Result<Plan, EngineError> {
        let route = match gyo_reduce(&self.cq) {
            GyoResult::Acyclic(tree) => Route::Acyclic { tree },
            GyoResult::Cyclic(_) => match cycle_length(&self.cq) {
                Some(3) => Route::Triangle,
                Some(4) => {
                    let n = rels.iter().map(|r| r.len()).max().unwrap_or(0);
                    Route::FourCycle {
                        threshold: heavy_threshold(n),
                    }
                }
                _ => Route::Decomposed {
                    decomp: auto_decomposition(&self.cq),
                },
            },
        };
        if !matches!(route, Route::Acyclic { .. }) && !self.rank.is_commutative() {
            return Err(EngineError::UnsupportedRanking {
                rank: self.rank,
                why: "cyclic routes serialize atoms in per-case orders; \
                      the ranking must be commutative",
            });
        }
        let width = match &route {
            Route::Acyclic { .. } => 1.0,
            Route::Triangle => cycle_submodular_width(3),
            Route::FourCycle { .. } => cycle_submodular_width(4),
            Route::Decomposed { decomp } => decomp.width,
        };
        // Record the *effective* variant so `explain` never reports a
        // variant that does not run: the triangle plan has a single
        // implementation (no variant applies), and cyclic routes have
        // no batch baseline (Batch falls back to PART(Lazy) there).
        let variant = match &route {
            Route::Triangle => None,
            Route::Acyclic { .. } => Some(self.opts.variant),
            _ => Some(match self.opts.variant {
                AnyKVariant::Batch => AnyKVariant::default(),
                v => v,
            }),
        };
        Ok(Plan {
            query: self.cq.clone(),
            route,
            rank: self.rank,
            variant,
            width,
        })
    }
}

/// Monomorphize on the runtime [`RankSpec`] and build the stream.
fn execute(plan: Plan, rels: Vec<Relation>) -> Result<RankedStream, EngineError> {
    let inner = match plan.rank {
        RankSpec::Sum => build::<SumCost>(&plan, rels)?,
        RankSpec::Max => build::<MaxCost>(&plan, rels)?,
        RankSpec::Min => build::<MinCost>(&plan, rels)?,
        RankSpec::Prod => build::<ProdCost>(&plan, rels)?,
        RankSpec::Lex => build::<LexCost>(&plan, rels)?,
    };
    Ok(RankedStream { inner, plan })
}

/// Erase a concrete any-k iterator into the engine's answer type.
fn erase<C, I>(it: I) -> Box<dyn Iterator<Item = RankedAnswer>>
where
    C: IntoCost,
    I: Iterator<Item = anyk_core::answer::RankedAnswer<C>> + 'static,
{
    Box::new(it.map(|a| RankedAnswer {
        cost: a.cost.into_cost(),
        values: a.values,
    }))
}

/// Build the route's iterator under a concrete ranking function `R`.
fn build<R>(
    plan: &Plan,
    rels: Vec<Relation>,
) -> Result<Box<dyn Iterator<Item = RankedAnswer>>, EngineError>
where
    R: RankingFunction,
    R::Cost: IntoCost,
{
    // Cyclic routes have no batch baseline wired in; Batch falls back
    // to the default PART(Lazy) (documented on `AnyKVariant::Batch`).
    let part_kind = |variant: AnyKVariant| match variant {
        AnyKVariant::Part(kind) => kind,
        _ => SuccessorKind::Lazy,
    };
    let variant = plan.variant.unwrap_or_default();
    match &plan.route {
        Route::Acyclic { tree } => match variant {
            AnyKVariant::Batch => Ok(erase(BatchSorted::<R>::new(&plan.query, tree, rels))),
            AnyKVariant::Rec => {
                let inst = TdpInstance::<R>::prepare(&plan.query, tree, rels)?;
                Ok(erase(AnyKRec::new(inst)))
            }
            AnyKVariant::Part(kind) => {
                let inst = TdpInstance::<R>::prepare(&plan.query, tree, rels)?;
                Ok(erase(AnyKPart::new(inst, kind)))
            }
        },
        Route::Triangle => Ok(erase(triangle_ranked::<R>(&rels))),
        Route::FourCycle { threshold } => match variant {
            AnyKVariant::Rec => Ok(erase(try_c4_ranked_rec::<R>(&rels, *threshold)?)),
            v => Ok(erase(try_c4_ranked_part::<R>(
                &rels,
                *threshold,
                part_kind(v),
            )?)),
        },
        Route::Decomposed { decomp } => match variant {
            AnyKVariant::Rec => Ok(erase(try_decomposed_ranked_rec::<R>(
                &plan.query,
                &rels,
                decomp,
            )?)),
            v => Ok(erase(try_decomposed_ranked_part::<R>(
                &plan.query,
                &rels,
                decomp,
                part_kind(v),
            )?)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{cycle_query, path_query, triangle_query, QueryBuilder};
    use anyk_storage::{RelationBuilder, Schema, StorageError};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn path_engine() -> (Engine, ConjunctiveQuery) {
        let q = path_query(2);
        let r1 = edge_rel(&[(1, 10, 0.3), (2, 10, 0.1), (3, 30, 0.2)]);
        let r2 = edge_rel(&[(10, 100, 0.5), (10, 200, 0.05)]);
        (Engine::from_query_bindings(&q, vec![r1, r2]), q)
    }

    #[test]
    fn acyclic_routes_and_orders() {
        let (engine, q) = path_engine();
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "acyclic");
        assert!((plan.width - 1.0).abs() < 1e-12);

        let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
        let all = stream.next_batch(100);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        // Cheapest: (2,10,200) = 0.1 + 0.05.
        assert_eq!(all[0].ints(), vec![2, 10, 200]);
    }

    #[test]
    fn unknown_relation_is_typed() {
        let (engine, _) = path_engine();
        let q = QueryBuilder::new().atom("Nope", &["a", "b"]).build();
        let err = engine.query(q).plan().unwrap_err();
        assert_eq!(
            err,
            EngineError::Storage(StorageError::RelationNotFound {
                name: "Nope".into()
            })
        );
    }

    #[test]
    fn arity_mismatch_is_typed() {
        let (engine, _) = path_engine();
        let q = QueryBuilder::new().atom("R1", &["a", "b", "c"]).build();
        let err = engine.query(q).plan().unwrap_err();
        assert!(matches!(
            err,
            EngineError::ArityMismatch {
                atom: 0,
                expected: 3,
                found: 2,
                ..
            }
        ));
    }

    #[test]
    fn triangle_routes_to_wco() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan().unwrap();
        assert_eq!(stream.plan().route.label(), "triangle");
        let top = stream.top_k(10);
        assert_eq!(top.len(), 3, "3 rotations of the single triangle");
        for a in &top {
            assert_eq!(a.cost.scalar(), Some(1.75));
        }
    }

    #[test]
    fn four_cycle_routes_to_union_of_trees() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 4, 0.25), (4, 1, 2.0)]);
        let q = cycle_query(4);
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone(), e]);
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "four-cycle");
        assert!((plan.width - 1.5).abs() < 1e-12);
        let answers: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(answers.len(), 4, "4 rotations of the single cycle");
        assert!(answers.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn six_cycle_routes_to_decomposition() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 5, 0.125),
            (5, 6, 2.0),
            (6, 1, 0.0625),
        ]);
        let q = cycle_query(6);
        let engine = Engine::from_query_bindings(
            &q,
            vec![e.clone(), e.clone(), e.clone(), e.clone(), e.clone(), e],
        );
        let plan = engine.query(q.clone()).explain().unwrap();
        assert_eq!(plan.route.label(), "decomposed");
        assert!(plan.width > 1.0);
        let answers: Vec<_> = engine.query(q).plan().unwrap().collect();
        assert_eq!(answers.len(), 6);
    }

    #[test]
    fn lex_on_cyclic_is_rejected() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
        let err = engine.query(q).rank_by(RankSpec::Lex).plan().unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnsupportedRanking {
                rank: RankSpec::Lex,
                ..
            }
        ));
    }

    #[test]
    fn lex_on_acyclic_works() {
        let (engine, q) = path_engine();
        let mut stream = engine.query(q).rank_by(RankSpec::Lex).plan().unwrap();
        let all = stream.next_batch(10);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(
            all[0].cost.lex().map(<[anyk_storage::Weight]>::len),
            Some(2)
        );
    }

    #[test]
    fn variants_agree_on_acyclic() {
        let (engine, q) = path_engine();
        let base: Vec<Vec<i64>> = engine
            .query(q.clone())
            .plan()
            .unwrap()
            .map(|a| a.ints())
            .collect();
        for variant in [
            AnyKVariant::Part(SuccessorKind::Eager),
            AnyKVariant::Rec,
            AnyKVariant::Batch,
        ] {
            let got: Vec<Vec<i64>> = engine
                .query(q.clone())
                .with_variant(variant)
                .plan()
                .unwrap()
                .map(|a| a.ints())
                .collect();
            assert_eq!(got, base, "{variant:?}");
        }
    }

    #[test]
    fn runtime_rank_switch_changes_order() {
        let q = path_query(2);
        let r1 = edge_rel(&[(1, 10, 0.9), (2, 10, 0.1)]);
        let r2 = edge_rel(&[(10, 100, 0.5)]);
        let engine = Engine::from_query_bindings(&q, vec![r1, r2]);
        // Sum: (2,10,100) = 0.6 beats (1,10,100) = 1.4.
        let sum_first = engine
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(sum_first.ints(), vec![2, 10, 100]);
        // Min (ascending by best edge): (2,10,100) has min 0.1.
        let min_first = engine
            .query(q.clone())
            .rank_by(RankSpec::Min)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(min_first.ints(), vec![2, 10, 100]);
        assert_eq!(min_first.cost.scalar(), Some(0.1));
        // Max (bottleneck): 0.5 vs 0.9.
        let max_first = engine
            .query(q)
            .rank_by(RankSpec::Max)
            .plan()
            .unwrap()
            .next()
            .unwrap();
        assert_eq!(max_first.ints(), vec![2, 10, 100]);
        assert_eq!(max_first.cost.scalar(), Some(0.5));
    }

    #[test]
    fn plan_reports_effective_variant() {
        // Triangle: no variant applies, even when one was requested.
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25)]);
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e.clone()]);
        let plan = engine
            .query(q)
            .with_variant(AnyKVariant::Rec)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, None);
        assert!(plan.explain().contains("variant = n/a"), "{plan}");

        // Cyclic + Batch: the fallback that actually runs is recorded.
        let q4 = cycle_query(4);
        let engine =
            Engine::from_query_bindings(&q4, vec![e.clone(), e.clone(), e.clone(), e.clone()]);
        let plan = engine
            .query(q4.clone())
            .with_variant(AnyKVariant::Batch)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, Some(AnyKVariant::Part(SuccessorKind::Lazy)));

        // Cyclic + Rec is honored and reported as such.
        let plan = engine
            .query(q4)
            .with_variant(AnyKVariant::Rec)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, Some(AnyKVariant::Rec));
    }

    #[test]
    fn binding_errors_are_typed() {
        let e = edge_rel(&[(1, 2, 0.5)]);
        let q = triangle_query();
        let err = Engine::try_from_query_bindings(&q, vec![e.clone(), e.clone()]).unwrap_err();
        assert_eq!(
            err,
            EngineError::BindingCountMismatch {
                atoms: 3,
                relations: 2
            }
        );

        // Two atoms named E bound to different relations.
        let q2 = QueryBuilder::new()
            .atom("E", &["a", "b"])
            .atom("E", &["b", "c"])
            .build();
        let other = edge_rel(&[(9, 9, 9.0)]);
        let err = Engine::try_from_query_bindings(&q2, vec![e.clone(), other]).unwrap_err();
        assert_eq!(
            err,
            EngineError::ConflictingBindings {
                relation: "E".into()
            }
        );

        // Identical relations under a shared name are a valid self-join.
        assert!(Engine::try_from_query_bindings(&q2, vec![e.clone(), e]).is_ok());
    }

    #[test]
    fn plan_explain_renders() {
        let (engine, q) = path_engine();
        let plan = engine.query(q).explain().unwrap();
        let text = plan.explain();
        assert!(text.contains("route = acyclic"), "{text}");
        assert!(text.contains("join on"), "{text}");
    }
}
