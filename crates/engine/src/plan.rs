//! Plans: what the planner decided and why.
//!
//! A [`Plan`] is produced before any enumeration work happens. It
//! records the chosen [`Route`] (which algorithm family runs), the
//! relevant width, and renders through `anyk_query::explain` so a
//! caller can log or inspect the decision.

use crate::rank::RankSpec;
use anyk_core::succorder::SuccessorKind;
use anyk_query::cq::ConjunctiveQuery;
use anyk_query::decompose::Decomposition;
use anyk_query::explain::{explain_decomposition, explain_join_tree};
use anyk_query::join_tree::JoinTree;
use std::fmt;

/// Which any-k machinery drives enumeration on a per-tree basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyKVariant {
    /// ANYK-PART (Lawler–Murty partitioning) with a successor order.
    /// `Part(Lazy)` is the paper's overall winner and the default.
    Part(SuccessorKind),
    /// ANYK-REC (recursive enumeration, memoized suffix streams).
    Rec,
    /// Materialize-then-sort baseline: Yannakakis + sort on acyclic
    /// routes, worst-case-optimal (Generic-Join) materialization + sort
    /// on cyclic routes. Useful for oracle comparisons and as the
    /// TTF-vs-TT(last) counterpoint in experiments.
    Batch,
}

impl Default for AnyKVariant {
    /// ANYK-PART with the Lazy successor order — the paper's overall
    /// winner (E11).
    fn default() -> Self {
        AnyKVariant::Part(SuccessorKind::Lazy)
    }
}

/// Engine-level execution options, all runtime-switchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOpts {
    /// Which any-k variant drives each tree of the plan.
    pub variant: AnyKVariant,
}

/// Whether the shared tries this plan's route requests were already
/// resident in the catalog's [`anyk_storage::IndexCatalog`] when the
/// plan was made. Rendered in `EXPLAIN` as `index = cached|built|n/a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexUse {
    /// The route does not consult the shared index catalog (acyclic
    /// T-DP plans build their own per-node structures).
    NotApplicable,
    /// Every shared trie the route unconditionally requests was
    /// already resident: prepare is an index *lookup*, not a build.
    Cached,
    /// At least one requested trie (or a private prefilter trie) must
    /// be built during prepare.
    Built,
}

impl IndexUse {
    /// Short label for `EXPLAIN` output and tests.
    pub fn label(&self) -> &'static str {
        match self {
            IndexUse::NotApplicable => "n/a",
            IndexUse::Cached => "cached",
            IndexUse::Built => "built",
        }
    }
}

/// The route the planner chose for a query.
#[derive(Debug, Clone)]
pub enum Route {
    /// α-acyclic: GYO join tree + T-DP + the chosen any-k variant.
    /// Preprocessing `O~(n)`, delay `O~(1)` — width 1.
    Acyclic {
        /// The GYO-produced join tree.
        tree: JoinTree,
    },
    /// The triangle query: worst-case-optimal materialization of the
    /// single width-1.5 bag (Generic-Join), ranked lazily via a heap.
    Triangle,
    /// The 4-cycle: submodular-width union-of-trees plan (heavy/light
    /// case split at `threshold`), one any-k stream per case, merged.
    /// Preprocessing `O~(n^1.5)` — subw 1.5 beats fhw 2.
    FourCycle {
        /// Heavy-degree cutoff (≈ √n).
        threshold: usize,
    },
    /// General cyclic: GHD decomposition, bags materialized
    /// worst-case-optimally, any-k over the acyclic bag query.
    /// Preprocessing `O~(n^fhw)`.
    Decomposed {
        /// The chosen decomposition.
        decomp: Decomposition,
    },
}

impl Route {
    /// Short label for logs and tests.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Acyclic { .. } => "acyclic",
            Route::Triangle => "triangle",
            Route::FourCycle { .. } => "four-cycle",
            Route::Decomposed { .. } => "decomposed",
        }
    }
}

/// What the planner decided for one query: route, ranking, variant,
/// and the width governing preprocessing cost.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The planned query.
    pub query: ConjunctiveQuery,
    /// The chosen route.
    pub route: Route,
    /// The runtime ranking.
    pub rank: RankSpec,
    /// The any-k variant that will drive enumeration — `None` when the
    /// plan has a single implementation no variant choice affects:
    /// [`Route::Triangle`] (worst-case-optimal materialization + lazy
    /// heap), and cyclic routes under a non-commutative ranking (which
    /// serve the materialized artifact under canonical atom order).
    pub variant: Option<AnyKVariant>,
    /// The width governing preprocessing: 1 for acyclic, the
    /// submodular width for the specialized cycle plans, the
    /// decomposition's fractional hypertree width otherwise.
    pub width: f64,
    /// Were the route's shared tries already catalog-resident at
    /// planning time ([`IndexUse::Cached`]), or will prepare have to
    /// build at least one ([`IndexUse::Built`])?
    pub index: IndexUse,
    /// How many delta-backed atom occurrences this plan unions in: the
    /// prepared query merges `deltas + 1` ranked streams (`0` — the
    /// common case — means a single stream over base payloads only).
    /// Rendered in `EXPLAIN` as `deltas = n`.
    pub deltas: usize,
}

impl Plan {
    /// Render the plan: route header plus the `query::explain`
    /// rendering of the underlying tree or decomposition.
    pub fn explain(&self) -> String {
        let variant = match &self.variant {
            Some(v) => format!("{v:?}"),
            None => "n/a (materialized heap)".to_string(),
        };
        let mut out = format!(
            "plan: route = {}, rank = {}, variant = {}, width = {:.3}, index = {}, \
             deltas = {}\n  {}\n",
            self.route.label(),
            self.rank,
            variant,
            self.width,
            self.index.label(),
            self.deltas,
            self.query,
        );
        match &self.route {
            Route::Acyclic { tree } => {
                for line in explain_join_tree(&self.query, tree).lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            Route::Triangle => {
                out.push_str(
                    "  materialize all triangles worst-case-optimally (Generic-Join, \
                     O~(n^1.5)), then rank via lazy heap\n",
                );
            }
            Route::FourCycle { threshold } => {
                out.push_str(&format!(
                    "  union-of-trees case split (submodular width 1.5), heavy \
                     threshold {threshold}; one any-k stream per case, k-way merged\n"
                ));
            }
            Route::Decomposed { decomp } => {
                for line in explain_decomposition(&self.query, decomp).lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, triangle_query};
    use anyk_query::gyo::{gyo_reduce, GyoResult};

    #[test]
    fn acyclic_plan_renders_tree() {
        let q = path_query(3);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let plan = Plan {
            query: q,
            route: Route::Acyclic { tree },
            rank: RankSpec::Sum,
            variant: Some(AnyKVariant::default()),
            width: 1.0,
            index: IndexUse::NotApplicable,
            deltas: 0,
        };
        let text = plan.explain();
        assert!(text.contains("route = acyclic"), "{text}");
        assert!(text.contains("R2("), "{text}");
        assert!(text.contains("width = 1.000"), "{text}");
        assert!(text.contains("index = n/a"), "{text}");
        assert!(text.contains("deltas = 0"), "{text}");
    }

    #[test]
    fn triangle_plan_mentions_wco() {
        let plan = Plan {
            query: triangle_query(),
            route: Route::Triangle,
            rank: RankSpec::Max,
            variant: None,
            width: 1.5,
            index: IndexUse::Built,
            deltas: 2,
        };
        assert!(plan.to_string().contains("Generic-Join"));
        assert!(plan.to_string().contains("variant = n/a"));
        assert!(plan.to_string().contains("index = built"));
        assert!(plan.to_string().contains("deltas = 2"));
    }
}
