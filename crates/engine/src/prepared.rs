//! Prepared queries: route + preprocess **once**, stream **many** times.
//!
//! The paper's complexity split is `O~(n)`–`O~(n^w)` preprocessing +
//! cheap per-answer delay. A [`PreparedQuery`] is that split reified:
//! it owns the prepared phase (reduced relations, T-DP state, or the
//! materialized sorted answers) behind `Arc`s, and every call to
//! [`PreparedQuery::stream`] spawns an independent ranked stream whose
//! cost is the *delay side only*. `PreparedQuery` is `Clone + Send +
//! Sync`: hand clones to as many threads as you like; all of them
//! enumerate from the same shared preprocessing pass.

use crate::error::EngineError;
use crate::plan::{AnyKVariant, Plan, Route};
use crate::rank::{IntoCost, RankSpec};
use crate::stream::{RankedAnswer, RankedStream};

use anyk_core::batch::materialize_ranked;
use anyk_core::cyclic::{
    prepare_triangle_with, wco_ranked_materialize_with, LazySortedAnswers, PreparedC4,
};
use anyk_core::decomposed::PreparedDecomposed;
use anyk_core::part::AnyKPart;
use anyk_core::ranking::{LexCost, MaxCost, MinCost, ProdCost, RankingFunction, SumCost};
use anyk_core::rec::AnyKRec;
use anyk_core::succorder::SuccessorKind;
use anyk_core::tdp::TdpInstance;
use anyk_storage::{IndexProvider, Relation};
use std::sync::Arc;

/// A query that has been routed and preprocessed exactly once, ready to
/// serve any number of independent ranked streams.
///
/// Obtained from [`Engine::prepare`](crate::Engine::prepare) (or
/// [`QueryRequest::prepare`](crate::QueryRequest::prepare)). The
/// prepared state is a snapshot: later catalog updates on the engine do
/// not affect it — streams keep serving the data the query was prepared
/// against. Cloning is cheap (shared `Arc` internals) and the type is
/// `Send + Sync`, so one prepared query can serve concurrent request
/// threads:
///
/// ```
/// use anyk_engine::{Engine, RankSpec};
/// use anyk_query::cq::path_query;
/// use anyk_storage::{Catalog, RelationBuilder, Schema};
///
/// let mut catalog = Catalog::new();
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 10], 0.3);
/// r.push_ints(&[2, 10], 0.1);
/// catalog.register("R1", r.finish());
/// let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
/// s.push_ints(&[10, 100], 0.5);
/// catalog.register("R2", s.finish());
/// let engine = Engine::new(catalog);
///
/// // Preprocess once...
/// let prepared = engine.prepare(path_query(2), RankSpec::Sum).unwrap();
/// // ...then stream as many times as you like, even from many threads.
/// let first: Vec<_> = prepared.stream().top_k(1);
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let p = prepared.clone();
///         std::thread::spawn(move || p.stream().top_k(1))
///     })
///     .collect();
/// for h in handles {
///     assert_eq!(h.join().unwrap(), first);
/// }
/// ```
#[derive(Clone)]
pub struct PreparedQuery {
    plan: Plan,
    /// Catalog epoch this query was prepared against (cache validity).
    epoch: u64,
    inner: PreparedInner,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("plan", &self.plan)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

/// The monomorphized prepared state, one arm per [`RankSpec`] — plus
/// the delta-union composition over per-term prepared queries.
#[derive(Clone)]
enum PreparedInner {
    Sum(PreparedRoute<SumCost>),
    Max(PreparedRoute<MaxCost>),
    Min(PreparedRoute<MinCost>),
    Prod(PreparedRoute<ProdCost>),
    Lex(PreparedRoute<LexCost>),
    /// A query over delta-bearing relations: one prepared term per
    /// union member of the telescoping base-⊎-delta decomposition,
    /// streamed through the deterministic (cost, tuple, term) merge.
    /// Ranked enumeration composes under union, so each term is just a
    /// full [`PreparedQuery`] over its own relation snapshot.
    Union(Arc<Vec<PreparedQuery>>),
}

/// What preprocessing produced, by route family. Everything is behind
/// an `Arc`: a stream borrows nothing and copies nothing at spawn time.
#[derive(Clone)]
enum PreparedRoute<R: RankingFunction> {
    /// Acyclic: the shared T-DP instance (reduced relations, groups,
    /// bottom-up costs). PART and REC both enumerate from it.
    Tdp(Arc<TdpInstance<R>>),
    /// General cyclic: the GHD plan's bag-level T-DP instance plus the
    /// output permutation.
    Ghd(PreparedDecomposed<R>),
    /// 4-cycle: the union-of-trees case split, one shared T-DP
    /// instance per case.
    Cases(PreparedC4<R>),
    /// Every materialized-answer plan — the triangle route, `Batch`
    /// plans on any route, and non-commutative rankings on cyclic
    /// routes — with the sort **deferred**: prepare is materialize-only
    /// (`O(r)`), the first stream is a lazy heap (`O(r)` build), and
    /// the shared sorted artifact is installed when a second stream
    /// spawns or the first one exhausts.
    LazySorted(LazySortedAnswers<R::Cost>),
}

impl<R: RankingFunction> PreparedRoute<R> {
    /// Does this artifact hold a full materialized answer set?
    fn is_materialized(&self) -> bool {
        matches!(self, PreparedRoute::LazySorted(_))
    }

    /// For materialized artifacts: is the `O(r log r)` sort still
    /// deferred? `None` on non-materialized routes.
    fn sort_deferred(&self) -> Option<bool> {
        match self {
            PreparedRoute::LazySorted(lazy) => Some(!lazy.is_sorted()),
            _ => None,
        }
    }
}

impl PreparedQuery {
    /// Run the preprocessing phase for `plan` over `rels` (shared
    /// handles resolved from the catalog). `batch` selects the
    /// materialize-then-sort artifact instead of the any-k structures.
    /// Cyclic routes resolve their tries through `indexes` — the
    /// catalog's shared [`anyk_storage::IndexCatalog`] on the engine
    /// path, so a warm catalog turns prepare's index-build portion into
    /// lookups.
    pub(crate) fn build(
        plan: Plan,
        rels: Vec<Relation>,
        batch: bool,
        epoch: u64,
        indexes: &dyn IndexProvider,
    ) -> Result<Self, EngineError> {
        let inner = match plan.rank {
            RankSpec::Sum => {
                PreparedInner::Sum(build_route::<SumCost>(&plan, rels, batch, indexes)?)
            }
            RankSpec::Max => {
                PreparedInner::Max(build_route::<MaxCost>(&plan, rels, batch, indexes)?)
            }
            RankSpec::Min => {
                PreparedInner::Min(build_route::<MinCost>(&plan, rels, batch, indexes)?)
            }
            RankSpec::Prod => {
                PreparedInner::Prod(build_route::<ProdCost>(&plan, rels, batch, indexes)?)
            }
            RankSpec::Lex => {
                PreparedInner::Lex(build_route::<LexCost>(&plan, rels, batch, indexes)?)
            }
        };
        Ok(PreparedQuery { plan, epoch, inner })
    }

    /// Compose per-term prepared queries (the telescoping base-⊎-delta
    /// decomposition built by the engine) into one prepared query whose
    /// streams merge the term streams deterministically. `plan` is the
    /// facade plan: it reports the original query with
    /// [`Plan::deltas`](crate::Plan) counting the delta terms.
    pub(crate) fn union(plan: Plan, terms: Vec<PreparedQuery>, epoch: u64) -> PreparedQuery {
        PreparedQuery {
            plan,
            epoch,
            inner: PreparedInner::Union(Arc::new(terms)),
        }
    }

    /// The plan this query was prepared under (route, ranking, width).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The engine catalog epoch this query was prepared against. The
    /// engine's plan cache serves this prepared query only while the
    /// catalog is still at this epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Does this prepared artifact hold a full materialized answer set
    /// (the triangle route, and every `Batch` plan)? Such entries are
    /// the heaviest residents of the engine's plan cache and the first
    /// candidates for eviction under a capacity bound.
    pub fn holds_materialized_answers(&self) -> bool {
        match &self.inner {
            PreparedInner::Sum(r) => r.is_materialized(),
            PreparedInner::Max(r) => r.is_materialized(),
            PreparedInner::Min(r) => r.is_materialized(),
            PreparedInner::Prod(r) => r.is_materialized(),
            PreparedInner::Lex(r) => r.is_materialized(),
            PreparedInner::Union(terms) => {
                terms.iter().any(PreparedQuery::holds_materialized_answers)
            }
        }
    }

    /// For materialized artifacts: `Some(true)` while the `O(r log r)`
    /// sort is still deferred (the lazy-heap first-stream window —
    /// on the triangle route, on every `Batch` plan, and on cyclic
    /// plans under a non-commutative ranking), `Some(false)` once the
    /// shared sorted artifact is installed. `None` on any-k routes,
    /// which never materialize. Diagnostic for the serving-grade TTF
    /// guarantee: a prepared materialized plan that has served one
    /// partial top-k stream must still report `Some(true)`.
    pub fn sort_deferred(&self) -> Option<bool> {
        match &self.inner {
            PreparedInner::Sum(r) => r.sort_deferred(),
            PreparedInner::Max(r) => r.sort_deferred(),
            PreparedInner::Min(r) => r.sort_deferred(),
            PreparedInner::Prod(r) => r.sort_deferred(),
            PreparedInner::Lex(r) => r.sort_deferred(),
            // A union defers while any term still does; all-None (pure
            // any-k terms) stays None.
            PreparedInner::Union(terms) => terms
                .iter()
                .filter_map(PreparedQuery::sort_deferred)
                .reduce(|a, b| a || b),
        }
    }

    /// Spawn a fresh independent ranked stream over the shared prepared
    /// state. Costs only the stream shell (heaps seeded from the
    /// prepared structures) — never the preprocessing.
    pub fn stream(&self) -> RankedStream {
        self.stream_as(self.plan.variant.unwrap_or_default())
    }

    /// A copy of this prepared query whose plan records `requested` as
    /// the effective variant (the prepared artifact is shared — only
    /// the stream-time enumerator choice differs). Plans with a single
    /// implementation (`variant == None`: the triangle route, and
    /// non-commutative rankings on cyclic routes) stay variant-free —
    /// no requested variant affects what runs.
    pub(crate) fn adopt_variant(&self, requested: AnyKVariant) -> PreparedQuery {
        let mut p = self.clone();
        p.plan.variant = p.plan.variant.map(|_| requested);
        p
    }

    /// Spawn a stream driving the given any-k variant over the shared
    /// artifact. `Batch` requests are prepared as
    /// [`PreparedRoute::LazySorted`], so the variant only selects among
    /// PART successor orders and REC here.
    fn stream_as(&self, variant: AnyKVariant) -> RankedStream {
        let mut plan = self.plan.clone();
        plan.variant = plan.variant.map(|_| variant);
        let inner = match &self.inner {
            PreparedInner::Sum(r) => stream_route(r, variant),
            PreparedInner::Max(r) => stream_route(r, variant),
            PreparedInner::Min(r) => stream_route(r, variant),
            PreparedInner::Prod(r) => stream_route(r, variant),
            PreparedInner::Lex(r) => stream_route(r, variant),
            PreparedInner::Union(terms) => {
                // Merge the term streams with the deterministic
                // (cost, tuple, term) tie-break — the same machinery
                // as the cross-shard fan-in, so the merged stream is
                // canonical by construction.
                let fan_in = Arc::new(crate::shard::ShardFanIn::new(terms.len()));
                let streams: Vec<RankedStream> =
                    terms.iter().map(|t| t.stream_as(variant)).collect();
                return crate::shard::merge_streams(streams, plan, fan_in, None);
            }
        };
        RankedStream { inner, plan }
    }
}

/// Erase a concrete any-k iterator into the engine's answer type.
fn erase<C, I>(it: I) -> Box<dyn Iterator<Item = RankedAnswer> + Send>
where
    C: IntoCost,
    I: Iterator<Item = anyk_core::answer::RankedAnswer<C>> + Send + 'static,
{
    Box::new(it.map(|a| RankedAnswer {
        cost: a.cost.into_cost(),
        values: a.values,
    }))
}

/// Build the prepared artifact for one route under a concrete ranking.
fn build_route<R>(
    plan: &Plan,
    rels: Vec<Relation>,
    batch: bool,
    indexes: &dyn IndexProvider,
) -> Result<PreparedRoute<R>, EngineError>
where
    R: RankingFunction,
    R::Cost: IntoCost,
{
    // Every materialize-then-rank artifact defers its sort: prepare is
    // materialize-only (`O(r)`), the first stream is a lazy heap, and
    // the shared sorted artifact installs when it pays for itself.
    // Cyclic routes also take this path for rankings without a
    // weight-level view (lexicographic): the per-case/bag plans cannot
    // collapse tuple weights, but the materialized answers rank fine
    // under the canonical atom-order serialization.
    let wco_lazy = |rels: &[Relation]| {
        LazySortedAnswers::new(wco_ranked_materialize_with::<R>(&plan.query, rels, indexes))
    };
    Ok(match &plan.route {
        Route::Acyclic { tree } => {
            if batch {
                // Materialize via Yannakakis (weights combined in
                // serialization order: valid for Lex too), defer the
                // sort, share.
                PreparedRoute::LazySorted(LazySortedAnswers::new(materialize_ranked::<R>(
                    &plan.query,
                    tree,
                    rels,
                )))
            } else {
                PreparedRoute::Tdp(Arc::new(TdpInstance::<R>::prepare(
                    &plan.query,
                    tree,
                    rels,
                )?))
            }
        }
        // The triangle plan is materialize-then-rank with the sort
        // deferred; Batch and any-k requests share the same artifact.
        Route::Triangle => PreparedRoute::LazySorted(prepare_triangle_with::<R>(&rels, indexes)),
        Route::FourCycle { threshold } => {
            if batch || R::weight_dioid().is_none() {
                PreparedRoute::LazySorted(wco_lazy(&rels))
            } else {
                PreparedRoute::Cases(PreparedC4::prepare_with(&rels, *threshold, indexes)?)
            }
        }
        Route::Decomposed { decomp } => {
            if batch || R::weight_dioid().is_none() {
                PreparedRoute::LazySorted(wco_lazy(&rels))
            } else {
                PreparedRoute::Ghd(PreparedDecomposed::prepare_with(
                    &plan.query,
                    &rels,
                    decomp,
                    indexes,
                )?)
            }
        }
    })
}

/// Spawn one erased stream from a prepared route artifact.
fn stream_route<R>(
    route: &PreparedRoute<R>,
    variant: AnyKVariant,
) -> Box<dyn Iterator<Item = RankedAnswer> + Send>
where
    R: RankingFunction,
    R::Cost: IntoCost,
{
    let part_kind = |v: AnyKVariant| match v {
        AnyKVariant::Part(kind) => kind,
        _ => SuccessorKind::Lazy,
    };
    match route {
        PreparedRoute::Tdp(inst) => match variant {
            AnyKVariant::Rec => erase(AnyKRec::new(Arc::clone(inst))),
            v => erase(AnyKPart::new(Arc::clone(inst), part_kind(v))),
        },
        PreparedRoute::Ghd(prep) => match variant {
            AnyKVariant::Rec => erase(prep.stream_rec()),
            v => erase(prep.stream_part(part_kind(v))),
        },
        PreparedRoute::Cases(prep) => match variant {
            AnyKVariant::Rec => erase(prep.stream_rec()),
            v => erase(prep.stream_part(part_kind(v))),
        },
        PreparedRoute::LazySorted(lazy) => erase(lazy.stream()),
    }
}
