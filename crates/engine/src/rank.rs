//! Runtime-selectable ranking functions and the type-erased cost that
//! lets one [`RankedStream`](crate::RankedStream) serve every ranking.
//!
//! The core crate fixes the ranking function at compile time (`R:
//! RankingFunction` everywhere). A serving facade cannot: the ranking
//! arrives with the request. [`RankSpec`] is the runtime enum; the
//! engine monomorphizes internally (one match arm per spec) and erases
//! the concrete cost into [`Cost`].

use anyk_storage::Weight;
use std::cmp::Ordering;
use std::fmt;

/// A ranking function chosen at runtime.
///
/// | spec | combines weights by | commutative | cyclic plans |
/// |-------|--------------------|-------------|--------------|
/// | `Sum` | `+` (the paper's default) | yes | yes |
/// | `Max` | bottleneck maximum | yes | yes |
/// | `Min` | minimum, ascending | yes | yes |
/// | `Prod`| `×` (non-negative weights) | yes | yes |
/// | `Lex` | lexicographic over the serialization order | **no** | via materialization |
///
/// `Lex` weights serialize in join-tree pre-order on the acyclic
/// route; cyclic routes cannot drive their any-k case plans with a
/// non-commutative ranking, so there `Lex` runs off the materialized
/// answer set with weights serialized in **canonical atom order**
/// (the query's atom order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RankSpec {
    /// Sum of tuple weights (the paper's default ranking).
    #[default]
    Sum,
    /// Maximum tuple weight (bottleneck).
    Max,
    /// Minimum tuple weight, ascending.
    Min,
    /// Product of tuple weights (requires non-negative weights).
    Prod,
    /// Lexicographic comparison of the weight vector: join-tree
    /// serialization order on acyclic routes, canonical atom order on
    /// cyclic routes (which serve it from materialized answers).
    Lex,
}

impl RankSpec {
    /// Is `combine` commutative? Cyclic routes (union-of-trees, GHD
    /// bags) serialize atoms in per-case orders, so their any-k plans
    /// require a commutative ranking — non-commutative rankings fall
    /// back to the materialized (`Batch`-style) artifact there.
    pub fn is_commutative(self) -> bool {
        !matches!(self, RankSpec::Lex)
    }

    /// All specs, for exhaustive tests and CLI parsing.
    pub const ALL: [RankSpec; 5] = [
        RankSpec::Sum,
        RankSpec::Max,
        RankSpec::Min,
        RankSpec::Prod,
        RankSpec::Lex,
    ];

    /// Parse a case-insensitive name (`"sum"`, `"max"`, ...).
    pub fn parse(s: &str) -> Option<RankSpec> {
        match s.to_ascii_lowercase().as_str() {
            "sum" => Some(RankSpec::Sum),
            "max" => Some(RankSpec::Max),
            "min" => Some(RankSpec::Min),
            "prod" | "product" => Some(RankSpec::Prod),
            "lex" | "lexicographic" => Some(RankSpec::Lex),
            _ => None,
        }
    }
}

impl fmt::Display for RankSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RankSpec::Sum => "sum",
            RankSpec::Max => "max",
            RankSpec::Min => "min",
            RankSpec::Prod => "prod",
            RankSpec::Lex => "lex",
        };
        write!(f, "{name}")
    }
}

/// A type-erased ranking cost: scalar for `Sum`/`Max`/`Min`/`Prod`,
/// weight vector for `Lex`. One stream never mixes the two variants;
/// the cross-variant order exists only to keep `Ord` total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cost {
    /// A single combined weight.
    Scalar(Weight),
    /// The per-slot weight vector of a lexicographic ranking.
    Lex(Vec<Weight>),
}

impl Cost {
    /// The scalar value, if this is a scalar cost.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            Cost::Scalar(w) => Some(w.get()),
            Cost::Lex(_) => None,
        }
    }

    /// The weight vector, if this is a lexicographic cost.
    pub fn lex(&self) -> Option<&[Weight]> {
        match self {
            Cost::Lex(v) => Some(v),
            Cost::Scalar(_) => None,
        }
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Cost::Scalar(a), Cost::Scalar(b)) => a.cmp(b),
            (Cost::Lex(a), Cost::Lex(b)) => a.cmp(b),
            (Cost::Scalar(_), Cost::Lex(_)) => Ordering::Less,
            (Cost::Lex(_), Cost::Scalar(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cost::Scalar(w) => write!(f, "{w}"),
            Cost::Lex(v) => {
                write!(f, "[")?;
                for (i, w) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Conversion from a concrete ranking-function cost into the erased
/// [`Cost`]. Implemented for the two cost types the core rankings use.
pub trait IntoCost {
    /// Erase into [`Cost`].
    fn into_cost(self) -> Cost;
}

impl IntoCost for Weight {
    fn into_cost(self) -> Cost {
        Cost::Scalar(self)
    }
}

impl IntoCost for Vec<Weight> {
    fn into_cost(self) -> Cost {
        Cost::Lex(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for spec in RankSpec::ALL {
            assert_eq!(RankSpec::parse(&spec.to_string()), Some(spec));
        }
        assert_eq!(RankSpec::parse("SUM"), Some(RankSpec::Sum));
        assert_eq!(RankSpec::parse("bogus"), None);
    }

    #[test]
    fn commutativity_flags() {
        assert!(RankSpec::Sum.is_commutative());
        assert!(!RankSpec::Lex.is_commutative());
    }

    #[test]
    fn cost_order_and_accessors() {
        let a = Cost::Scalar(Weight::new(1.0));
        let b = Cost::Scalar(Weight::new(2.0));
        assert!(a < b);
        assert_eq!(a.scalar(), Some(1.0));
        assert!(a.lex().is_none());

        let la = Cost::Lex(vec![Weight::new(1.0), Weight::new(5.0)]);
        let lb = Cost::Lex(vec![Weight::new(1.0), Weight::new(6.0)]);
        assert!(la < lb);
        assert_eq!(la.lex().map(<[Weight]>::len), Some(2));
        assert!(a < la, "cross-variant order is total");
        assert_eq!(a.to_string(), "1");
    }
}
