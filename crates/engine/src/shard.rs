//! In-process sharded serving: N full [`Engine`]s over hash-partitioned
//! catalogs, queried through one globally-ranked merged stream.
//!
//! ## Fragment-and-replicate partitioning
//!
//! Naive per-relation partitioning breaks join completeness (a join
//! answer may combine rows that hashed to different shards). Instead,
//! every shard's catalog holds the **full** relation under its original
//! name *plus* that relation's hash fragment under the reserved name
//! `{name}#frag` (`#` cannot appear in a parsed identifier, so the
//! fragment namespace is unreachable from the wire). At prepare time
//! exactly one *pivot* atom — chosen deterministically as the largest
//! relation, ties to the lowest atom index — is retargeted at the
//! fragment name; all other atoms read their replicated relations. Each
//! answer binds exactly one pivot row, every row lives in exactly one
//! fragment, and duplicate rows co-locate ([`anyk_storage::partition`]),
//! so the shard streams *partition* the answer multiset: disjoint,
//! complete, no de-duplication needed. Self-joins are safe because only
//! one atom is rewritten.
//!
//! ## Deterministic cross-shard tie-break
//!
//! Each shard stream is wrapped in [`CanonicalOrder`] (equal-cost runs
//! re-emitted sorted by output tuple — lookahead bounded by the largest
//! tie group), and the k-way tournament-tree merge breaks cost ties by
//! (output tuple, shard index). Because all query variables are output
//! variables, equal tuples imply the same pivot row and therefore the
//! same shard — so the merged stream is the *canonical* ranked stream:
//! byte-identical to the single-engine stream's canonical form no
//! matter how many shards produced it
//! ([`RankedStream::canonical_ties`]).

use crate::error::EngineError;
use crate::plan::Plan;
use crate::prepared::PreparedQuery;
use crate::rank::{Cost, RankSpec};
use crate::stream::{RankedAnswer, RankedStream};
use anyk_core::union::{CanonicalOrder, TournamentTree};
use anyk_core::RankedAnswer as CoreAnswer;
use anyk_obs::{Clock, ObsRegistry};
use anyk_query::cq::ConjunctiveQuery;
use anyk_storage::{partition_relation, Catalog, Relation};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use crate::{CacheStats, Engine, EngineOpts, PrepareReport, WriteStats};
use anyk_storage::IndexStats;

/// The reserved marker appended to a relation name to address its hash
/// fragment on a shard. `#` is not a legal identifier character in the
/// wire protocol, so client queries can never name a fragment directly.
pub const FRAGMENT_SUFFIX: &str = "#frag";

fn fragment_name(relation: &str) -> String {
    format!("{relation}{FRAGMENT_SUFFIX}")
}

/// State shared by all clones of one [`ShardedEngine`].
struct ShardedShared {
    /// One full engine per shard, each over its own catalog fork with
    /// its own index catalog.
    engines: Vec<Engine>,
    /// The cross-shard coordination epoch. Writers (register/remove)
    /// hold the write side while applying an update to *every* shard,
    /// so a prepare (read side) always sees all shards at the same
    /// logical version — no torn cross-shard catalogs.
    ///
    /// Lock order: `coord` is acquired before any per-shard catalog or
    /// cache lock (session ≺ coord ≺ catalog ≺ cache ≺ deadline map).
    coord: RwLock<u64>,
}

/// N full [`Engine`] shards behind one globally-ranked query facade.
///
/// `Clone + Send + Sync`: clones are handles onto the same shard set,
/// so any number of threads may prepare, stream, and update
/// concurrently. Catalog updates are epoch-coordinated: a relation
/// update re-partitions the relation and applies (full + fragment) to
/// every shard under the coordination write lock, bumping the global
/// epoch; streams opened earlier keep their immutable snapshots
/// (relation payloads are `Arc`-shared), preserving snapshot isolation
/// mid-stream.
#[derive(Clone)]
pub struct ShardedEngine {
    shared: Arc<ShardedShared>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.num_shards())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Shard `catalog` across `shards` engines with default options.
    ///
    /// Every relation is replicated to each shard under its original
    /// name (refcount bumps, no tuple copies) and hash-partitioned into
    /// per-shard fragments under `{name}#frag`. Fails on zero shards or
    /// a relation name that already uses the reserved `#` marker.
    pub fn new(catalog: Catalog, shards: usize) -> Result<Self, EngineError> {
        ShardedEngine::with_opts(catalog, shards, EngineOpts::default())
    }

    /// [`ShardedEngine::new`] with explicit per-shard engine options.
    pub fn with_opts(
        catalog: Catalog,
        shards: usize,
        opts: EngineOpts,
    ) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let mut names: Vec<String> = catalog.names().map(str::to_string).collect();
        names.sort_unstable();
        for name in &names {
            if name.contains('#') {
                return Err(EngineError::ReservedRelationName {
                    relation: name.clone(),
                });
            }
        }
        let engines = (0..shards)
            .map(|i| {
                // Each shard gets its own index catalog (fresh stats and
                // budget) but shares every relation payload.
                let mut cat = catalog.fork_with_fresh_indexes();
                for name in &names {
                    // The fork holds every name just enumerated, and
                    // `partition_relation` yields exactly `shards`
                    // parts (one when `shards == 1`), so both lookups
                    // always hit.
                    let frag = cat
                        .get(name)
                        .map(|rel| partition_relation(rel, shards))
                        .and_then(|parts| parts.into_iter().nth(i));
                    if let Some(frag) = frag {
                        cat.register(fragment_name(name), frag);
                    }
                }
                Engine::with_opts(cat, opts)
            })
            .collect();
        Ok(ShardedEngine {
            shared: Arc::new(ShardedShared {
                engines,
                coord: RwLock::new(0),
            }),
        })
    }

    /// Build a sharded engine by registering `rels[i]` under the
    /// relation name of `q`'s atom `i` — the sharded analogue of
    /// [`Engine::try_from_query_bindings`], with the same validation.
    pub fn try_from_query_bindings(
        q: &ConjunctiveQuery,
        rels: Vec<Relation>,
        shards: usize,
    ) -> Result<Self, EngineError> {
        if q.num_atoms() != rels.len() {
            return Err(EngineError::BindingCountMismatch {
                atoms: q.num_atoms(),
                relations: rels.len(),
            });
        }
        let mut catalog = Catalog::new();
        for (atom, rel) in q.atoms().iter().zip(rels) {
            if let Some(prev) = catalog.get(&atom.relation) {
                if *prev != rel {
                    return Err(EngineError::ConflictingBindings {
                        relation: atom.relation.clone(),
                    });
                }
            }
            catalog.register(atom.relation.clone(), rel);
        }
        ShardedEngine::new(catalog, shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shared.engines.len()
    }

    /// The shard engines (diagnostics and tests).
    pub fn shard_engines(&self) -> &[Engine] {
        &self.shared.engines
    }

    /// The cross-shard coordination epoch: bumped by every
    /// [`register`](Self::register) / [`remove`](Self::remove).
    pub fn epoch(&self) -> u64 {
        *self
            .shared
            .coord
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or replace) a relation on **every** shard: the full
    /// relation under `name`, its hash fragments under `{name}#frag`.
    /// Runs under the coordination write lock, so concurrent prepares
    /// see either no shard updated or all of them (never a torn
    /// cross-shard catalog); per-shard epochs bump, invalidating cached
    /// plans and exactly the replaced relation's indexes on each shard.
    /// Streams already open keep their payload snapshots.
    pub fn register<S: Into<String>>(&self, name: S, rel: Relation) -> Result<(), EngineError> {
        let name = name.into();
        if name.contains('#') {
            return Err(EngineError::ReservedRelationName { relation: name });
        }
        let parts = partition_relation(&rel, self.num_shards());
        let mut epoch = self
            .shared
            .coord
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        for (engine, part) in self.shared.engines.iter().zip(parts) {
            let (name, frag) = (name.clone(), fragment_name(&name));
            let rel = rel.clone();
            engine.update_catalog(move |c| {
                c.register(name, rel);
                c.register(frag, part);
            });
        }
        Ok(())
    }

    /// Append one batch to the named relation on **every** shard: the
    /// full batch joins `name`'s delta tail, the batch's hash fragments
    /// join `{name}#frag`'s. Runs under the coordination write lock
    /// (no torn cross-shard appends) but — like [`Engine::append`] —
    /// does **not** bump any epoch: per-shard invalidation is
    /// relation-scoped, so cached plans and warm indexes over other
    /// relations survive. Typed failures: unknown relation, batch
    /// arity mismatch, reserved `#` names.
    pub fn append(&self, name: &str, batch: Relation) -> Result<(), EngineError> {
        if name.contains('#') {
            return Err(EngineError::ReservedRelationName {
                relation: name.to_string(),
            });
        }
        let parts = partition_relation(&batch, self.num_shards());
        let coord = self
            .shared
            .coord
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = *coord;
        for (engine, part) in self.shared.engines.iter().zip(parts) {
            engine.append_raw(name, batch.clone())?;
            engine.append_raw(&fragment_name(name), part)?;
        }
        Ok(())
    }

    /// Fold the named relation's pending deltas (full + fragment) into
    /// fresh base payloads on every shard. Returns `true` if any shard
    /// actually compacted.
    pub fn compact(&self, name: &str) -> Result<bool, EngineError> {
        let coord = self
            .shared
            .coord
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = *coord;
        let mut compacted = false;
        for engine in &self.shared.engines {
            compacted |= engine.compact(name)?;
            compacted |= engine.compact(&fragment_name(name))?;
        }
        Ok(compacted)
    }

    /// Write-path counters for the sharded deployment. Appends,
    /// appended rows, and compactions are logical (every shard sees
    /// the same logical writes, so shard 0 speaks for all — fragment
    /// bookkeeping is never counted); invalidated plans are summed
    /// across shards, since each shard caches its own plans.
    pub fn write_stats(&self) -> WriteStats {
        let mut out = self.shared.engines[0].write_stats();
        out.invalidated_plans = self
            .shared
            .engines
            .iter()
            .map(|e| e.write_stats().invalidated_plans)
            .sum();
        out
    }

    /// Remove a relation (full + fragment) from every shard, under the
    /// coordination write lock. Returns `true` if any shard held it.
    pub fn remove(&self, name: &str) -> bool {
        let mut epoch = self
            .shared
            .coord
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *epoch += 1;
        let mut removed = false;
        for engine in &self.shared.engines {
            let frag = fragment_name(name);
            let name = name.to_string();
            let hit = std::sync::atomic::AtomicBool::new(false);
            engine.update_catalog(|c| {
                if c.remove(&name).is_some() {
                    hit.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                c.remove(&frag);
            });
            removed |= hit.load(std::sync::atomic::Ordering::Relaxed);
        }
        removed
    }

    /// The deterministic pivot atom for `cq`: the atom bound to the
    /// largest relation (ties to the lowest atom index) — the biggest
    /// scan is the one worth scattering.
    fn pivot_atom(&self, catalog: &Catalog, cq: &ConjunctiveQuery) -> Result<usize, EngineError> {
        if cq.num_atoms() == 0 {
            return Err(EngineError::EmptyQuery);
        }
        let mut pivot = 0usize;
        let mut best = 0usize;
        for (i, atom) in cq.atoms().iter().enumerate() {
            let len = catalog.lookup(&atom.relation)?.len();
            if i == 0 || len > best {
                pivot = i;
                best = len;
            }
        }
        Ok(pivot)
    }

    /// Prepare `cq` under `rank` on every shard, returning a
    /// [`ShardedPrepared`] whose streams merge into the canonical
    /// globally-ranked stream. Runs under the coordination read lock,
    /// so all per-shard prepares see the same logical catalog version.
    pub fn prepare(
        &self,
        cq: &ConjunctiveQuery,
        rank: RankSpec,
    ) -> Result<ShardedPrepared, EngineError> {
        Ok(self.prepare_report(cq, rank)?.0)
    }

    /// [`prepare`](Self::prepare) plus aggregated provenance: a cache
    /// hit only if **every** shard's plan cache served its part, and
    /// the summed per-shard prepare wall time.
    pub fn prepare_report(
        &self,
        cq: &ConjunctiveQuery,
        rank: RankSpec,
    ) -> Result<(ShardedPrepared, PrepareReport), EngineError> {
        let coord = self
            .shared
            .coord
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let catalog = self.shared.engines[0].catalog();
        let pivot = self.pivot_atom(&catalog, cq)?;
        let scattered = cq.with_atom_relation(pivot, fragment_name(&cq.atom(pivot).relation));
        let mut parts = Vec::with_capacity(self.num_shards());
        let mut report = PrepareReport {
            cache_hit: true,
            prepare_us: 0,
        };
        for engine in &self.shared.engines {
            let (part, r) = engine.prepare_cached_report(&scattered, rank, engine.opts)?;
            report.cache_hit &= r.cache_hit;
            report.prepare_us += r.prepare_us;
            parts.push(part);
        }
        // The facade plan reports the *original* query; the scattered
        // rewrite is an internal addressing detail.
        let mut plan = parts[0].plan().clone();
        plan.query = cq.clone();
        Ok((
            ShardedPrepared {
                parts,
                plan,
                pivot,
                epoch: *coord,
                obs: Arc::clone(self.shared.engines[0].obs()),
            },
            report,
        ))
    }

    /// This sharded engine's shard-0 observability registry (the
    /// merged stream's clock; per-shard registries are reachable via
    /// [`shard_engines`](Self::shard_engines)).
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        self.shared.engines[0].obs()
    }

    /// Prepare and stream in one step (the ad-hoc serving path; each
    /// shard's plan cache amortizes repeats). The stream carries the
    /// per-pull delay sampler when recording is enabled.
    pub fn stream(
        &self,
        cq: &ConjunctiveQuery,
        rank: RankSpec,
    ) -> Result<RankedStream, EngineError> {
        let stream = self.prepare(cq, rank)?.stream();
        let obs = self.obs();
        Ok(if obs.enabled() {
            stream.sampled(Arc::clone(obs))
        } else {
            stream
        })
    }

    /// Render the plan for `cq` plus the shard fan-out per atom: the
    /// pivot atom scatters over hash fragments, every other atom reads
    /// its replicated relation on all shards.
    pub fn explain(&self, cq: &ConjunctiveQuery, rank: RankSpec) -> Result<String, EngineError> {
        let coord = self
            .shared
            .coord
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = *coord;
        let catalog = self.shared.engines[0].catalog();
        let pivot = self.pivot_atom(&catalog, cq)?;
        let plan = self.shared.engines[0]
            .query(cq.clone())
            .rank_by(rank)
            .explain()?;
        let mut out = plan.explain();
        out.push_str(&format!("shard fan-out: {} shard(s)\n", self.num_shards()));
        for (i, atom) in cq.atoms().iter().enumerate() {
            let role = if i == pivot {
                "scatter (hash-partitioned pivot)"
            } else {
                "replicated"
            };
            out.push_str(&format!("  atom #{i} {}: {role}\n", atom.relation));
        }
        Ok(out)
    }

    /// Plan-cache counters summed across all shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut out = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
            capacity: 0,
        };
        for engine in &self.shared.engines {
            let s = engine.cache_stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.entries += s.entries;
            out.capacity += s.capacity;
        }
        out
    }

    /// Index-catalog counters summed across all shards (each shard has
    /// its own index catalog and budget).
    pub fn index_stats(&self) -> IndexStats {
        let mut out = IndexStats {
            hits: 0,
            misses: 0,
            builds: 0,
            evictions: 0,
            resident_bytes: 0,
            entries: 0,
            capacity_bytes: 0,
        };
        for engine in &self.shared.engines {
            let s = engine.index_stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.builds += s.builds;
            out.evictions += s.evictions;
            out.resident_bytes += s.resident_bytes;
            out.entries += s.entries;
            out.capacity_bytes += s.capacity_bytes;
        }
        out
    }
}

/// A query prepared on every shard: per-shard [`PreparedQuery`]s plus
/// the facade plan. `Clone + Send + Sync` like its parts; any number of
/// merged streams can be spawned, each an independent cursor.
#[derive(Clone)]
pub struct ShardedPrepared {
    parts: Vec<PreparedQuery>,
    plan: Plan,
    pivot: usize,
    epoch: u64,
    /// Shard-0's registry, captured at prepare time: the merged
    /// stream's clock for merge-time accounting (and its enable
    /// switch).
    obs: Arc<ObsRegistry>,
}

impl ShardedPrepared {
    /// The facade plan (reports the original, un-scattered query).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The pivot atom that was scattered over hash fragments.
    pub fn pivot_atom(&self) -> usize {
        self.pivot
    }

    /// The coordination epoch this prepare ran at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-shard prepared queries (diagnostics and tests).
    pub fn parts(&self) -> &[PreparedQuery] {
        &self.parts
    }

    /// Spawn the merged, globally-ranked stream: one canonical-order
    /// cursor per shard, k-way tournament-tree merge with the
    /// (cost, tuple, shard) tie-break. Shard cursors refill in batches —
    /// in parallel on multi-core hosts via scoped threads that always
    /// join before `next()` returns, so a dropped stream can never leak
    /// a shard cursor.
    pub fn stream(&self) -> RankedStream {
        self.stream_traced().0
    }

    /// [`stream`](Self::stream) plus a live [`ShardFanIn`] handle:
    /// per-shard rows pulled, tournament depth, and merge-machinery
    /// wall time, updated as the stream is consumed.
    pub fn stream_traced(&self) -> (RankedStream, Arc<ShardFanIn>) {
        let fan_in = Arc::new(ShardFanIn::new(self.parts.len()));
        let streams: Vec<RankedStream> = self.parts.iter().map(PreparedQuery::stream).collect();
        let clock = self.obs.enabled().then(|| Arc::clone(self.obs.clock()));
        let stream = merge_streams(streams, self.plan.clone(), Arc::clone(&fan_in), clock);
        (stream, fan_in)
    }
}

/// Merge independent ranked streams into one canonical ranked stream:
/// each source is wrapped in [`CanonicalOrder`] and the k-way
/// tournament merge breaks cost ties by (output tuple, source index).
/// The machinery behind both fan-ins that need a deterministic total
/// order — the cross-**shard** merge and the base-⊎-delta **union**
/// merge of a delta-backed prepared query.
pub(crate) fn merge_streams(
    streams: Vec<RankedStream>,
    plan: Plan,
    fan_in: Arc<ShardFanIn>,
    clock: Option<Arc<dyn Clock>>,
) -> RankedStream {
    let n = streams.len();
    let sources: Vec<ShardSource> = streams
        .into_iter()
        .enumerate()
        .map(|(i, s)| ShardSource {
            stream: CanonicalOrder::new(
                Box::new(s.map(to_core)) as Box<dyn Iterator<Item = CoreAnswer<Cost>> + Send>
            ),
            buf: VecDeque::new(),
            done: false,
            fan_in: Arc::clone(&fan_in),
            index: i,
        })
        .collect();
    RankedStream {
        inner: Box::new(ShardedIter {
            sources,
            tree: TournamentTree::new(n),
            batch: 1,
            parallel: std::thread::available_parallelism()
                .map(|p| p.get() > 1)
                .unwrap_or(false),
            primed: false,
            fan_in,
            clock,
        }),
        plan,
    }
}

/// Live shard fan-in telemetry for one merged stream: how many rows
/// each shard fed the tournament merge, the merge tree's depth (the
/// per-answer comparison cost is one root-to-leaf replay), and — when
/// recording is enabled — wall time spent inside the merge machinery
/// (batch refills + tree rebuilds/replays are not separable, so they
/// are accounted together).
#[derive(Debug)]
pub struct ShardFanIn {
    rows: Vec<AtomicU64>,
    depth: u32,
    merge_us: AtomicU64,
}

impl ShardFanIn {
    pub(crate) fn new(shards: usize) -> ShardFanIn {
        ShardFanIn {
            rows: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            depth: if shards <= 1 {
                0
            } else {
                (shards - 1).ilog2() + 1
            },
            merge_us: AtomicU64::new(0),
        }
    }

    /// Rows pulled from each shard so far.
    pub fn rows(&self) -> Vec<u64> {
        self.rows
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of shards feeding the merge.
    pub fn shards(&self) -> usize {
        self.rows.len()
    }

    /// Tournament-tree depth (⌈log₂ shards⌉; 0 unsharded).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Wall time spent in the merge machinery so far, µs (0 when
    /// recording is disabled).
    pub fn merge_us(&self) -> u64 {
        self.merge_us.load(Ordering::Relaxed)
    }
}

fn to_core(a: RankedAnswer) -> CoreAnswer<Cost> {
    CoreAnswer {
        cost: a.cost,
        values: a.values,
    }
}

/// Batch size cap for shard refills: large enough to amortize merge
/// bookkeeping, small enough to keep the any-k "pay per answer"
/// promise — a top-10 request never drains thousands per shard.
const MAX_BATCH: usize = 512;

struct ShardSource {
    stream: CanonicalOrder<Cost, Box<dyn Iterator<Item = CoreAnswer<Cost>> + Send>>,
    buf: VecDeque<CoreAnswer<Cost>>,
    done: bool,
    /// Shared fan-in telemetry (rows pulled are credited per shard).
    fan_in: Arc<ShardFanIn>,
    /// This source's shard index.
    index: usize,
}

impl ShardSource {
    /// Pull up to `batch` answers into the buffer.
    fn refill(&mut self, batch: usize) {
        let mut pulled = 0u64;
        for _ in 0..batch {
            match self.stream.next() {
                Some(a) => {
                    self.buf.push_back(a);
                    pulled += 1;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if pulled > 0 {
            self.fan_in.rows[self.index].fetch_add(pulled, Ordering::Relaxed);
        }
    }
}

/// Strict head comparator: a live buffer beats an exhausted one, then
/// (cost, output tuple, shard index) — the canonical cross-shard
/// tie-break. Total because shard indexes differ.
fn beats(sources: &[ShardSource], a: usize, b: usize) -> bool {
    match (sources[a].buf.front(), sources[b].buf.front()) {
        (Some(x), Some(y)) => x
            .cost
            .cmp(&y.cost)
            .then_with(|| x.values.cmp(&y.values))
            .then_with(|| a.cmp(&b))
            .is_lt(),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

/// The merged cursor over all shard streams.
struct ShardedIter {
    sources: Vec<ShardSource>,
    tree: TournamentTree,
    /// Per-source refill size; starts at 1 (flat time-to-first) and
    /// doubles up to [`MAX_BATCH`] as the cursor proves deep.
    batch: usize,
    /// Refill needy shards on worker threads when the host has cores
    /// to spare (cached once; scoped threads join before returning).
    parallel: bool,
    primed: bool,
    /// Shared fan-in telemetry for this merged stream.
    fan_in: Arc<ShardFanIn>,
    /// `Some` when recording is enabled: refill rounds charge their
    /// wall time to the fan-in's merge accounting.
    clock: Option<Arc<dyn Clock>>,
}

impl ShardedIter {
    /// Top up every empty, unfinished source, then rebuild the tree.
    fn refill_round(&mut self) {
        let t0 = self.clock.as_ref().map(|c| c.now_us());
        let batch = self.batch;
        let mut needy: Vec<&mut ShardSource> = self
            .sources
            .iter_mut()
            .filter(|s| s.buf.is_empty() && !s.done)
            .collect();
        if self.parallel && needy.len() >= 2 {
            std::thread::scope(|scope| {
                for s in needy {
                    scope.spawn(move || s.refill(batch));
                }
            });
        } else {
            for s in needy.iter_mut() {
                s.refill(batch);
            }
        }
        self.batch = (self.batch * 2).min(MAX_BATCH);
        let sources = &self.sources;
        self.tree.rebuild(|a, b| beats(sources, a, b));
        if let (Some(clock), Some(t0)) = (self.clock.as_ref(), t0) {
            self.fan_in
                .merge_us
                .fetch_add(clock.now_us().saturating_sub(t0), Ordering::Relaxed);
        }
    }
}

impl Iterator for ShardedIter {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.primed {
            self.primed = true;
            self.refill_round();
        }
        let w = self.tree.winner()?;
        // Invariant: every source is non-empty or done, so an empty
        // winner means every shard is exhausted.
        let head = self.sources[w].buf.pop_front()?;
        if self.sources[w].buf.is_empty() && !self.sources[w].done {
            self.refill_round();
        } else {
            let sources = &self.sources;
            self.tree.replay(w, |a, b| beats(sources, a, b));
        }
        Some(RankedAnswer {
            cost: head.cost,
            values: head.values,
        })
    }
}

impl RankedStream {
    /// Re-emit this stream with equal-cost tie groups in the canonical
    /// order (sorted by output tuple). Costs and the answer multiset
    /// are untouched; lookahead is bounded by the largest tie group.
    /// A sharded merged stream is *already* canonical — this adapter
    /// puts a single-engine stream into the same total order, making
    /// the two byte-comparable.
    pub fn canonical_ties(self) -> RankedStream {
        let RankedStream { inner, plan } = self;
        let canon = CanonicalOrder::new(inner.map(to_core)).map(|a| RankedAnswer {
            cost: a.cost,
            values: a.values,
        });
        RankedStream {
            inner: Box::new(canon),
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankSpec;
    use anyk_query::cq::{path_query, triangle_query};
    use anyk_storage::{RelationBuilder, Schema};

    fn assert_sharing<T: Clone + Send + Sync>() {}

    #[test]
    fn sharded_engine_is_clone_send_sync() {
        assert_sharing::<ShardedEngine>();
        assert_sharing::<ShardedPrepared>();
    }

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn path_catalog() -> (ConjunctiveQuery, Catalog) {
        let q = path_query(2);
        let mut catalog = Catalog::new();
        catalog.register(
            "R1",
            edge_rel(&[(1, 2, 0.1), (1, 3, 0.2), (2, 4, 0.3), (5, 6, 0.4)]),
        );
        catalog.register(
            "R2",
            edge_rel(&[(2, 7, 0.5), (3, 7, 0.1), (4, 8, 0.2), (6, 9, 0.9)]),
        );
        (q, catalog)
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let (_, catalog) = path_catalog();
        match ShardedEngine::new(catalog, 0) {
            Err(EngineError::ZeroShards) => {}
            other => panic!("expected ZeroShards, got {other:?}"),
        }
    }

    #[test]
    fn reserved_relation_names_are_rejected() {
        let mut catalog = Catalog::new();
        catalog.register("R#frag", edge_rel(&[(1, 2, 0.0)]));
        match ShardedEngine::new(catalog, 2) {
            Err(EngineError::ReservedRelationName { relation }) => {
                assert_eq!(relation, "R#frag");
            }
            other => panic!("expected ReservedRelationName, got {other:?}"),
        }
        let (_, catalog) = path_catalog();
        let sharded = ShardedEngine::new(catalog, 2).unwrap();
        match sharded.register("bad#name", edge_rel(&[(1, 2, 0.0)])) {
            Err(EngineError::ReservedRelationName { .. }) => {}
            other => panic!("expected ReservedRelationName, got {other:?}"),
        }
    }

    #[test]
    fn sharded_stream_matches_canonical_single_engine_stream() {
        let (q, catalog) = path_catalog();
        let single = Engine::new(catalog.clone());
        for shards in [1usize, 2, 3, 5] {
            let sharded = ShardedEngine::new(catalog.clone(), shards).unwrap();
            for rank in [RankSpec::Sum, RankSpec::Max] {
                let want: Vec<_> = single
                    .query(q.clone())
                    .rank_by(rank)
                    .plan()
                    .unwrap()
                    .canonical_ties()
                    .collect();
                let got: Vec<_> = sharded.stream(&q, rank).unwrap().collect();
                assert_eq!(got, want, "shards={shards} rank={rank:?}");
            }
        }
    }

    #[test]
    fn cyclic_routes_shard_too() {
        let q = triangle_query();
        let rel = edge_rel(&[
            (1, 2, 0.1),
            (2, 3, 0.2),
            (3, 1, 0.3),
            (2, 1, 0.4),
            (3, 2, 0.5),
            (1, 3, 0.6),
            (4, 5, 0.7),
        ]);
        let single = Engine::try_from_query_bindings(&q, vec![rel.clone(); 3]).unwrap();
        let sharded = ShardedEngine::try_from_query_bindings(&q, vec![rel.clone(); 3], 3).unwrap();
        let want: Vec<_> = single
            .query(q.clone())
            .rank_by(RankSpec::Sum)
            .plan()
            .unwrap()
            .canonical_ties()
            .collect();
        let got: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn explain_shows_fan_out_roles() {
        let (q, catalog) = path_catalog();
        let sharded = ShardedEngine::new(catalog, 4).unwrap();
        let text = sharded.explain(&q, RankSpec::Sum).unwrap();
        assert!(text.contains("shard fan-out: 4 shard(s)"), "{text}");
        assert!(text.contains("scatter (hash-partitioned pivot)"), "{text}");
        assert!(text.contains("replicated"), "{text}");
        // The facade explains the original query, not the rewrite.
        assert!(!text.contains(FRAGMENT_SUFFIX), "{text}");
    }

    #[test]
    fn register_updates_all_shards_and_bumps_epoch() {
        let (q, catalog) = path_catalog();
        let sharded = ShardedEngine::new(catalog, 3).unwrap();
        assert_eq!(sharded.epoch(), 0);
        let before: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();

        // Replace R2 so path 1-3-7 disappears.
        sharded
            .register("R2", edge_rel(&[(2, 7, 0.5), (4, 8, 0.2)]))
            .unwrap();
        assert_eq!(sharded.epoch(), 1);
        let after: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();
        assert!(after.len() < before.len());
        for engine in sharded.shard_engines() {
            assert!(engine.catalog().get("R2#frag").is_some());
        }

        assert!(sharded.remove("R2"));
        assert_eq!(sharded.epoch(), 2);
        assert!(sharded.stream(&q, RankSpec::Sum).is_err());
        assert!(!sharded.remove("R2"), "already gone");
    }

    #[test]
    fn open_streams_keep_their_snapshot_across_updates() {
        let (q, catalog) = path_catalog();
        let sharded = ShardedEngine::new(catalog, 2).unwrap();
        let want: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();
        let mut stream = sharded.stream(&q, RankSpec::Sum).unwrap();
        let first = stream.next().unwrap();
        sharded.register("R1", edge_rel(&[(9, 9, 9.0)])).unwrap();
        let rest: Vec<_> = stream.collect();
        let mut got = vec![first];
        got.extend(rest);
        assert_eq!(got, want, "mid-stream update must not leak in");
    }

    #[test]
    fn sharded_append_matches_single_engine_and_counts_once() {
        let (q, catalog) = path_catalog();
        let single = Engine::new(catalog.clone());
        let sharded = ShardedEngine::new(catalog, 3).unwrap();

        match sharded.append("bad#name", edge_rel(&[(1, 2, 0.0)])) {
            Err(EngineError::ReservedRelationName { .. }) => {}
            other => panic!("expected ReservedRelationName, got {other:?}"),
        }

        let batch = edge_rel(&[(1, 7, 0.05), (9, 4, 0.6)]);
        single.append("R1", batch.clone()).unwrap();
        sharded.append("R1", batch).unwrap();
        assert_eq!(sharded.epoch(), 0, "appends never bump the coord epoch");

        let want: Vec<_> = single
            .prepare(q.clone(), RankSpec::Sum)
            .unwrap()
            .stream()
            .canonical_ties()
            .collect();
        let got: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();
        assert_eq!(got, want, "delta-bearing sharded stream diverges");
        assert!(
            got.iter().any(|a| a.ints() == vec![9, 4, 8]),
            "the appended row must join: {got:?}"
        );

        let w = sharded.write_stats();
        assert_eq!(w.appends, 1, "logical appends counted once, not per shard");
        assert_eq!(w.appended_rows, 2);

        assert!(sharded.compact("R1").unwrap());
        assert!(!sharded.compact("R1").unwrap());
        let after: Vec<_> = sharded.stream(&q, RankSpec::Sum).unwrap().collect();
        assert_eq!(after, want, "compaction must not change answers");
        assert_eq!(sharded.write_stats().compactions, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let (q, catalog) = path_catalog();
        let sharded = ShardedEngine::new(catalog, 2).unwrap();
        let single_capacity = Engine::new(Catalog::new()).cache_stats().capacity;
        assert_eq!(sharded.cache_stats().capacity, 2 * single_capacity);
        let _ = sharded.stream(&q, RankSpec::Sum).unwrap();
        let _ = sharded.stream(&q, RankSpec::Sum).unwrap();
        let stats = sharded.cache_stats();
        assert_eq!(stats.misses, 2, "one cold prepare per shard");
        assert_eq!(stats.hits, 2, "one warm prepare per shard");
        // Index capacity is per shard (each has its own catalog).
        let idx = sharded.index_stats();
        assert_eq!(
            idx.capacity_bytes,
            2 * anyk_storage::DEFAULT_INDEX_CATALOG_BYTES as u64
        );
    }
}
