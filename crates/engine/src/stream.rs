//! The erased ranked stream every route funnels into.

use crate::plan::Plan;
use crate::rank::Cost;
use anyk_obs::ObsRegistry;
use anyk_storage::Value;
use std::sync::Arc;

/// One answer from the unified engine: erased cost + output tuple
/// (one [`Value`] per query variable, in `VarId` order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedAnswer {
    /// Cost under the requested [`RankSpec`](crate::RankSpec);
    /// answers arrive in non-decreasing cost order.
    pub cost: Cost,
    /// The output tuple.
    pub values: Vec<Value>,
}

impl RankedAnswer {
    /// The tuple as `i64`s — convenience for integer-keyed workloads
    /// (graph patterns), where every output value is a node id.
    ///
    /// # Panics
    ///
    /// If any value is not a [`Value::Int`] (e.g. a float attribute or
    /// an interned string). Servers handling mixed-type catalogs should
    /// use [`RankedAnswer::try_ints`] instead.
    pub fn ints(&self) -> Vec<i64> {
        self.try_ints()
            // LINT-ALLOW(no-panic-hot-path): documented panicking convenience; servers use try_ints.
            .expect("RankedAnswer::ints on non-Int values; use try_ints")
    }

    /// The tuple as `i64`s, or `None` if any value is not an
    /// integer — the non-panicking form of [`RankedAnswer::ints`].
    pub fn try_ints(&self) -> Option<Vec<i64>> {
        self.values.iter().map(|v| v.as_int()).collect()
    }
}

/// A planner-routed ranked enumeration stream: answers arrive in
/// non-decreasing cost order, one at a time, any `k`, without fixing
/// `k` in advance (the any-k contract, erased over route and ranking).
///
/// The stream is `Send` (its state is heaps/cursors over `Arc`-shared
/// prepared data), so it can be handed to a worker thread; it is *not*
/// `Sync` — for concurrent serving, spawn one stream per thread from a
/// shared [`PreparedQuery`](crate::PreparedQuery).
pub struct RankedStream {
    pub(crate) inner: Box<dyn Iterator<Item = RankedAnswer> + Send>,
    pub(crate) plan: Plan,
}

impl std::fmt::Debug for RankedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedStream")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl RankedStream {
    /// The plan that produced this stream.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The first `k` answers (fewer if the query has fewer). The
    /// stream advances: a second `top_k(k)` returns the *next* k.
    pub fn top_k(&mut self, k: usize) -> Vec<RankedAnswer> {
        self.next_batch(k)
    }

    /// Pull up to `n` more answers.
    pub fn next_batch(&mut self, n: usize) -> Vec<RankedAnswer> {
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            match self.inner.next() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }
}

impl Iterator for RankedStream {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        self.inner.next()
    }
}

/// Sample the inter-answer delay once per this many pulls: the
/// sampler reads the clock only at window edges, so per-answer
/// instrumentation cost is one increment and one branch.
pub(crate) const SAMPLE_EVERY: u64 = 16;

/// The per-pull delay sampler wrapped around an instrumented stream:
/// every [`SAMPLE_EVERY`]th pull it records the window's mean
/// per-answer delay into the registry's delay histogram.
struct SampledPulls {
    inner: Box<dyn Iterator<Item = RankedAnswer> + Send>,
    obs: Arc<ObsRegistry>,
    pulls: u64,
    window_start_us: u64,
}

impl Iterator for SampledPulls {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        let item = self.inner.next();
        if item.is_some() {
            self.pulls += 1;
            if self.pulls.is_multiple_of(SAMPLE_EVERY) {
                let now = self.obs.now_us();
                let window = now.saturating_sub(self.window_start_us);
                self.obs.record_delay(window / SAMPLE_EVERY);
                self.window_start_us = now;
            }
        }
        item
    }
}

impl RankedStream {
    /// Wrap this stream with the registry's per-pull delay sampler.
    /// Answers and order are untouched; only timing is observed. The
    /// engine applies this automatically on its own streaming paths;
    /// it is public for callers assembling streams from
    /// [`ShardedPrepared::stream_traced`](crate::ShardedPrepared).
    pub fn sampled(self, obs: Arc<ObsRegistry>) -> RankedStream {
        let window_start_us = obs.now_us();
        RankedStream {
            inner: Box::new(SampledPulls {
                inner: self.inner,
                obs,
                pulls: 0,
                window_start_us,
            }),
            plan: self.plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AnyKVariant, IndexUse, Plan, Route};
    use crate::rank::RankSpec;
    use anyk_query::cq::triangle_query;
    use anyk_storage::Weight;

    fn dummy_stream(costs: Vec<f64>) -> RankedStream {
        RankedStream {
            inner: Box::new(costs.into_iter().map(|c| RankedAnswer {
                cost: Cost::Scalar(Weight::new(c)),
                values: vec![Value::Int(1)],
            })),
            plan: Plan {
                query: triangle_query(),
                route: Route::Triangle,
                rank: RankSpec::Sum,
                variant: Some(AnyKVariant::default()),
                width: 1.5,
                index: IndexUse::Built,
                deltas: 0,
            },
        }
    }

    #[test]
    fn batching_advances() {
        let mut s = dummy_stream(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.plan().route.label(), "triangle");
        let first = s.top_k(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].cost.scalar(), Some(1.0));
        assert_eq!(first[0].ints(), vec![1]);
        let rest = s.next_batch(5);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].cost.scalar(), Some(3.0));
        assert!(s.next_batch(1).is_empty());
    }

    #[test]
    fn iterator_contract() {
        let s = dummy_stream(vec![0.5, 0.25]);
        let all: Vec<_> = s.collect();
        assert_eq!(all.len(), 2);
    }
}
