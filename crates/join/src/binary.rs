//! Left-deep binary hash-join plans — the "two-relations-at-a-time"
//! approach favored by classical optimizers (§3 of the paper), which is
//! provably suboptimal on cyclic queries: on the worst-case triangle
//! instance *every* join order materializes Θ(n²) intermediate tuples
//! while the output is only O(n^1.5).
//!
//! Instrumented: reports the peak and total intermediate result sizes so
//! experiments can show *why* binary plans lose (E1/E2).

use anyk_query::cq::{ConjunctiveQuery, VarId};
use anyk_storage::{HashIndex, Relation, RelationBuilder, Schema, Value, Weight};

/// Statistics from executing a binary plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryJoinStats {
    /// Rows of the largest intermediate relation (including the final
    /// result).
    pub max_intermediate: usize,
    /// Sum of all intermediate relation sizes (the RAM-model cost the
    /// tutorial's Part 1 critique is about).
    pub total_intermediate: usize,
}

/// Execute the join of all atoms in the given left-deep `order`
/// (indices into the atom list; must be a permutation). Returns the
/// materialized result (schema = all variables in `VarId` order, weight
/// = sum) and instrumentation.
///
/// Atoms joined with no shared variables degenerate to cartesian
/// products, as a real executor would.
pub fn binary_join(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    order: &[usize],
) -> (Relation, BinaryJoinStats) {
    assert_eq!(rels.len(), q.num_atoms());
    assert_eq!(order.len(), q.num_atoms());
    let mut stats = BinaryJoinStats {
        max_intermediate: 0,
        total_intermediate: 0,
    };

    // Intermediate: columns = bound variables in binding order.
    let first = order[0];
    let mut bound: Vec<VarId> = Vec::new();
    let mut acc = atom_to_intermediate(q, &rels[first], first, &mut bound);
    stats.max_intermediate = acc.len();
    stats.total_intermediate = acc.len();

    for &ai in &order[1..] {
        let atom = q.atom(ai);
        let rel = &rels[ai];
        // Shared variables between accumulated binding and this atom.
        let shared: Vec<VarId> = atom
            .vars
            .iter()
            .copied()
            .filter(|v| bound.contains(v))
            .collect();
        let acc_key: Vec<usize> = shared
            .iter()
            .map(|v| bound.iter().position(|b| b == v).unwrap())
            .collect();
        let rel_key: Vec<usize> = shared.iter().map(|v| atom.positions_of(*v)[0]).collect();
        // New columns contributed by this atom (first occurrence per new
        // variable).
        let mut new_vars: Vec<(VarId, usize)> = Vec::new();
        for (pos, &v) in atom.vars.iter().enumerate() {
            if !bound.contains(&v) && !new_vars.iter().any(|&(u, _)| u == v) {
                new_vars.push((v, pos));
            }
        }
        let mut next_bound = bound.clone();
        next_bound.extend(new_vars.iter().map(|&(v, _)| v));
        let next_schema = Schema::new(next_bound.iter().map(|&v| q.var_name(v).to_string()));
        let mut out = RelationBuilder::new(next_schema);

        // Hash the smaller side; probe with the larger. For simplicity
        // (and because the adversarial instances are symmetric) we
        // always build on the atom relation.
        let idx = HashIndex::build(rel, &rel_key);
        let mut key = Vec::with_capacity(acc_key.len());
        let mut row_buf: Vec<Value> = Vec::with_capacity(next_bound.len());
        for i in 0..acc.len() as u32 {
            acc.key_into(i, &acc_key, &mut key);
            for &r in idx.get(&key) {
                // Repeated-variable consistency within the atom.
                let tuple = rel.row(r);
                let consistent = atom.vars.iter().enumerate().all(|(pos, &v)| {
                    let first_pos = atom.positions_of(v)[0];
                    tuple[pos] == tuple[first_pos]
                });
                if !consistent {
                    continue;
                }
                row_buf.clear();
                row_buf.extend_from_slice(acc.row(i));
                row_buf.extend(new_vars.iter().map(|&(_, pos)| tuple[pos]));
                let w = acc.weight(i).get() + rel.weight(r).get();
                out.push(&row_buf, Weight::new(w));
            }
        }
        acc = out.finish();
        bound = next_bound;
        stats.max_intermediate = stats.max_intermediate.max(acc.len());
        stats.total_intermediate += acc.len();
    }

    // Reorder columns into VarId order for a canonical output schema.
    let positions: Vec<usize> = (0..q.num_vars())
        .map(|v| {
            bound
                .iter()
                .position(|&b| b == v)
                .expect("all variables bound after full plan")
        })
        .collect();
    let result = acc
        .project(&positions)
        .with_schema(Schema::new(q.var_names().iter().cloned()));
    (result, stats)
}

/// Promote a base relation to intermediate form: one column per
/// *distinct* variable (dropping repeated-variable duplicates after
/// filtering for consistency).
fn atom_to_intermediate(
    q: &ConjunctiveQuery,
    rel: &Relation,
    atom_idx: usize,
    bound: &mut Vec<VarId>,
) -> Relation {
    let atom = q.atom(atom_idx);
    let mut first_pos: Vec<(VarId, usize)> = Vec::new();
    for (pos, &v) in atom.vars.iter().enumerate() {
        if !first_pos.iter().any(|&(u, _)| u == v) {
            first_pos.push((v, pos));
        }
    }
    bound.clear();
    bound.extend(first_pos.iter().map(|&(v, _)| v));
    let schema = Schema::new(bound.iter().map(|&v| q.var_name(v).to_string()));
    let mut b = RelationBuilder::with_capacity(schema, rel.len());
    let mut row_buf = Vec::with_capacity(first_pos.len());
    for i in 0..rel.len() as u32 {
        let tuple = rel.row(i);
        let consistent = atom.vars.iter().enumerate().all(|(pos, &v)| {
            let fp = atom.positions_of(v)[0];
            tuple[pos] == tuple[fp]
        });
        if !consistent {
            continue;
        }
        row_buf.clear();
        row_buf.extend(first_pos.iter().map(|&(_, pos)| tuple[pos]));
        b.push(&row_buf, rel.weight(i));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, triangle_query, QueryBuilder};
    use anyk_storage::RelationBuilder;

    fn edge_rel(cols: [&str; 2], edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y) in edges {
            b.push_ints(&[x, y], 1.0);
        }
        b.finish()
    }

    #[test]
    fn two_way_join() {
        let q = path_query(2);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2), (4, 2), (5, 9)]),
            edge_rel(["b", "c"], &[(2, 7), (2, 8)]),
        ];
        let (res, stats) = binary_join(&q, &rels, &[0, 1]);
        assert_eq!(res.len(), 4);
        assert_eq!(stats.max_intermediate, 4);
        // Columns in VarId order: x0, x1, x2.
        assert_eq!(res.schema().attrs(), &["x0", "x1", "x2"]);
    }

    #[test]
    fn triangle_all_orders_agree() {
        let q = triangle_query();
        let edges = [(1, 2), (2, 3), (3, 1), (2, 1), (1, 1)];
        let rels: Vec<Relation> = (0..3)
            .map(|i| {
                edge_rel([["p", "q"][0], ["p", "q"][1]], &edges)
                    .with_schema(Schema::new([format!("u{i}"), format!("v{i}")]))
            })
            .collect();
        let mut counts = Vec::new();
        for order in [[0, 1, 2], [1, 2, 0], [2, 0, 1], [0, 2, 1]] {
            let (res, _) = binary_join(&q, &rels, &order);
            counts.push(res.len());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(counts[0] > 0);
    }

    #[test]
    fn weights_sum() {
        let q = path_query(2);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2)]),
            edge_rel(["b", "c"], &[(2, 3)]),
        ];
        let (res, _) = binary_join(&q, &rels, &[0, 1]);
        assert_eq!(res.weight(0), Weight::new(2.0));
    }

    #[test]
    fn cartesian_when_disconnected() {
        let q = QueryBuilder::new()
            .atom("R", &["a", "b"])
            .atom("S", &["c", "d"])
            .build();
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2), (3, 4)]),
            edge_rel(["c", "d"], &[(5, 6), (7, 8), (9, 10)]),
        ];
        let (res, _) = binary_join(&q, &rels, &[0, 1]);
        assert_eq!(res.len(), 6);
    }

    #[test]
    fn repeated_var_in_atom() {
        let q = QueryBuilder::new()
            .atom("E", &["x", "x"])
            .atom("F", &["x", "y"])
            .build();
        let rels = vec![
            edge_rel(["u", "v"], &[(1, 1), (1, 2), (2, 2)]),
            edge_rel(["u", "v"], &[(1, 5), (2, 6), (3, 7)]),
        ];
        let (res, _) = binary_join(&q, &rels, &[0, 1]);
        // x in {1,2}; joins with (1,5) and (2,6).
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn quadratic_intermediate_on_worst_case_triangle() {
        // The §3 instance: R=S=T={(i,1)} ∪ {(1,j)}: binary plans blow up.
        let n = 40i64;
        let mut edges = Vec::new();
        for i in 1..=n / 2 {
            edges.push((i, 1));
            edges.push((1, i));
        }
        let q = triangle_query();
        let rels: Vec<Relation> = (0..3)
            .map(|i| {
                edge_rel(["p", "q"], &edges)
                    .with_schema(Schema::new([format!("u{i}"), format!("v{i}")]))
            })
            .collect();
        let (_, stats) = binary_join(&q, &rels, &[0, 1, 2]);
        // First join R(x1,x2) ⋈ S(x2,x3): pairs (i,1,j) ~ (n/2)^2.
        assert!(
            stats.max_intermediate >= (n as usize / 2).pow(2),
            "expected quadratic blowup, got {}",
            stats.max_intermediate
        );
    }
}
