//! Boolean query evaluation — "is there any answer?" — with early exit.
//!
//! §1 of the paper: the Boolean 4-cycle can be answered in O~(n^1.5),
//! far below the worst-case output bound O(n²) a WCO join pays, and the
//! same case-split machinery then powers ranked enumeration: for small
//! `k`, finding the k lightest 4-cycles costs about as much as the
//! Boolean query.

use anyk_query::cq::ConjunctiveQuery;
use anyk_query::join_tree::JoinTree;
use anyk_storage::Relation;
use std::ops::ControlFlow;

use crate::c4::c4_cases;
use crate::semijoin::full_reducer;

/// Boolean evaluation of an *acyclic* query: run the full reducer; the
/// query has an answer iff every relation retains at least one tuple.
pub fn boolean_acyclic(q: &ConjunctiveQuery, tree: &JoinTree, mut rels: Vec<Relation>) -> bool {
    full_reducer(q, tree, &mut rels);
    rels.iter().all(|r| !r.is_empty())
}

/// Boolean evaluation via Generic-Join with early exit (works for any
/// query, cost up to the AGM bound).
pub fn boolean_generic_join(q: &ConjunctiveQuery, rels: &[Relation]) -> bool {
    let mut found = false;
    crate::generic_join::generic_join(q, rels, None, &mut |_, _| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// O~(n^1.5) Boolean 4-cycle detection through the union-of-trees plan
/// (§1's "Is there any 4-cycle?" in O(n^1.5)).
pub fn c4_exists(rels: &[Relation], threshold: usize) -> bool {
    for case in c4_cases(rels, threshold) {
        if boolean_acyclic(&case.query, &case.tree, case.relations) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{cycle_query, path_query, triangle_query};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y) in edges {
            b.push_ints(&[x, y], 0.0);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!(),
        }
    }

    #[test]
    fn acyclic_boolean() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let yes = vec![edge_rel(&[(1, 2)]), edge_rel(&[(2, 3)])];
        let no = vec![edge_rel(&[(1, 2)]), edge_rel(&[(9, 3)])];
        assert!(boolean_acyclic(&q, &tree, yes));
        assert!(!boolean_acyclic(&q, &tree, no));
    }

    #[test]
    fn triangle_boolean_gj() {
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1)]);
        assert!(boolean_generic_join(&q, &[e.clone(), e.clone(), e.clone()]));
        let e2 = edge_rel(&[(1, 2), (2, 3)]);
        assert!(!boolean_generic_join(
            &q,
            &[e2.clone(), e2.clone(), e2.clone()]
        ));
    }

    #[test]
    fn c4_detection_agrees_with_gj() {
        let q = cycle_query(4);
        let instances: Vec<Vec<(i64, i64)>> = vec![
            vec![(1, 2), (2, 3), (3, 4), (4, 1)],
            vec![(1, 2), (2, 3), (3, 4)], // open path, no cycle
            vec![(1, 1)],                 // self loop: 1,1,1,1 cycle!
            vec![(1, 2), (2, 1)],         // 2-cycle doubles as 4-cycle
            vec![(5, 6), (7, 8)],
        ];
        for edges in instances {
            let e = edge_rel(&edges);
            let rels = vec![e.clone(), e.clone(), e.clone(), e];
            let expect = boolean_generic_join(&q, &rels);
            for thr in [0usize, 1, 2, 100] {
                assert_eq!(
                    c4_exists(&rels, thr),
                    expect,
                    "edges {edges:?} threshold {thr}"
                );
            }
        }
    }
}
