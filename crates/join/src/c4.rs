//! The submodular-width plan for the 4-cycle — §3's headline example:
//! fractional hypertree width 2, but submodular width 1.5, achieved by a
//! **union of multiple trees**, each receiving a subset of the input.
//!
//! Query: `R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ R4(x4,x1)`.
//! With `Δ = ceil(sqrt(n))` and heavy = degree > Δ, the output is
//! partitioned into three disjoint cases, each solved by an *acyclic*
//! instance (or a family of them):
//!
//! * **A** — `x1` heavy (at most `n/Δ ≈ sqrt(n)` such values): for each
//!   heavy value `v`, the residual query is a path
//!   `A1_v(x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ A4_v(x4)` of input size O(n).
//! * **B** — `x1` light and `x3` heavy: symmetric family of paths
//!   `A2_u(x2) ⋈ R1ˡ(x1,x2) ⋈ R4(x4,x1) ⋈ A3_u(x4)`.
//! * **C** — both light: two materialized bags
//!   `W1(x1,x2,x4) = R1ˡ ⋈ R4` and `W2(x2,x3,x4) = R2 ⋈ R3ˡ`, each of
//!   size ≤ Δ·n = O(n^1.5), joined as a two-node acyclic tree.
//!
//! Total preprocessing O~(n^1.5); enumeration output-linear. Batch,
//! Boolean, and ranked execution all share this case construction
//! (ranked enumeration merges the per-case ranked streams in
//! `anyk_core::cyclic`).

use anyk_query::cq::{ConjunctiveQuery, QueryBuilder, VarId};
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_query::join_tree::JoinTree;
use anyk_storage::{
    FxHashMap, FxHashSet, HashIndex, Relation, RelationBuilder, Schema, Value, Weight,
};

/// Where an original output variable's value comes from in a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOut {
    /// The variable is fixed to a constant in this case (heavy value).
    Fixed(Value),
    /// Read from the case query's variable.
    Var(VarId),
}

/// One acyclic instance of the union-of-trees plan.
#[derive(Debug)]
pub struct C4Case {
    /// Human-readable label (`heavy-x1=v`, `light-light`, ...).
    pub label: String,
    /// The acyclic case query over derived relations.
    pub query: ConjunctiveQuery,
    /// A join tree for it.
    pub tree: JoinTree,
    /// Relations parallel to the case query's atoms. Weights are
    /// assigned so each original tuple's weight is counted exactly once
    /// per answer.
    pub relations: Vec<Relation>,
    /// Projection of the case's answers back to `(x1, x2, x3, x4)`.
    pub out: [CaseOut; 4],
}

/// Per-value occurrence counts of column `col` of `rel`.
fn degrees(rel: &Relation, col: usize) -> FxHashMap<Value, u32> {
    let mut d: FxHashMap<Value, u32> = FxHashMap::default();
    d.reserve(rel.len());
    for i in 0..rel.len() as u32 {
        *d.entry(rel.row(i)[col]).or_insert(0) += 1;
    }
    d
}

/// Rows of `rel` whose `col` value passes `pred`, as a new relation.
fn filter_by<F: Fn(Value) -> bool>(rel: &Relation, col: usize, pred: F) -> Relation {
    let mut b = RelationBuilder::new(rel.schema().clone());
    for i in 0..rel.len() as u32 {
        let row = rel.row(i);
        if pred(row[col]) {
            b.push(row, rel.weight(i));
        }
    }
    b.finish()
}

/// Unary projection `{ rel[keep_col] : rel[match_col] = v }`, carrying
/// the original tuples' weights.
fn residual_unary(
    rel: &Relation,
    match_col: usize,
    v: Value,
    keep_col: usize,
    name: &str,
) -> Relation {
    let mut b = RelationBuilder::new(Schema::new([name.to_string()]));
    for i in 0..rel.len() as u32 {
        let row = rel.row(i);
        if row[match_col] == v {
            b.push(&[row[keep_col]], rel.weight(i));
        }
    }
    b.finish()
}

fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
    match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => panic!("case query must be acyclic"),
    }
}

/// Build the full union-of-trees case list for the 4-cycle instance
/// `rels = [R1, R2, R3, R4]` (each binary, oriented as in
/// [`anyk_query::cq::cycle_query`]). `threshold` is the heavy-degree
/// cutoff Δ (use [`anyk_query::cycles::heavy_threshold`] of the max
/// relation size).
///
/// Weights are merged with `+` — the paper's default Sum ranking. For
/// any other scalar ranking use [`c4_cases_with`] and pass its
/// weight-level combine: the light-light case pre-joins `R1ˡ ⋈ R4` and
/// `R2 ⋈ R3ˡ` into bag relations, so two edge weights collapse into
/// one bag-tuple weight *under the ranking's own `⊗`* — summing here
/// and then `max`-ing downstream would rank wrong answers first.
pub fn c4_cases(rels: &[Relation], threshold: usize) -> Vec<C4Case> {
    c4_cases_with(rels, threshold, |a, b| Weight::new(a.get() + b.get()))
}

/// [`c4_cases`] with an explicit weight merge for the pre-joined
/// light-light bags. `merge` must be the weight-level `⊗` of the
/// ranking the cases will be enumerated under (commutative, since the
/// two bags cover the four atoms in different orders).
pub fn c4_cases_with(
    rels: &[Relation],
    threshold: usize,
    merge: impl Fn(Weight, Weight) -> Weight,
) -> Vec<C4Case> {
    assert_eq!(rels.len(), 4, "4-cycle needs exactly 4 relations");
    for r in rels {
        assert_eq!(r.arity(), 2, "4-cycle relations are binary");
    }
    let (r1, r2, r3, r4) = (&rels[0], &rels[1], &rels[2], &rels[3]);
    let mut cases = Vec::new();

    // Heavy sets: H1 = heavy x1 values (by out-degree in R1), H3 = heavy
    // x3 values (by out-degree in R3).
    let deg1 = degrees(r1, 0);
    let deg3 = degrees(r3, 0);
    let h1: FxHashSet<Value> = deg1
        .iter()
        .filter_map(|(&v, &d)| (d as usize > threshold).then_some(v))
        .collect();
    let h3: FxHashSet<Value> = deg3
        .iter()
        .filter_map(|(&v, &d)| (d as usize > threshold).then_some(v))
        .collect();

    // --- Case A: one path instance per heavy x1 value v. ---
    // A1_v(x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ A4_v(x4).
    let case_a_query = QueryBuilder::new()
        .atom("A1", &["x2"])
        .atom("R2", &["x2", "x3"])
        .atom("R3", &["x3", "x4"])
        .atom("A4", &["x4"])
        .build();
    let mut heavy1: Vec<Value> = h1.iter().copied().collect();
    heavy1.sort();
    for &v in &heavy1 {
        let a1 = residual_unary(r1, 0, v, 1, "x2");
        let a4 = residual_unary(r4, 1, v, 0, "x4");
        if a1.is_empty() || a4.is_empty() {
            continue;
        }
        let q = case_a_query.clone();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: format!("heavy-x1={v}"),
            out: [
                CaseOut::Fixed(v),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Var(q.var("x3").unwrap()),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![a1, r2.clone(), r3.clone(), a4],
            query: q,
            tree,
        });
    }

    // --- Case B: x1 light, x3 heavy: per heavy u. ---
    // A2_u(x2) ⋈ R1ˡ(x1,x2) ⋈ R4(x4,x1) ⋈ A3_u(x4).
    let r1_light = filter_by(r1, 0, |v| !h1.contains(&v));
    let case_b_query = QueryBuilder::new()
        .atom("A2", &["x2"])
        .atom("R1", &["x1", "x2"])
        .atom("R4", &["x4", "x1"])
        .atom("A3", &["x4"])
        .build();
    let mut heavy3: Vec<Value> = h3.iter().copied().collect();
    heavy3.sort();
    for &u in &heavy3 {
        let a2 = residual_unary(r2, 1, u, 0, "x2");
        let a3 = residual_unary(r3, 0, u, 1, "x4");
        if a2.is_empty() || a3.is_empty() || r1_light.is_empty() {
            continue;
        }
        let q = case_b_query.clone();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: format!("light-x1,heavy-x3={u}"),
            out: [
                CaseOut::Var(q.var("x1").unwrap()),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Fixed(u),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![a2, r1_light.clone(), r4.clone(), a3],
            query: q,
            tree,
        });
    }

    // --- Case C: both light: two materialized bags of size <= Δ·n. ---
    // W1(x1,x2,x4) = R1ˡ ⋈ R4 (join on x1), weight w1 ⊗ w4.
    // W2(x2,x3,x4) = R2 ⋈ R3ˡ (join on x3), weight w2 ⊗ w3.
    let r3_light = filter_by(r3, 0, |v| !h3.contains(&v));
    let w1 = {
        let mut b = RelationBuilder::new(Schema::new(["x1", "x2", "x4"]));
        let idx = HashIndex::build(r4, &[1]); // R4(x4, x1) keyed by x1
        for i in 0..r1_light.len() as u32 {
            let row = r1_light.row(i);
            for &j in idx.get(&row[0..1]) {
                let w = merge(r1_light.weight(i), r4.weight(j));
                b.push(&[row[0], row[1], r4.row(j)[0]], w);
            }
        }
        b.finish()
    };
    let w2 = {
        let mut b = RelationBuilder::new(Schema::new(["x2", "x3", "x4"]));
        let idx = HashIndex::build(&r3_light, &[0]); // R3(x3, x4) keyed by x3
        for i in 0..r2.len() as u32 {
            let row = r2.row(i);
            for &j in idx.get(&row[1..2]) {
                let w = merge(r2.weight(i), r3_light.weight(j));
                b.push(&[row[0], row[1], r3_light.row(j)[1]], w);
            }
        }
        b.finish()
    };
    if !w1.is_empty() && !w2.is_empty() {
        let q = QueryBuilder::new()
            .atom("W1", &["x1", "x2", "x4"])
            .atom("W2", &["x2", "x3", "x4"])
            .build();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: "light-light".to_string(),
            out: [
                CaseOut::Var(q.var("x1").unwrap()),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Var(q.var("x3").unwrap()),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![w1, w2],
            query: q,
            tree,
        });
    }
    cases
}

/// Materialize all 4-cycle answers through the union-of-trees plan.
/// Output schema `(x1,x2,x3,x4)`, weight = sum of the four edge weights.
/// Equivalent to Generic-Join on the cycle, but O~(n^1.5 + r).
pub fn c4_join(rels: &[Relation], threshold: usize) -> Relation {
    let schema = Schema::new(["x1", "x2", "x3", "x4"]);
    let mut out = RelationBuilder::new(schema);
    for case in c4_cases(rels, threshold) {
        let nvars = case.query.num_vars();
        let mut row = vec![Value::Int(0); nvars];
        let q = &case.query;
        let tree = &case.tree;
        crate::yannakakis::yannakakis_for_each(q, tree, case.relations, |rels, by_node| {
            let w = crate::yannakakis::assemble_answer(q, tree, rels, by_node, &mut row);
            let mut orow = [Value::Int(0); 4];
            for (i, o) in case.out.iter().enumerate() {
                orow[i] = match *o {
                    CaseOut::Fixed(v) => v,
                    CaseOut::Var(cv) => row[cv],
                };
            }
            out.push(&orow, w);
        });
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::cycle_query;
    use anyk_query::cycles::heavy_threshold;
    use anyk_storage::RelationBuilder;

    fn edge_rel(edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (i, &(x, y)) in edges.iter().enumerate() {
            b.push_ints(&[x, y], 0.5 + i as f64);
        }
        b.finish()
    }

    fn check_against_generic_join(rels: &[Relation], threshold: usize) {
        let q = cycle_query(4);
        let (gj, _) = crate::generic_join::generic_join_materialize(&q, rels, None);
        let c4 = c4_join(rels, threshold);
        crate::nested_loop::assert_same_result(&gj, &c4);
    }

    #[test]
    fn simple_cycle_instance() {
        let e = edge_rel(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check_against_generic_join(&rels, 2);
    }

    #[test]
    fn star_heavy_instance() {
        // Hub node 1 has high degree -> exercises heavy cases.
        let mut edges = vec![];
        for i in 2..12 {
            edges.push((1, i));
            edges.push((i, 1));
        }
        let e = edge_rel(&edges);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check_against_generic_join(&rels, heavy_threshold(edges.len()));
    }

    #[test]
    fn threshold_extremes_agree() {
        let e = edge_rel(&[(1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        // All-heavy (threshold 0) and all-light (huge threshold) must
        // both still produce the same full result.
        check_against_generic_join(&rels, 0);
        check_against_generic_join(&rels, 1_000_000);
        check_against_generic_join(&rels, 1);
    }

    #[test]
    fn distinct_relations() {
        let rels = vec![
            edge_rel(&[(1, 2), (1, 3)]),
            edge_rel(&[(2, 5), (3, 5), (3, 6)]),
            edge_rel(&[(5, 7), (6, 7), (5, 8)]),
            edge_rel(&[(7, 1), (8, 1), (8, 2)]),
        ];
        check_against_generic_join(&rels, 1);
    }

    #[test]
    fn empty_input() {
        let rels = vec![
            edge_rel(&[]),
            edge_rel(&[(1, 2)]),
            edge_rel(&[(2, 3)]),
            edge_rel(&[(3, 1)]),
        ];
        let res = c4_join(&rels, 1);
        assert!(res.is_empty());
    }

    #[test]
    fn weights_sum_all_four_edges() {
        let rels = vec![
            edge_rel(&[(1, 2)]), // w = 0.5
            edge_rel(&[(2, 3)]), // w = 0.5
            edge_rel(&[(3, 4)]), // w = 0.5
            edge_rel(&[(4, 1)]), // w = 0.5
        ];
        let res = c4_join(&rels, 10);
        assert_eq!(res.len(), 1);
        assert!((res.weight(0).get() - 2.0).abs() < 1e-9);
    }
}
