//! The submodular-width plan for the 4-cycle — §3's headline example:
//! fractional hypertree width 2, but submodular width 1.5, achieved by a
//! **union of multiple trees**, each receiving a subset of the input.
//!
//! Query: `R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ R4(x4,x1)`.
//! With `Δ = ceil(sqrt(n))` and heavy = degree > Δ, the output is
//! partitioned into three disjoint cases, each solved by an *acyclic*
//! instance (or a family of them):
//!
//! * **A** — `x1` heavy (at most `n/Δ ≈ sqrt(n)` such values): for each
//!   heavy value `v`, the residual query is a path
//!   `A1_v(x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ A4_v(x4)` of input size O(n).
//! * **B** — `x1` light and `x3` heavy: symmetric family of paths
//!   `A2_u(x2) ⋈ R1ˡ(x1,x2) ⋈ R4(x4,x1) ⋈ A3_u(x4)`.
//! * **C** — both light: two materialized bags
//!   `W1(x1,x2,x4) = R1ˡ ⋈ R4` and `W2(x2,x3,x4) = R2 ⋈ R3ˡ`, each of
//!   size ≤ Δ·n = O(n^1.5), joined as a two-node acyclic tree.
//!
//! Total preprocessing O~(n^1.5); enumeration output-linear. Batch,
//! Boolean, and ranked execution all share this case construction
//! (ranked enumeration merges the per-case ranked streams in
//! `anyk_core::cyclic`).

use anyk_query::cq::{ConjunctiveQuery, QueryBuilder, VarId};
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_query::join_tree::JoinTree;
use anyk_storage::{
    BuildEachTime, FxHashSet, IndexProvider, Relation, RelationBuilder, RowId, Schema, Trie, Value,
    Weight,
};
use std::sync::Arc;

/// Where an original output variable's value comes from in a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOut {
    /// The variable is fixed to a constant in this case (heavy value).
    Fixed(Value),
    /// Read from the case query's variable.
    Var(VarId),
}

/// One acyclic instance of the union-of-trees plan.
#[derive(Debug)]
pub struct C4Case {
    /// Human-readable label (`heavy-x1=v`, `light-light`, ...).
    pub label: String,
    /// The acyclic case query over derived relations.
    pub query: ConjunctiveQuery,
    /// A join tree for it.
    pub tree: JoinTree,
    /// Relations parallel to the case query's atoms. Weights are
    /// assigned so each original tuple's weight is counted exactly once
    /// per answer.
    pub relations: Vec<Relation>,
    /// Projection of the case's answers back to `(x1, x2, x3, x4)`.
    pub out: [CaseOut; 4],
}

/// Heavy values of `t`'s first level: more than `threshold` rows below.
/// The first trie level enumerates the column's distinct values, so the
/// subtree row count *is* the per-value degree.
fn heavy_from_trie(t: &Trie, threshold: usize) -> FxHashSet<Value> {
    let root = t.root();
    (root.start..root.end)
        .filter(|&i| t.rows_below(root, i).len() > threshold)
        .map(|i| t.value_at(root, i))
        .collect()
}

/// Rows of `rel` whose `col` value passes `pred`, as a new relation.
fn filter_by<F: Fn(Value) -> bool>(rel: &Relation, col: usize, pred: F) -> Relation {
    let mut b = RelationBuilder::new(rel.schema().clone());
    for i in 0..rel.len() as u32 {
        let row = rel.row(i);
        if pred(row[col]) {
            b.push(row, rel.weight(i));
        }
    }
    b.finish()
}

/// Unary projection `{ rel[keep_col] : rel[match_col] = v }`, carrying
/// the original tuples' weights, answered from the shared trie whose
/// first level is `match_col`. Matching row ids are re-sorted into
/// input order so the residual is byte-identical to a direct scan.
fn residual_unary(rel: &Relation, t: &Trie, v: Value, keep_col: usize, name: &str) -> Relation {
    let mut b = RelationBuilder::new(Schema::new([name.to_string()]));
    let root = t.root();
    if let Some(i) = t.find(root, v) {
        let mut ids: Vec<RowId> = t.rows_below(root, i).to_vec();
        ids.sort_unstable();
        for r in ids {
            b.push(&[rel.row(r)[keep_col]], rel.weight(r));
        }
    }
    b.finish()
}

fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
    match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => panic!("case query must be acyclic"),
    }
}

/// Build the full union-of-trees case list for the 4-cycle instance
/// `rels = [R1, R2, R3, R4]` (each binary, oriented as in
/// [`anyk_query::cq::cycle_query`]). `threshold` is the heavy-degree
/// cutoff Δ (use [`anyk_query::cycles::heavy_threshold`] of the max
/// relation size).
///
/// Weights are merged with `+` — the paper's default Sum ranking. For
/// any other scalar ranking use [`c4_cases_with`] and pass its
/// weight-level combine: the light-light case pre-joins `R1ˡ ⋈ R4` and
/// `R2 ⋈ R3ˡ` into bag relations, so two edge weights collapse into
/// one bag-tuple weight *under the ranking's own `⊗`* — summing here
/// and then `max`-ing downstream would rank wrong answers first.
pub fn c4_cases(rels: &[Relation], threshold: usize) -> Vec<C4Case> {
    c4_cases_with(rels, threshold, |a, b| Weight::new(a.get() + b.get()))
}

/// [`c4_cases`] with an explicit weight merge for the pre-joined
/// light-light bags. `merge` must be the weight-level `⊗` of the
/// ranking the cases will be enumerated under (commutative, since the
/// two bags cover the four atoms in different orders).
pub fn c4_cases_with(
    rels: &[Relation],
    threshold: usize,
    merge: impl Fn(Weight, Weight) -> Weight,
) -> Vec<C4Case> {
    c4_cases_provider(rels, threshold, merge, &BuildEachTime)
}

/// The shared-trie requests [`c4_cases_provider`] makes
/// unconditionally, as `(atom index, trie positions)` pairs: `R1` and
/// `R3` by their first column, `R4` reversed. `R2`'s reversed trie is
/// requested only when heavy `x3` values exist, so it is omitted — a
/// probe over this listing answers "is prepare a pure index lookup for
/// the tries every instance needs?" without inspecting the data.
pub fn c4_trie_requests() -> Vec<(usize, Vec<usize>)> {
    vec![(0, vec![0, 1]), (2, vec![0, 1]), (3, vec![1, 0])]
}

/// [`c4_cases_with`] with trie construction delegated to a shared
/// [`IndexProvider`]. Every trie the case construction needs — degree
/// counting, heavy-value residuals, and the light-light bag joins — is
/// resolved through `indexes`, so a warm catalog turns the O~(n)
/// index-build portion of preprocessing into lookups. Derived
/// (light-filtered) relations never touch the shared catalog: when
/// heavy values exist the filtered payload is fresh and gets a private
/// build; when none exist the unfiltered payload (and its shared trie)
/// is reused as-is.
pub fn c4_cases_provider(
    rels: &[Relation],
    threshold: usize,
    merge: impl Fn(Weight, Weight) -> Weight,
    indexes: &dyn IndexProvider,
) -> Vec<C4Case> {
    assert_eq!(rels.len(), 4, "4-cycle needs exactly 4 relations");
    for r in rels {
        assert_eq!(r.arity(), 2, "4-cycle relations are binary");
    }
    let (r1, r2, r3, r4) = (&rels[0], &rels[1], &rels[2], &rels[3]);
    let mut cases = Vec::new();

    // Shared tries: R1 and R3 ordered by their x-column (degrees +
    // residuals + the W2 bag), R4 ordered by x1 (residuals + the W1
    // bag). R2's [1,0] trie is only needed for Case B residuals and is
    // requested lazily below.
    let t1 = indexes.trie(r1, &[0, 1]);
    let t3 = indexes.trie(r3, &[0, 1]);
    let t4 = indexes.trie(r4, &[1, 0]);

    // Heavy sets: H1 = heavy x1 values (by out-degree in R1), H3 = heavy
    // x3 values (by out-degree in R3).
    let h1 = heavy_from_trie(&t1, threshold);
    let h3 = heavy_from_trie(&t3, threshold);

    // --- Case A: one path instance per heavy x1 value v. ---
    // A1_v(x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) ⋈ A4_v(x4).
    let case_a_query = QueryBuilder::new()
        .atom("A1", &["x2"])
        .atom("R2", &["x2", "x3"])
        .atom("R3", &["x3", "x4"])
        .atom("A4", &["x4"])
        .build();
    let mut heavy1: Vec<Value> = h1.iter().copied().collect();
    heavy1.sort();
    for &v in &heavy1 {
        let a1 = residual_unary(r1, &t1, v, 1, "x2");
        let a4 = residual_unary(r4, &t4, v, 0, "x4");
        if a1.is_empty() || a4.is_empty() {
            continue;
        }
        let q = case_a_query.clone();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: format!("heavy-x1={v}"),
            out: [
                CaseOut::Fixed(v),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Var(q.var("x3").unwrap()),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![a1, r2.clone(), r3.clone(), a4],
            query: q,
            tree,
        });
    }

    // --- Case B: x1 light, x3 heavy: per heavy u. ---
    // A2_u(x2) ⋈ R1ˡ(x1,x2) ⋈ R4(x4,x1) ⋈ A3_u(x4).
    // No heavy x1 values means the light filter is the identity: keep
    // the shared payload (and any shared tries over it) instead of
    // copying.
    let r1_light = if h1.is_empty() {
        r1.clone()
    } else {
        filter_by(r1, 0, |v| !h1.contains(&v))
    };
    let case_b_query = QueryBuilder::new()
        .atom("A2", &["x2"])
        .atom("R1", &["x1", "x2"])
        .atom("R4", &["x4", "x1"])
        .atom("A3", &["x4"])
        .build();
    let mut heavy3: Vec<Value> = h3.iter().copied().collect();
    heavy3.sort();
    let t2 = if heavy3.is_empty() {
        None
    } else {
        Some(indexes.trie(r2, &[1, 0]))
    };
    for &u in &heavy3 {
        let t2 = t2.as_ref().expect("built when heavy3 is non-empty");
        let a2 = residual_unary(r2, t2, u, 0, "x2");
        let a3 = residual_unary(r3, &t3, u, 1, "x4");
        if a2.is_empty() || a3.is_empty() || r1_light.is_empty() {
            continue;
        }
        let q = case_b_query.clone();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: format!("light-x1,heavy-x3={u}"),
            out: [
                CaseOut::Var(q.var("x1").unwrap()),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Fixed(u),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![a2, r1_light.clone(), r4.clone(), a3],
            query: q,
            tree,
        });
    }

    // --- Case C: both light: two materialized bags of size <= Δ·n. ---
    // W1(x1,x2,x4) = R1ˡ ⋈ R4 (join on x1), weight w1 ⊗ w4.
    // W2(x2,x3,x4) = R2 ⋈ R3ˡ (join on x3), weight w2 ⊗ w3.
    let r3_light = if h3.is_empty() {
        r3.clone()
    } else {
        filter_by(r3, 0, |v| !h3.contains(&v))
    };
    // The W2 probe side needs R3ˡ keyed by x3: when the light filter
    // was the identity that is exactly the shared `t3`; a genuinely
    // filtered payload gets a private build.
    let t3l = if r3_light.shares_payload(r3) {
        Arc::clone(&t3)
    } else {
        BuildEachTime.trie(&r3_light, &[0, 1])
    };
    let w1 = {
        let mut b = RelationBuilder::new(Schema::new(["x1", "x2", "x4"]));
        let root4 = t4.root(); // R4(x4, x1) keyed by x1
        for i in 0..r1_light.len() as u32 {
            let row = r1_light.row(i);
            if let Some(c) = t4.find(root4, row[0]) {
                let mut ids: Vec<RowId> = t4.rows_below(root4, c).to_vec();
                ids.sort_unstable();
                for j in ids {
                    let w = merge(r1_light.weight(i), r4.weight(j));
                    b.push(&[row[0], row[1], r4.row(j)[0]], w);
                }
            }
        }
        b.finish()
    };
    let w2 = {
        let mut b = RelationBuilder::new(Schema::new(["x2", "x3", "x4"]));
        let root3 = t3l.root(); // R3ˡ(x3, x4) keyed by x3
        for i in 0..r2.len() as u32 {
            let row = r2.row(i);
            if let Some(c) = t3l.find(root3, row[1]) {
                let mut ids: Vec<RowId> = t3l.rows_below(root3, c).to_vec();
                ids.sort_unstable();
                for j in ids {
                    let w = merge(r2.weight(i), r3_light.weight(j));
                    b.push(&[row[0], row[1], r3_light.row(j)[1]], w);
                }
            }
        }
        b.finish()
    };
    if !w1.is_empty() && !w2.is_empty() {
        let q = QueryBuilder::new()
            .atom("W1", &["x1", "x2", "x4"])
            .atom("W2", &["x2", "x3", "x4"])
            .build();
        let tree = tree_of(&q);
        cases.push(C4Case {
            label: "light-light".to_string(),
            out: [
                CaseOut::Var(q.var("x1").unwrap()),
                CaseOut::Var(q.var("x2").unwrap()),
                CaseOut::Var(q.var("x3").unwrap()),
                CaseOut::Var(q.var("x4").unwrap()),
            ],
            relations: vec![w1, w2],
            query: q,
            tree,
        });
    }
    cases
}

/// Materialize all 4-cycle answers through the union-of-trees plan.
/// Output schema `(x1,x2,x3,x4)`, weight = sum of the four edge weights.
/// Equivalent to Generic-Join on the cycle, but O~(n^1.5 + r).
pub fn c4_join(rels: &[Relation], threshold: usize) -> Relation {
    let schema = Schema::new(["x1", "x2", "x3", "x4"]);
    let mut out = RelationBuilder::new(schema);
    for case in c4_cases(rels, threshold) {
        let nvars = case.query.num_vars();
        let mut row = vec![Value::Int(0); nvars];
        let q = &case.query;
        let tree = &case.tree;
        crate::yannakakis::yannakakis_for_each(q, tree, case.relations, |rels, by_node| {
            let w = crate::yannakakis::assemble_answer(q, tree, rels, by_node, &mut row);
            let mut orow = [Value::Int(0); 4];
            for (i, o) in case.out.iter().enumerate() {
                orow[i] = match *o {
                    CaseOut::Fixed(v) => v,
                    CaseOut::Var(cv) => row[cv],
                };
            }
            out.push(&orow, w);
        });
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::cycle_query;
    use anyk_query::cycles::heavy_threshold;
    use anyk_storage::RelationBuilder;

    fn edge_rel(edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (i, &(x, y)) in edges.iter().enumerate() {
            b.push_ints(&[x, y], 0.5 + i as f64);
        }
        b.finish()
    }

    fn check_against_generic_join(rels: &[Relation], threshold: usize) {
        let q = cycle_query(4);
        let (gj, _) = crate::generic_join::generic_join_materialize(&q, rels, None);
        let c4 = c4_join(rels, threshold);
        crate::nested_loop::assert_same_result(&gj, &c4);
    }

    #[test]
    fn simple_cycle_instance() {
        let e = edge_rel(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check_against_generic_join(&rels, 2);
    }

    #[test]
    fn star_heavy_instance() {
        // Hub node 1 has high degree -> exercises heavy cases.
        let mut edges = vec![];
        for i in 2..12 {
            edges.push((1, i));
            edges.push((i, 1));
        }
        let e = edge_rel(&edges);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check_against_generic_join(&rels, heavy_threshold(edges.len()));
    }

    #[test]
    fn threshold_extremes_agree() {
        let e = edge_rel(&[(1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        // All-heavy (threshold 0) and all-light (huge threshold) must
        // both still produce the same full result.
        check_against_generic_join(&rels, 0);
        check_against_generic_join(&rels, 1_000_000);
        check_against_generic_join(&rels, 1);
    }

    #[test]
    fn distinct_relations() {
        let rels = vec![
            edge_rel(&[(1, 2), (1, 3)]),
            edge_rel(&[(2, 5), (3, 5), (3, 6)]),
            edge_rel(&[(5, 7), (6, 7), (5, 8)]),
            edge_rel(&[(7, 1), (8, 1), (8, 2)]),
        ];
        check_against_generic_join(&rels, 1);
    }

    #[test]
    fn empty_input() {
        let rels = vec![
            edge_rel(&[]),
            edge_rel(&[(1, 2)]),
            edge_rel(&[(2, 3)]),
            edge_rel(&[(3, 1)]),
        ];
        let res = c4_join(&rels, 1);
        assert!(res.is_empty());
    }

    #[test]
    fn provider_cases_match_private_builds() {
        use anyk_storage::IndexCatalog;
        // Hub node exercises heavy x1/x3 (residuals + lazy R2 trie);
        // the light tail exercises the bag joins.
        let mut edges = vec![(20, 21), (21, 22), (22, 20)];
        for i in 2..10 {
            edges.push((1, i));
            edges.push((i, 1));
        }
        let e = edge_rel(&edges);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let threshold = 2;
        let merge = |a: Weight, b: Weight| Weight::new(a.get() + b.get());
        let catalog = IndexCatalog::default();
        let base = c4_cases_with(&rels, threshold, merge);
        let shared = c4_cases_provider(&rels, threshold, merge, &catalog);
        assert_eq!(base.len(), shared.len());
        for (b, s) in base.iter().zip(&shared) {
            assert_eq!(b.label, s.label);
            assert_eq!(b.out, s.out);
            assert_eq!(b.relations.len(), s.relations.len());
            for (br, sr) in b.relations.iter().zip(&s.relations) {
                assert_eq!(br.len(), sr.len(), "case {}", b.label);
                for i in 0..br.len() as u32 {
                    assert_eq!(br.row(i), sr.row(i), "case {}", b.label);
                    assert_eq!(br.weight(i), sr.weight(i), "case {}", b.label);
                }
            }
        }
        // One payload, two canonical orders ([0,1] and [1,0]): two
        // builds total, and a second construction is all hits.
        assert_eq!(catalog.stats().builds, 2);
        c4_cases_provider(&rels, threshold, merge, &catalog);
        assert_eq!(catalog.stats().builds, 2);
    }

    #[test]
    fn weights_sum_all_four_edges() {
        let rels = vec![
            edge_rel(&[(1, 2)]), // w = 0.5
            edge_rel(&[(2, 3)]), // w = 0.5
            edge_rel(&[(3, 4)]), // w = 0.5
            edge_rel(&[(4, 1)]), // w = 0.5
        ];
        let res = c4_join(&rels, 10);
        assert_eq!(res.len(), 1);
        assert!((res.weight(0).get() - 2.0).abs() < 1e-9);
    }
}
