//! Decomposition-based execution for **general cyclic queries** — the
//! `O~(n^fhw + r)` algorithm family of §3: decompose the query into a
//! tree of bags, materialize each bag with a worst-case-optimal join,
//! then run Yannakakis (or ranked enumeration) over the acyclic
//! bag-level query.
//!
//! The bag-level query has one atom per bag, over the original
//! variables; GYO on it always succeeds (tree decompositions are
//! acyclic by construction). Weights are preserved exactly once: every
//! original atom has a *home bag* containing all its variables
//! (`Decomposition::edge_home`), and a bag tuple's weight is the
//! **ranking's `⊗`** over its assigned atoms' tuple weights
//! ([`ghd_plan_with`]; plain [`ghd_plan`] uses `+`) — so a bag-level
//! answer's weight equals the original answer's weight, and
//! `anyk_core` can rank over the bag tree unchanged.
//!
//! Semantics note: bags are materialized as **sets** of variable
//! bindings; duplicate input tuples (same values) are collapsed to the
//! lightest. For inputs without duplicates (all graph workloads here)
//! this coincides with bag semantics.

use crate::generic_join::generic_join_with;
use anyk_query::cq::{Atom, ConjunctiveQuery, QueryBuilder};
use anyk_query::decompose::Decomposition;
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_query::hypergraph::iter_vars;
use anyk_query::join_tree::JoinTree;
use anyk_storage::{
    BuildEachTime, FxHashMap, IndexProvider, Relation, RelationBuilder, Schema, Trie, Value, Weight,
};
use std::ops::ControlFlow;
use std::sync::Arc;

/// A materialized decomposition plan: an acyclic query over bag
/// relations, equivalent to the original query.
#[derive(Debug)]
pub struct GhdPlan {
    /// One atom per bag, over the original variable names.
    pub bag_query: ConjunctiveQuery,
    /// A join tree for the bag query.
    pub bag_tree: JoinTree,
    /// Materialized bag relations (weights: the chosen merge — the
    /// ranking's `⊗` — over each bag's assigned atoms).
    pub bag_relations: Vec<Relation>,
}

/// Build and materialize a GHD plan for `q` using `decomp`, merging
/// the weights of a bag's assigned atoms with `+` (the Sum ranking's
/// `⊗`). For other scalar rankings use [`ghd_plan_with`].
///
/// Cost: O~(n^w) where `w` is the decomposition's width (each bag is
/// materialized by Generic-Join over its cover, whose output is bounded
/// by the bag's AGM bound).
pub fn ghd_plan(q: &ConjunctiveQuery, rels: &[Relation], decomp: &Decomposition) -> GhdPlan {
    ghd_plan_with(q, rels, decomp, Weight::ZERO, |a, b| {
        Weight::new(a.get() + b.get())
    })
}

/// [`ghd_plan`] with an explicit weight-level dioid: `identity` is the
/// weight of a bag tuple with no assigned atoms, `merge` folds the
/// assigned atoms' weights. Both must mirror the ranking the bag tree
/// will be enumerated under — merging with `+` and then ranking by
/// `max` downstream would rank wrong answers first.
pub fn ghd_plan_with(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
    identity: Weight,
    merge: impl Fn(Weight, Weight) -> Weight,
) -> GhdPlan {
    ghd_plan_provider(q, rels, decomp, identity, merge, &BuildEachTime)
}

/// [`ghd_plan_with`] with trie construction delegated to a shared
/// [`IndexProvider`]: every bag's cover join runs through
/// [`generic_join_with`], so the worst-case-optimal materialization of
/// each bag resolves its tries from the catalog instead of rebuilding
/// them per plan. Cover atoms are refcount clones of the input
/// relations, so their payload identity (and hence index reuse) is
/// preserved across bags *and* across plans.
pub fn ghd_plan_provider(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
    identity: Weight,
    merge: impl Fn(Weight, Weight) -> Weight,
    indexes: &dyn IndexProvider,
) -> GhdPlan {
    assert_eq!(rels.len(), q.num_atoms());
    let nbags = decomp.bags.len();
    // Assigned atoms per bag (weight accounting + enforcement).
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); nbags];
    for (e, &home) in decomp.edge_home.iter().enumerate() {
        assigned[home].push(e);
    }

    // Weight lookup + enforcement per atom. An atom whose variables
    // are all distinct is answered straight from the shared trie over
    // its columns (ascending VarId order): an index *lookup* per bag
    // row, not a per-plan O(n) hash-map build — with a warm catalog
    // this whole step costs nothing up front. Atoms with repeated
    // variables keep the hash path: they also need the intra-atom
    // consistency filter, which a raw trie over all rows cannot
    // express.
    enum Weigher {
        /// Shared trie whose levels are the atom's columns in
        /// ascending-VarId order; leaves collapse duplicate tuples to
        /// the lightest weight at lookup time.
        Trie(Arc<Trie>),
        /// Binding -> lightest weight over consistent rows.
        Hash(FxHashMap<Vec<Value>, Weight>),
    }
    struct AtomWeigher {
        /// The atom's distinct variables, ascending VarId (the lookup
        /// key order for both variants).
        vars: Vec<usize>,
        how: Weigher,
    }
    let atom_weighers: Vec<AtomWeigher> = (0..q.num_atoms())
        .map(|e| {
            let atom = q.atom(e);
            let mut vars: Vec<usize> = atom.vars.clone();
            vars.sort_unstable();
            vars.dedup();
            let positions: Vec<usize> = vars.iter().map(|&v| atom.positions_of(v)[0]).collect();
            if vars.len() == atom.vars.len() {
                // Repeat-free: `positions` is a full column
                // permutation, so the catalog trie serves lookups.
                let how = Weigher::Trie(indexes.trie(&rels[e], &positions));
                return AtomWeigher { vars, how };
            }
            let mut map: FxHashMap<Vec<Value>, Weight> = FxHashMap::default();
            map.reserve(rels[e].len());
            for i in 0..rels[e].len() as u32 {
                // Enforce intra-atom repeated variables here.
                let row = rels[e].row(i);
                let consistent = atom
                    .vars
                    .iter()
                    .enumerate()
                    .all(|(pos, &v)| row[pos] == row[atom.positions_of(v)[0]]);
                if !consistent {
                    continue;
                }
                let key: Vec<Value> = positions.iter().map(|&p| row[p]).collect();
                // Duplicates collapse to the lightest weight.
                let w = rels[e].weight(i);
                map.entry(key)
                    .and_modify(|old| {
                        if w < *old {
                            *old = w;
                        }
                    })
                    .or_insert(w);
            }
            AtomWeigher {
                vars,
                how: Weigher::Hash(map),
            }
        })
        .collect();

    // Materialize each bag.
    let mut bag_relations: Vec<Relation> = Vec::with_capacity(nbags);
    let mut bag_var_lists: Vec<Vec<usize>> = Vec::with_capacity(nbags);
    for (b, bag) in decomp.bags.iter().enumerate() {
        let bag_vars: Vec<usize> = iter_vars(bag.vars).collect();
        // Sub-query over the cover atoms.
        let cover = &bag.cover;
        assert!(!cover.is_empty(), "bag must have a cover");
        let (sub_q, var_map) = subquery(q, cover);
        let sub_rels: Vec<Relation> = cover.iter().map(|&e| rels[e].clone()).collect();
        // Enumerate the cover join, project to bag vars, dedup.
        let mut seen: FxHashMap<Vec<Value>, ()> = FxHashMap::default();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        generic_join_with(&sub_q, &sub_rels, None, indexes, &mut |binding, _rows| {
            let proj: Vec<Value> = bag_vars.iter().map(|&v| binding[var_map[&v]]).collect();
            if seen.insert(proj.clone(), ()).is_none() {
                rows.push(proj);
            }
            ControlFlow::Continue(())
        });
        // Enforce + weight each projected row via the assigned atoms.
        // Per assigned atom, the bag-row indices of its lookup key
        // (hoisted out of the row loop).
        let key_indices: Vec<(usize, Vec<usize>)> = assigned[b]
            .iter()
            .map(|&e| {
                let idxs = atom_weighers[e]
                    .vars
                    .iter()
                    .map(|&v| {
                        bag_vars
                            .iter()
                            .position(|&bv| bv == v)
                            .expect("assigned atom's vars are inside its home bag")
                    })
                    .collect();
                (e, idxs)
            })
            .collect();
        let schema = Schema::new(bag_vars.iter().map(|&v| q.var_name(v).to_string()));
        let mut builder = RelationBuilder::with_capacity(schema, rows.len());
        'rows: for row in rows {
            let mut w = identity;
            for (e, idxs) in &key_indices {
                let weight = match &atom_weighers[*e].how {
                    Weigher::Trie(t) => {
                        let mut h = t.root();
                        let mut leaf = None;
                        for (d, &bi) in idxs.iter().enumerate() {
                            let Some(i) = t.find(h, row[bi]) else {
                                continue 'rows; // enforcement: not in R_e
                            };
                            if d + 1 == idxs.len() {
                                leaf = Some(t.rows_below(h, i));
                            } else {
                                h = t.descend(h, i);
                            }
                        }
                        let leaf = leaf.expect("atoms bind at least one variable");
                        // Duplicates collapse to the lightest weight.
                        let mut best = rels[*e].weight(leaf[0]);
                        for &r in &leaf[1..] {
                            let rw = rels[*e].weight(r);
                            if rw < best {
                                best = rw;
                            }
                        }
                        best
                    }
                    Weigher::Hash(map) => {
                        let key: Vec<Value> = idxs.iter().map(|&bi| row[bi]).collect();
                        match map.get(&key) {
                            Some(&weight) => weight,
                            None => continue 'rows, // enforcement: not in R_e
                        }
                    }
                };
                w = merge(w, weight);
            }
            builder.push(&row, w);
        }
        bag_relations.push(builder.finish());
        bag_var_lists.push(bag_vars);
    }

    // Bag-level query: one atom per bag over the original variables.
    let mut qb = QueryBuilder::new();
    // Declare variables in original VarId order so bag-query VarIds ==
    // original VarIds (simplifies output handling).
    {
        // QueryBuilder declares on first use; force order with a seed
        // atom? Instead: build atoms with vars named by original names,
        // then verify the mapping.
        for (b, bag_vars) in bag_var_lists.iter().enumerate() {
            let names: Vec<&str> = bag_vars.iter().map(|&v| q.var_name(v)).collect();
            qb = qb.atom(format!("B{b}"), &names);
        }
    }
    let bag_query = qb.build();
    // Map original var id -> bag query var id (may differ if bag order
    // introduces vars in a different order).
    // Reorder bag relation columns? Not needed: atoms bind positionally
    // per bag relation and those match the atom's var list. ✓
    let bag_tree = match gyo_reduce(&bag_query) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => {
            unreachable!("tree decompositions yield acyclic bag queries")
        }
    };
    GhdPlan {
        bag_query,
        bag_tree,
        bag_relations,
    }
}

/// The `(original atom index, trie positions)` requests
/// [`ghd_plan_provider`] makes against a shared [`IndexProvider`]: one
/// Generic-Join (default variable order) per bag over its cover atoms,
/// plus one weight-lookup trie per repeat-free atom (its columns in
/// ascending-VarId order). Repeated-variable atoms are omitted in both
/// parts, mirroring
/// [`crate::generic_join::generic_join_trie_requests`] and the hash
/// fallback of the weight lookup.
pub fn ghd_trie_requests(q: &ConjunctiveQuery, decomp: &Decomposition) -> Vec<(usize, Vec<usize>)> {
    let mut reqs = Vec::new();
    for bag in &decomp.bags {
        let (sub_q, _) = subquery(q, &bag.cover);
        for (j, positions) in crate::generic_join::generic_join_trie_requests(&sub_q, None) {
            reqs.push((bag.cover[j], positions));
        }
    }
    for e in 0..q.num_atoms() {
        let atom = q.atom(e);
        let mut vars: Vec<usize> = atom.vars.clone();
        vars.sort_unstable();
        vars.dedup();
        if vars.len() == atom.vars.len() {
            reqs.push((e, vars.iter().map(|&v| atom.positions_of(v)[0]).collect()));
        }
    }
    reqs
}

/// Build the sub-query induced by `atoms` (indices into `q`), with
/// fresh variable ids. Returns the query and a map original VarId ->
/// sub-query VarId.
fn subquery(q: &ConjunctiveQuery, atoms: &[usize]) -> (ConjunctiveQuery, FxHashMap<usize, usize>) {
    let mut qb = QueryBuilder::new();
    for &e in atoms {
        let a: &Atom = q.atom(e);
        let names: Vec<&str> = a.vars.iter().map(|&v| q.var_name(v)).collect();
        qb = qb.atom(a.relation.clone(), &names);
    }
    let sub = qb.build();
    let mut map = FxHashMap::default();
    for v in 0..q.num_vars() {
        if let Some(sv) = sub.var(q.var_name(v)) {
            map.insert(v, sv);
        }
    }
    (sub, map)
}

/// Batch evaluation of a (possibly cyclic) query through a
/// decomposition: materialize bags, then Yannakakis over the bag tree.
/// Output schema = the *original* query's variables in `VarId` order;
/// weight = sum of all original atoms' weights.
pub fn decomposed_join(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    decomp: &Decomposition,
) -> Relation {
    let plan = ghd_plan(q, rels, decomp);
    let res =
        crate::yannakakis::yannakakis_join(&plan.bag_query, &plan.bag_tree, plan.bag_relations);
    // The bag query declares variables in bag order, which generally
    // differs from the original VarId order — reorder columns back.
    let positions: Vec<usize> = (0..q.num_vars())
        .map(|v| {
            plan.bag_query
                .var(q.var_name(v))
                .expect("bags cover every variable")
        })
        .collect();
    res.project(&positions)
        .with_schema(Schema::new(q.var_names().iter().cloned()))
}

/// Boolean evaluation through a decomposition.
pub fn decomposed_boolean(q: &ConjunctiveQuery, rels: &[Relation], decomp: &Decomposition) -> bool {
    let plan = ghd_plan(q, rels, decomp);
    crate::boolean::boolean_acyclic(&plan.bag_query, &plan.bag_tree, plan.bag_relations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic_join::generic_join_materialize;
    use anyk_query::cq::{cycle_query, path_query, triangle_query};
    use anyk_query::decompose::{fhw_exact, fhw_greedy};
    use anyk_query::hypergraph::Hypergraph;
    use anyk_storage::RelationBuilder;

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Compare decomposed execution against Generic-Join (inputs must be
    /// duplicate-free; weights compared with tolerance since combination
    /// orders differ).
    fn check(q: &ConjunctiveQuery, rels: &[Relation]) {
        let h = Hypergraph::of_query(q);
        for decomp in [fhw_exact(&h), fhw_greedy(&h)] {
            let got = decomposed_join(q, rels, &decomp);
            let (want, _) = generic_join_materialize(q, rels, None);
            assert_eq!(got.len(), want.len(), "cardinality under {:?}", decomp.kind);
            // Sort both and compare values + weights.
            let mut g: Vec<(Vec<i64>, f64)> = (0..got.len() as u32)
                .map(|i| {
                    (
                        got.row(i).iter().map(|v| v.int()).collect(),
                        got.weight(i).get(),
                    )
                })
                .collect();
            let mut w: Vec<(Vec<i64>, f64)> = (0..want.len() as u32)
                .map(|i| {
                    (
                        want.row(i).iter().map(|v| v.int()).collect(),
                        want.weight(i).get(),
                    )
                })
                .collect();
            g.sort_by(|a, b| a.0.cmp(&b.0));
            w.sort_by(|a, b| a.0.cmp(&b.0));
            for ((gv, gw), (wv, ww)) in g.iter().zip(&w) {
                assert_eq!(gv, wv);
                assert!((gw - ww).abs() < 1e-9, "weight {gw} vs {ww}");
            }
        }
    }

    #[test]
    fn triangle_through_decomposition() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (3, 2, 4.0),
        ]);
        let rels = vec![e.clone(), e.clone(), e];
        check(&triangle_query(), &rels);
    }

    #[test]
    fn four_cycle_through_decomposition() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 1, 2.0),
            (2, 1, 0.75),
            (1, 4, 0.375),
        ]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check(&cycle_query(4), &rels);
    }

    #[test]
    fn five_cycle_through_decomposition() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 5, 0.125),
            (5, 1, 2.0),
            (2, 1, 0.0625),
            (3, 2, 3.0),
        ]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e.clone(), e];
        check(&cycle_query(5), &rels);
    }

    #[test]
    fn acyclic_query_degenerate_decomposition() {
        // Decomposing an acyclic query must also work (width 1).
        let rels = vec![
            edge_rel(&[(1, 2, 0.5), (3, 4, 1.0)]),
            edge_rel(&[(2, 5, 0.25), (4, 6, 2.0)]),
        ];
        check(&path_query(2), &rels);
    }

    #[test]
    fn boolean_through_decomposition() {
        let e = edge_rel(&[(1, 2, 0.0), (2, 3, 0.0), (3, 1, 0.0)]);
        let rels = vec![e.clone(), e.clone(), e.clone()];
        let h = Hypergraph::of_query(&triangle_query());
        let d = fhw_exact(&h);
        assert!(decomposed_boolean(&triangle_query(), &rels, &d));
        let e2 = edge_rel(&[(1, 2, 0.0), (2, 3, 0.0)]);
        let rels2 = vec![e2.clone(), e2.clone(), e2];
        assert!(!decomposed_boolean(&triangle_query(), &rels2, &d));
    }
}
