//! Generic-Join (Ngo–Ré–Rudra, "Skew Strikes Back") — a worst-case
//! optimal join whose running time matches the AGM bound O~(n^rho*).
//!
//! The algorithm binds one *variable* at a time (not one relation at a
//! time): for each variable, the candidate values are the intersection
//! of the matching child value-lists in the tries of all atoms using
//! that variable. Intersections run leapfrog-style (smallest list leads,
//! others gallop), which is what the worst-case optimality proof needs.

use anyk_query::cq::{ConjunctiveQuery, VarId};
use anyk_storage::trie::NodeHandle;
use anyk_storage::{
    BuildEachTime, IndexProvider, Relation, RelationBuilder, RowId, Schema, Trie, Value, Weight,
};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Instrumentation counters for a Generic-Join run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenericJoinStats {
    /// Values emitted across all variable levels (search-tree nodes).
    pub bindings_explored: u64,
    /// Trie seek operations performed by intersections.
    pub seeks: u64,
}

/// A solution callback: the full variable binding plus, per atom, the
/// matching row (bag semantics: called once per combination of rows).
/// Return `ControlFlow::Break(())` to stop early (Boolean queries).
pub type SolutionCallback<'a> = dyn FnMut(&[Value], &[RowId]) -> ControlFlow<()> + 'a;

/// Run Generic-Join over `rels` (parallel to atoms) in the given
/// variable order (defaults to `VarId` order if `None`). Calls `f` per
/// answer; stops early if `f` breaks.
///
/// Builds every trie privately (the paper's accounting). Plans that
/// want amortized index construction go through [`generic_join_with`]
/// and pass a shared [`IndexProvider`].
pub fn generic_join(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    f: &mut SolutionCallback<'_>,
) -> GenericJoinStats {
    generic_join_with(q, rels, var_order, &BuildEachTime, f)
}

/// [`generic_join`] with trie construction delegated to `indexes`.
///
/// Shared catalog tries are keyed by payload identity, so the provider
/// is only consulted for atoms whose prefilter left the input payload
/// shared; a filtered (ephemeral) payload always gets a private build.
/// Provider tries may be *deeper* than the atom's distinct-variable
/// count (the catalog canonicalizes every request to a full column
/// permutation so prefix orders share one trie) — the walk binds only
/// the atom's levels and emits rows from whole subtrees below them.
pub fn generic_join_with(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    indexes: &dyn IndexProvider,
    f: &mut SolutionCallback<'_>,
) -> GenericJoinStats {
    assert_eq!(rels.len(), q.num_atoms());
    let default_order: Vec<VarId> = (0..q.num_vars()).collect();
    let order: &[VarId] = var_order.unwrap_or(&default_order);
    assert_eq!(order.len(), q.num_vars(), "var order must cover all vars");

    // Per atom: trie levels follow the atom's variables sorted by their
    // rank in the global order; repeated variables keep their first
    // position (rows with unequal repeats are filtered out first).
    let mut rank = vec![usize::MAX; q.num_vars()];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }
    let mut tries: Vec<Arc<Trie>> = Vec::with_capacity(rels.len());
    let mut atom_levels: Vec<Vec<VarId>> = Vec::with_capacity(rels.len());
    let mut filtered: Vec<Relation> = Vec::with_capacity(rels.len());
    for (i, rel) in rels.iter().enumerate() {
        let atom = q.atom(i);
        let mut rel = rel.clone();
        crate::semijoin::prefilter_repeated_vars(&mut rel, q, i);
        let mut vars: Vec<VarId> = {
            let mut vs: Vec<VarId> = atom.vars.clone();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        vars.sort_by_key(|&v| rank[v]);
        let positions: Vec<usize> = vars.iter().map(|&v| atom.positions_of(v)[0]).collect();
        let trie = if rel.shares_payload(&rels[i]) {
            indexes.trie(&rel, &positions)
        } else {
            BuildEachTime.trie(&rel, &positions)
        };
        tries.push(trie);
        atom_levels.push(vars);
        filtered.push(rel);
    }

    let mut stats = GenericJoinStats::default();
    // Per atom: stack of node handles (children spans), one per bound
    // prefix level of that atom.
    let mut handle_stack: Vec<Vec<NodeHandle>> = tries.iter().map(|t| vec![t.root()]).collect();
    let mut binding: Vec<Value> = vec![Value::Int(0); q.num_vars()];
    let mut rows_per_atom: Vec<RowId> = vec![0; rels.len()];

    let _ = recurse(
        q,
        order,
        0,
        &tries,
        &atom_levels,
        &filtered,
        &mut handle_stack,
        &mut binding,
        &mut rows_per_atom,
        &mut stats,
        f,
    );
    stats
}

/// The `(atom index, trie positions)` requests [`generic_join_with`]
/// will make against a shared [`IndexProvider`] for `q` under
/// `var_order` (default `VarId` order when `None`). Atoms with
/// repeated variables are omitted: whether they reach the shared
/// catalog depends on whether their prefilter drops rows, which only
/// the run itself knows. Lets a planner probe an index catalog for
/// `EXPLAIN index=cached|built` without building anything.
pub fn generic_join_trie_requests(
    q: &ConjunctiveQuery,
    var_order: Option<&[VarId]>,
) -> Vec<(usize, Vec<usize>)> {
    let default_order: Vec<VarId> = (0..q.num_vars()).collect();
    let order: &[VarId] = var_order.unwrap_or(&default_order);
    let mut rank = vec![usize::MAX; q.num_vars()];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }
    let mut reqs = Vec::new();
    for (i, atom) in q.atoms().iter().enumerate() {
        let mut vars: Vec<VarId> = atom.vars.clone();
        vars.sort_unstable();
        vars.dedup();
        if vars.len() != atom.vars.len() {
            continue; // repeated-variable atom: may prefilter privately
        }
        vars.sort_by_key(|&v| rank[v]);
        let positions: Vec<usize> = vars.iter().map(|&v| atom.positions_of(v)[0]).collect();
        reqs.push((i, positions));
    }
    reqs
}

/// Depth = index into the global variable order.
#[allow(clippy::too_many_arguments)]
fn recurse(
    q: &ConjunctiveQuery,
    order: &[VarId],
    depth: usize,
    tries: &[Arc<Trie>],
    atom_levels: &[Vec<VarId>],
    rels: &[Relation],
    handle_stack: &mut Vec<Vec<NodeHandle>>,
    binding: &mut Vec<Value>,
    rows_per_atom: &mut Vec<RowId>,
    stats: &mut GenericJoinStats,
    f: &mut SolutionCallback<'_>,
) -> ControlFlow<()> {
    if depth == order.len() {
        // All variables bound: every atom's trie is fully descended; its
        // last handle's leaf rows are the matching tuples. Emit the
        // cross product (bag semantics).
        return emit_products(q, 0, tries, handle_stack, rels, binding, rows_per_atom, f);
    }
    let v = order[depth];
    // Atoms whose *next* unbound trie level is v.
    let participating: Vec<usize> = (0..tries.len())
        .filter(|&i| {
            let lvl = handle_stack[i].len() - 1;
            lvl < atom_levels[i].len() && atom_levels[i][lvl] == v
        })
        .collect();
    if participating.is_empty() {
        // Variable not constrained at this point: only possible if no
        // atom uses it (a free variable) — full CQs from our builders
        // always constrain every variable, but handle it gracefully by
        // failing (no candidate values exist).
        return ControlFlow::Continue(());
    }

    // Leapfrog intersection across the participating atoms' handles.
    let k = participating.len();
    let mut cursors: Vec<u32> = participating
        .iter()
        .map(|&i| handle_stack[i].last().unwrap().start)
        .collect();
    'leapfrog: loop {
        // Find current max value among cursors; detect exhaustion.
        let mut max_val: Option<Value> = None;
        for (c, &ai) in participating.iter().enumerate() {
            let h = *handle_stack[ai].last().unwrap();
            if cursors[c] >= h.end {
                break 'leapfrog;
            }
            let val = tries[ai].value_at(h, cursors[c]);
            if max_val.is_none_or(|m| val > m) {
                max_val = Some(val);
            }
        }
        let target = max_val.unwrap();
        // Seek all cursors to >= target.
        let mut all_equal = true;
        for (c, &ai) in participating.iter().enumerate() {
            let h = *handle_stack[ai].last().unwrap();
            let pos = tries[ai].seek(h, cursors[c], target);
            stats.seeks += 1;
            cursors[c] = pos;
            if pos >= h.end {
                break 'leapfrog;
            }
            if tries[ai].value_at(h, pos) != target {
                all_equal = false;
            }
        }
        if !all_equal {
            continue;
        }
        // Match: bind v = target, descend participating tries.
        stats.bindings_explored += 1;
        binding[v] = target;
        for (c, &ai) in participating.iter().enumerate() {
            let h = *handle_stack[ai].last().unwrap();
            let lvl = handle_stack[ai].len() - 1;
            if lvl + 1 < atom_levels[ai].len() {
                handle_stack[ai].push(tries[ai].descend(h, cursors[c]));
            } else {
                // Last *atom* level (the trie itself may be deeper when
                // a canonical shared index extends the order): push a
                // marker handle recording the child index so
                // emit_products can find the rows. Encode as a
                // zero-width handle at the same level whose `start`
                // stores the child index.
                handle_stack[ai].push(NodeHandle {
                    level: h.level,
                    start: cursors[c],
                    end: cursors[c],
                });
            }
        }
        let flow = recurse(
            q,
            order,
            depth + 1,
            tries,
            atom_levels,
            rels,
            handle_stack,
            binding,
            rows_per_atom,
            stats,
            f,
        );
        for &ai in &participating {
            handle_stack[ai].pop();
        }
        flow?;
        // Advance the first cursor past `target` to find the next match.
        cursors[0] += 1;
        if k == 1 {
            // Single-atom fast path: continue scanning.
            continue;
        }
    }
    ControlFlow::Continue(())
}

/// Emit the cross product of matching rows across atoms (bag
/// semantics).
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn emit_products(
    q: &ConjunctiveQuery,
    atom: usize,
    tries: &[Arc<Trie>],
    handle_stack: &[Vec<NodeHandle>],
    rels: &[Relation],
    binding: &[Value],
    rows_per_atom: &mut Vec<RowId>,
    f: &mut SolutionCallback<'_>,
) -> ControlFlow<()> {
    if atom == tries.len() {
        return f(binding, rows_per_atom);
    }
    // The marker handle pushed at the last atom level stores the child
    // index; `rows_below` emits the whole subtree under it (a leaf row
    // list when the trie ends there, every row below otherwise).
    let marker = *handle_stack[atom].last().unwrap();
    let parent = handle_stack[atom][handle_stack[atom].len() - 2];
    debug_assert_eq!(marker.level, parent.level);
    let rows = tries[atom].rows_below(parent, marker.start);
    for &r in rows {
        rows_per_atom[atom] = r;
        emit_products(
            q,
            atom + 1,
            tries,
            handle_stack,
            rels,
            binding,
            rows_per_atom,
            f,
        )?;
    }
    ControlFlow::Continue(())
}

/// Materializing wrapper: output schema = all variables in `VarId`
/// order; weight = sum of the matched tuples' weights.
pub fn generic_join_materialize(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
) -> (Relation, GenericJoinStats) {
    generic_join_materialize_with(q, rels, var_order, &BuildEachTime)
}

/// [`generic_join_materialize`] with trie construction delegated to a
/// shared [`IndexProvider`].
pub fn generic_join_materialize_with(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    indexes: &dyn IndexProvider,
) -> (Relation, GenericJoinStats) {
    let schema = Schema::new(q.var_names().iter().cloned());
    let mut out = RelationBuilder::new(schema);
    let stats = generic_join_with(q, rels, var_order, indexes, &mut |binding, rows| {
        let w: f64 = rows
            .iter()
            .enumerate()
            .map(|(a, &r)| rels_weight(rels, a, r))
            .sum();
        out.push(binding, Weight::new(w));
        ControlFlow::Continue(())
    });
    (out.finish(), stats)
}

#[inline]
fn rels_weight(rels: &[Relation], atom: usize, row: RowId) -> f64 {
    rels[atom].weight(row).get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{cycle_query, path_query, triangle_query, QueryBuilder};
    use anyk_storage::RelationBuilder;

    fn edge_rel(edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y) in edges {
            b.push_ints(&[x, y], 1.0);
        }
        b.finish()
    }

    #[test]
    fn triangle_small() {
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1), (2, 1), (1, 3)]);
        let rels = vec![e.clone(), e.clone(), e];
        let (res, stats) = generic_join_materialize(&q, &rels, None);
        // Triangles (x1,x2,x3) with edges x1->x2->x3->x1:
        // (1,2,3): 1->2,2->3,3->1 yes. (2,3,1): yes. (3,1,2): 3->1,1->2,2->3 yes.
        // (1,3,?): 1->3, 3->1? then x3=1... (1,3,1)? x3->x1: 1->1 no.
        // (2,1,3): 2->1, 1->3, 3->2? no.
        assert_eq!(res.len(), 3);
        assert!(stats.bindings_explored > 0);
    }

    #[test]
    fn matches_binary_join_on_path() {
        let q = path_query(3);
        let rels = vec![
            edge_rel(&[(1, 2), (2, 3), (5, 5)]),
            edge_rel(&[(2, 4), (3, 4), (5, 5)]),
            edge_rel(&[(4, 8), (4, 9), (5, 5)]),
        ];
        let (mut gj, _) = generic_join_materialize(&q, &rels, None);
        let (mut bj, _) = crate::binary::binary_join(&q, &rels, &[0, 1, 2]);
        gj.sort_by_positions(&[0, 1, 2, 3]);
        bj.sort_by_positions(&[0, 1, 2, 3]);
        assert_eq!(gj.len(), bj.len());
        for i in 0..gj.len() as u32 {
            assert_eq!(gj.row(i), bj.row(i));
            assert_eq!(gj.weight(i), bj.weight(i));
        }
    }

    #[test]
    fn four_cycle() {
        let q = cycle_query(4);
        let e = edge_rel(&[(1, 2), (2, 3), (3, 4), (4, 1), (2, 1), (1, 4)]);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        let (res, _) = generic_join_materialize(&q, &rels, None);
        // Cross-checked against the nested-loop oracle: 12 bindings
        // x1->x2->x3->x4->x1 over these edges (degenerate repeats like
        // (1,2,1,2) and (1,2,1,4) included — the paper's footnote 2
        // likewise keeps degenerate cycles).
        let nl = crate::nested_loop::nested_loop_join(&q, &rels);
        crate::nested_loop::assert_same_result(&res, &nl);
        assert_eq!(res.len(), 12);
    }

    #[test]
    fn early_exit_boolean() {
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1)]);
        let rels = vec![e.clone(), e.clone(), e];
        let mut found = 0;
        generic_join(&q, &rels, None, &mut |_, _| {
            found += 1;
            ControlFlow::Break(())
        });
        assert_eq!(found, 1);
    }

    #[test]
    fn bag_semantics_duplicates() {
        // Duplicate edge should double the matching answers.
        let q = path_query(2);
        let rels = vec![edge_rel(&[(1, 2), (1, 2)]), edge_rel(&[(2, 3)])];
        let (res, _) = generic_join_materialize(&q, &rels, None);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn custom_var_order() {
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1)]);
        let rels = vec![e.clone(), e.clone(), e];
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let (res, _) = generic_join_materialize(&q, &rels, Some(&order));
            assert_eq!(res.len(), 3, "order {order:?}");
        }
    }

    #[test]
    fn shared_provider_matches_private_builds() {
        use anyk_storage::IndexCatalog;
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1), (2, 1), (1, 3)]);
        let rels = vec![e.clone(), e.clone(), e];
        let catalog = IndexCatalog::default();
        let (base, _) = generic_join_materialize(&q, &rels, None);
        let (shared, _) = generic_join_materialize_with(&q, &rels, None, &catalog);
        assert_eq!(base.len(), shared.len());
        for i in 0..base.len() as u32 {
            assert_eq!(base.row(i), shared.row(i));
            assert_eq!(base.weight(i), shared.weight(i));
        }
        // One payload, two distinct orders ([0,1] for the first two
        // atoms, [1,0] for the closing atom): exactly two trie builds.
        assert_eq!(catalog.stats().builds, 2);
        // Re-running the same join is all hits, zero new builds.
        generic_join_materialize_with(&q, &rels, None, &catalog);
        assert_eq!(catalog.stats().builds, 2);
    }

    #[test]
    fn shared_provider_skips_prefiltered_atoms() {
        use anyk_storage::IndexCatalog;
        // E(x,x) prefilters into a fresh payload: it must get a private
        // trie build, never a catalog entry keyed to the filtered data.
        let q = QueryBuilder::new()
            .atom("E", &["x", "x"])
            .atom("F", &["x", "y"])
            .build();
        let rels = vec![
            edge_rel(&[(1, 1), (2, 3), (4, 4)]),
            edge_rel(&[(1, 7), (4, 8), (2, 9)]),
        ];
        let catalog = IndexCatalog::default();
        let (res, _) = generic_join_materialize_with(&q, &rels, None, &catalog);
        assert_eq!(res.len(), 2);
        // Only F's trie lives in the catalog.
        assert_eq!(catalog.stats().builds, 1);
        assert_eq!(catalog.stats().entries, 1);
    }

    #[test]
    fn repeated_var_atom() {
        // Self loops: E(x,x) ⋈ F(x,y).
        let q = QueryBuilder::new()
            .atom("E", &["x", "x"])
            .atom("F", &["x", "y"])
            .build();
        let rels = vec![
            edge_rel(&[(1, 1), (2, 3), (4, 4)]),
            edge_rel(&[(1, 7), (4, 8), (2, 9)]),
        ];
        let (res, _) = generic_join_materialize(&q, &rels, None);
        assert_eq!(res.len(), 2);
    }
}
