//! Leapfrog Triejoin (Veldhuizen, ICDT 2014) — the other famous
//! worst-case optimal join (§3 cites it alongside NPRR/Generic-Join).
//!
//! Where our [`crate::generic_join`](mod@crate::generic_join) is a recursion that intersects
//! child value *spans*, LFTJ is the classic *iterator* formulation: each
//! atom exposes a trie iterator with `open / up / next / seek`, and each
//! variable level runs a **leapfrog join** — the round-robin galloping
//! intersection of the participating iterators. Both are worst-case
//! optimal; having two independent implementations lets the test suite
//! cross-check them against each other (and both against nested loops).

use crate::generic_join::SolutionCallback;
use anyk_query::cq::{ConjunctiveQuery, VarId};
use anyk_storage::trie::NodeHandle;
use anyk_storage::{
    BuildEachTime, IndexProvider, Relation, RelationBuilder, RowId, Schema, Trie, Value, Weight,
};
use std::ops::ControlFlow;
use std::sync::Arc;

/// A cursor walking one trie level-by-level (the "trie iterator" of the
/// LFTJ paper): a stack of `(children handle, position)` frames.
struct TrieCursor<'a> {
    trie: &'a Trie,
    /// One frame per opened level: the children span + current index.
    frames: Vec<(NodeHandle, u32)>,
}

impl<'a> TrieCursor<'a> {
    fn new(trie: &'a Trie) -> Self {
        TrieCursor {
            trie,
            frames: Vec::with_capacity(trie.depth()),
        }
    }

    /// Descend into the current position's children (or the root).
    fn open(&mut self) {
        let h = match self.frames.last() {
            None => self.trie.root(),
            Some(&(h, i)) => self.trie.descend(h, i),
        };
        self.frames.push((h, h.start));
    }

    /// Ascend one level.
    fn up(&mut self) {
        self.frames.pop();
    }

    /// True iff the current level's span is exhausted.
    fn at_end(&self) -> bool {
        let &(h, i) = self.frames.last().expect("cursor opened");
        i >= h.end
    }

    /// Current key at this level.
    fn key(&self) -> Value {
        let &(h, i) = self.frames.last().expect("cursor opened");
        self.trie.value_at(h, i)
    }

    /// Advance to the next key at this level.
    fn advance(&mut self) {
        let (_, i) = self.frames.last_mut().expect("cursor opened");
        *i += 1;
    }

    /// Seek to the first key >= `v` at this level.
    fn seek(&mut self, v: Value) {
        let &(h, i) = self.frames.last().expect("cursor opened");
        let pos = self.trie.seek(h, i, v);
        self.frames.last_mut().unwrap().1 = pos;
    }

    /// Rows in the subtree below the current position (valid at the
    /// atom's last level: a leaf row list when the trie ends there,
    /// every row below when a canonical shared trie is deeper).
    fn rows(&self) -> &'a [RowId] {
        let &(h, i) = self.frames.last().expect("cursor opened");
        self.trie.rows_below(h, i)
    }
}

/// The leapfrog join at one variable level: round-robin galloping
/// intersection of `cursors` (indices into the cursor arena). Returns
/// the next common key, advancing past `current` if `advance_first`.
fn leapfrog_next(
    cursors: &mut [TrieCursor<'_>],
    members: &[usize],
    advance_first: bool,
) -> Option<Value> {
    debug_assert!(!members.is_empty());
    if advance_first {
        cursors[members[0]].advance();
    }
    if members.iter().any(|&c| cursors[c].at_end()) {
        return None;
    }
    // Round-robin: repeatedly seek the smallest cursor up to the
    // largest key until all agree.
    let mut max_key = members
        .iter()
        .map(|&c| cursors[c].key())
        .max()
        .expect("non-empty");
    let mut idx = 0usize;
    loop {
        let c = members[idx % members.len()];
        let k = cursors[c].key();
        if k == max_key {
            // All cursors between the last max-setter and here agree;
            // check whether the full ring agrees.
            if members.iter().all(|&m| cursors[m].key() == max_key) {
                return Some(max_key);
            }
        }
        if k < max_key {
            cursors[c].seek(max_key);
            if cursors[c].at_end() {
                return None;
            }
            let nk = cursors[c].key();
            if nk > max_key {
                max_key = nk;
            }
        }
        idx += 1;
    }
}

/// Run Leapfrog Triejoin; identical contract to
/// [`crate::generic_join::generic_join`] (bag semantics, early exit via
/// `ControlFlow::Break`).
pub fn leapfrog_triejoin(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    f: &mut SolutionCallback<'_>,
) {
    leapfrog_triejoin_with(q, rels, var_order, &BuildEachTime, f)
}

/// [`leapfrog_triejoin`] with trie construction delegated to `indexes`
/// (same payload-sharing rule as
/// [`crate::generic_join::generic_join_with`]).
pub fn leapfrog_triejoin_with(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    indexes: &dyn IndexProvider,
    f: &mut SolutionCallback<'_>,
) {
    assert_eq!(rels.len(), q.num_atoms());
    let default_order: Vec<VarId> = (0..q.num_vars()).collect();
    let order: &[VarId] = var_order.unwrap_or(&default_order);
    assert_eq!(order.len(), q.num_vars());

    let mut rank = vec![usize::MAX; q.num_vars()];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }
    // Per atom: filtered relation + trie in global-order-sorted levels.
    let mut filtered: Vec<Relation> = Vec::with_capacity(rels.len());
    let mut atom_levels: Vec<Vec<VarId>> = Vec::with_capacity(rels.len());
    let mut tries: Vec<Arc<Trie>> = Vec::with_capacity(rels.len());
    for (i, rel) in rels.iter().enumerate() {
        let atom = q.atom(i);
        let mut rel = rel.clone();
        crate::semijoin::prefilter_repeated_vars(&mut rel, q, i);
        let mut vars: Vec<VarId> = atom.vars.clone();
        vars.sort_unstable();
        vars.dedup();
        vars.sort_by_key(|&v| rank[v]);
        let positions: Vec<usize> = vars.iter().map(|&v| atom.positions_of(v)[0]).collect();
        let trie = if rel.shares_payload(&rels[i]) {
            indexes.trie(&rel, &positions)
        } else {
            BuildEachTime.trie(&rel, &positions)
        };
        tries.push(trie);
        atom_levels.push(vars);
        filtered.push(rel);
    }
    if filtered.iter().any(|r| r.is_empty()) {
        return;
    }
    let mut cursors: Vec<TrieCursor<'_>> = tries.iter().map(|t| TrieCursor::new(t)).collect();

    // Participants per depth: atoms using that depth's variable. Since
    // each atom's trie levels are sorted by global rank, an atom's
    // cursor is always positioned exactly at the level of the next of
    // its variables to be bound.
    let participants: Vec<Vec<usize>> = order
        .iter()
        .map(|&v| {
            (0..cursors.len())
                .filter(|&a| atom_levels[a].contains(&v))
                .collect()
        })
        .collect();

    let mut binding: Vec<Value> = vec![Value::Int(0); q.num_vars()];
    let mut rows_per_atom: Vec<RowId> = vec![0; rels.len()];

    // Iterative backtracking over depths.
    let m = order.len();
    let mut depth = 0usize;
    let mut needs_open = true;
    'outer: loop {
        if depth == m {
            // Emit cross products of leaf rows.
            let flow = emit(&cursors, &filtered, 0, &binding, &mut rows_per_atom, f);
            if flow.is_break() {
                return;
            }
            depth -= 1;
            needs_open = false;
            continue;
        }
        let parts = &participants[depth];
        let key = if needs_open {
            for &a in parts {
                cursors[a].open();
            }
            leapfrog_next(&mut cursors, parts, false)
        } else {
            leapfrog_next(&mut cursors, parts, true)
        };
        match key {
            Some(v) => {
                binding[order[depth]] = v;
                depth += 1;
                needs_open = true;
            }
            None => {
                for &a in parts {
                    cursors[a].up();
                }
                if depth == 0 {
                    break 'outer;
                }
                depth -= 1;
                needs_open = false;
            }
        }
    }
}

/// Emit the cross product of leaf rows over atoms (bag semantics).
#[allow(clippy::only_used_in_recursion)]
fn emit(
    cursors: &[TrieCursor<'_>],
    rels: &[Relation],
    atom: usize,
    binding: &[Value],
    rows_per_atom: &mut Vec<RowId>,
    f: &mut SolutionCallback<'_>,
) -> ControlFlow<()> {
    if atom == cursors.len() {
        return f(binding, rows_per_atom);
    }
    for &r in cursors[atom].rows() {
        rows_per_atom[atom] = r;
        emit(cursors, rels, atom + 1, binding, rows_per_atom, f)?;
    }
    ControlFlow::Continue(())
}

/// Materializing wrapper (same output contract as
/// [`crate::generic_join::generic_join_materialize`]).
pub fn leapfrog_materialize(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
) -> Relation {
    leapfrog_materialize_with(q, rels, var_order, &BuildEachTime)
}

/// [`leapfrog_materialize`] with trie construction delegated to a
/// shared [`IndexProvider`].
pub fn leapfrog_materialize_with(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    var_order: Option<&[VarId]>,
    indexes: &dyn IndexProvider,
) -> Relation {
    let schema = Schema::new(q.var_names().iter().cloned());
    let mut out = RelationBuilder::new(schema);
    leapfrog_triejoin_with(q, rels, var_order, indexes, &mut |binding, rows| {
        let w: f64 = rows
            .iter()
            .enumerate()
            .map(|(a, &r)| rels_weight(rels, a, r))
            .sum();
        out.push(binding, Weight::new(w));
        ControlFlow::Continue(())
    });
    out.finish()
}

#[inline]
fn rels_weight(rels: &[Relation], atom: usize, row: RowId) -> f64 {
    rels[atom].weight(row).get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic_join::generic_join_materialize;
    use crate::nested_loop::assert_same_result;
    use anyk_query::cq::{cycle_query, path_query, star_query, triangle_query, QueryBuilder};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    fn check(q: &ConjunctiveQuery, rels: &[Relation]) {
        let lftj = leapfrog_materialize(q, rels, None);
        let (gj, _) = generic_join_materialize(q, rels, None);
        assert_same_result(&lftj, &gj);
    }

    #[test]
    fn triangle_matches_generic_join() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
            (1, 1, 4.0),
        ]);
        check(&triangle_query(), &[e.clone(), e.clone(), e]);
    }

    #[test]
    fn four_cycle_matches() {
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 4, 0.25),
            (4, 1, 2.0),
            (2, 1, 0.75),
        ]);
        check(&cycle_query(4), &[e.clone(), e.clone(), e.clone(), e]);
    }

    #[test]
    fn path_and_star_match() {
        let r1 = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (5, 5, 0.125)]);
        let r2 = edge_rel(&[(2, 4, 0.25), (3, 4, 2.0), (5, 5, 0.0625)]);
        let r3 = edge_rel(&[(4, 8, 1.5), (4, 9, 0.75), (5, 5, 3.0)]);
        check(&path_query(3), &[r1.clone(), r2.clone(), r3.clone()]);
        check(&star_query(3), &[r1, r2, r3]);
    }

    #[test]
    fn early_exit() {
        let e = edge_rel(&[(1, 2, 0.0), (2, 3, 0.0), (3, 1, 0.0)]);
        let rels = [e.clone(), e.clone(), e];
        let mut count = 0;
        leapfrog_triejoin(&triangle_query(), &rels, None, &mut |_, _| {
            count += 1;
            ControlFlow::Break(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_relation() {
        let e = edge_rel(&[]);
        let rels = [e.clone(), e.clone(), e];
        let mut count = 0;
        leapfrog_triejoin(&triangle_query(), &rels, None, &mut |_, _| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 0);
    }

    #[test]
    fn custom_var_orders_agree() {
        let e = edge_rel(&[(1, 2, 0.5), (2, 3, 1.0), (3, 1, 0.25), (3, 2, 0.125)]);
        let rels = [e.clone(), e.clone(), e];
        let q = triangle_query();
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let got = leapfrog_materialize(&q, &rels, Some(&order));
            let (want, _) = generic_join_materialize(&q, &rels, None);
            assert_same_result(&got, &want);
        }
    }

    #[test]
    fn repeated_vars() {
        let q = QueryBuilder::new()
            .atom("E", &["x", "x"])
            .atom("F", &["x", "y"])
            .build();
        let rels = [
            edge_rel(&[(1, 1, 0.5), (2, 3, 1.0), (4, 4, 0.25)]),
            edge_rel(&[(1, 7, 2.0), (4, 8, 0.125), (2, 9, 0.0625)]),
        ];
        check(&q, &rels);
    }

    #[test]
    fn shared_provider_matches_private_builds() {
        use anyk_storage::IndexCatalog;
        let e = edge_rel(&[
            (1, 2, 0.5),
            (2, 3, 1.0),
            (3, 1, 0.25),
            (2, 1, 2.0),
            (1, 3, 0.125),
        ]);
        let rels = [e.clone(), e.clone(), e];
        let q = triangle_query();
        let catalog = IndexCatalog::default();
        let base = leapfrog_materialize(&q, &rels, None);
        let shared = leapfrog_materialize_with(&q, &rels, None, &catalog);
        assert_eq!(base.len(), shared.len());
        for i in 0..base.len() as u32 {
            assert_eq!(base.row(i), shared.row(i));
            assert_eq!(base.weight(i), shared.weight(i));
        }
        // Same two canonical orders as Generic-Join: [0,1] and [1,0].
        assert_eq!(catalog.stats().builds, 2);
    }

    #[test]
    fn duplicates_bag_semantics() {
        let q = path_query(2);
        let rels = [
            edge_rel(&[(1, 2, 0.5), (1, 2, 0.25)]),
            edge_rel(&[(2, 3, 1.0)]),
        ];
        check(&q, &rels);
    }
}
