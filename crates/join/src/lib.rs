//! # anyk-join
//!
//! Batch join algorithms from Part 2 of *Optimal Join Algorithms Meet
//! Top-k*:
//!
//! * [`semijoin`] — semi-join reductions and the **full reducer** over a
//!   join tree (Bernstein–Chiu; the preprocessing that puts an acyclic
//!   database into a globally consistent state).
//! * [`yannakakis`] — the O~(n + r) acyclic join algorithm, with
//!   materializing, streaming, and counting variants.
//! * [`binary`] — textbook left-deep binary hash-join plans: the provably
//!   suboptimal baseline whose intermediate results can be
//!   asymptotically larger than the output (§3's triangle example).
//! * [`generic_join`](mod@generic_join) — the worst-case optimal Generic-Join (Ngo–Ré–
//!   Rudra), matching the AGM bound via per-variable leapfrog
//!   intersection of tries.
//! * [`leapfrog`] — Leapfrog Triejoin (Veldhuizen), the same worst-case
//!   optimality in the classic trie-iterator formulation; an
//!   independent implementation the tests cross-check against.
//! * [`boolean`] — Boolean query evaluation with early exit, including
//!   the O~(n^1.5) 4-cycle detection through the submodular-width plan.
//! * [`c4`] — the union-of-trees case split for the 4-cycle (shared by
//!   Boolean, batch and ranked execution).
//! * [`decomposed`] — general O~(n^fhw + r) execution for *any* cyclic
//!   query: materialize decomposition bags, then Yannakakis over the
//!   bag tree.
//! * [`nested_loop`] — the brute-force oracle used by the test suite.

pub mod binary;
pub mod boolean;
pub mod c4;
pub mod decomposed;
pub mod generic_join;
pub mod leapfrog;
pub mod nested_loop;
pub mod semijoin;
pub mod yannakakis;

pub use binary::{binary_join, BinaryJoinStats};
pub use decomposed::{decomposed_boolean, decomposed_join, ghd_plan, ghd_plan_with, GhdPlan};
pub use generic_join::{
    generic_join, generic_join_materialize, generic_join_trie_requests, GenericJoinStats,
};
pub use leapfrog::{leapfrog_materialize, leapfrog_triejoin};
pub use semijoin::{full_reducer, semijoin_filter};
pub use yannakakis::{yannakakis_count, yannakakis_for_each, yannakakis_join};
