//! Brute-force nested-loop join: the correctness oracle for every other
//! join algorithm in the test suite. Exponential — only for tiny inputs.

use anyk_query::cq::ConjunctiveQuery;
use anyk_storage::{Relation, RelationBuilder, RowId, Schema, Value, Weight};

/// Materialize the full join by trying every combination of rows.
/// Output schema = all variables in `VarId` order; weight = sum.
pub fn nested_loop_join(q: &ConjunctiveQuery, rels: &[Relation]) -> Relation {
    assert_eq!(rels.len(), q.num_atoms());
    let schema = Schema::new(q.var_names().iter().cloned());
    let mut out = RelationBuilder::new(schema);
    let mut choice: Vec<RowId> = vec![0; rels.len()];
    let mut binding: Vec<Option<Value>> = vec![None; q.num_vars()];
    rec(q, rels, 0, &mut choice, &mut binding, &mut out);
    out.finish()
}

fn rec(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    atom: usize,
    choice: &mut Vec<RowId>,
    binding: &mut Vec<Option<Value>>,
    out: &mut RelationBuilder,
) {
    if atom == rels.len() {
        let row: Vec<Value> = binding.iter().map(|v| v.unwrap()).collect();
        let w: f64 = choice
            .iter()
            .enumerate()
            .map(|(a, &r)| rels[a].weight(r).get())
            .sum();
        out.push(&row, Weight::new(w));
        return;
    }
    let a = q.atom(atom);
    'rows: for r in 0..rels[atom].len() as RowId {
        let tuple = rels[atom].row(r);
        let saved = binding.clone();
        for (pos, &v) in a.vars.iter().enumerate() {
            match binding[v] {
                None => binding[v] = Some(tuple[pos]),
                Some(bound) => {
                    if bound != tuple[pos] {
                        *binding = saved;
                        continue 'rows;
                    }
                }
            }
        }
        choice[atom] = r;
        rec(q, rels, atom + 1, choice, binding, out);
        *binding = saved;
    }
}

/// Sort a materialized result canonically (all columns, then weight) so
/// two results can be compared for multiset equality.
pub fn canonicalize(rel: &mut Relation) {
    let positions: Vec<usize> = (0..rel.arity()).collect();
    rel.sort_by_positions(&positions);
    // `sort_by_positions` is stable on row order, not weight; re-sort
    // equal-value runs by weight for full determinism.
    // Simplest: sort a permutation by (values, weight).
    let n = rel.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&x, &y| {
        rel.row(x)
            .cmp(rel.row(y))
            .then(rel.weight(x).cmp(&rel.weight(y)))
    });
    // Rebuild via builder (simplest correct permute).
    let mut b = RelationBuilder::with_capacity(rel.schema().clone(), n);
    for &o in &order {
        b.push(rel.row(o), rel.weight(o));
    }
    *rel = b.finish();
}

/// Assert two materialized join results are equal as weighted multisets.
pub fn assert_same_result(a: &Relation, b: &Relation) {
    assert_eq!(a.len(), b.len(), "result sizes differ");
    let mut a = a.clone();
    let mut b = b.clone();
    canonicalize(&mut a);
    canonicalize(&mut b);
    for i in 0..a.len() as RowId {
        assert_eq!(a.row(i), b.row(i), "row {i} differs");
        assert!(
            (a.weight(i).get() - b.weight(i).get()).abs() < 1e-9,
            "weight {i} differs: {} vs {}",
            a.weight(i),
            b.weight(i)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, triangle_query};
    use anyk_storage::RelationBuilder;

    fn edge_rel(edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (i, &(x, y)) in edges.iter().enumerate() {
            b.push_ints(&[x, y], i as f64 * 0.25);
        }
        b.finish()
    }

    #[test]
    fn path_matches_manual() {
        let q = path_query(2);
        let rels = vec![edge_rel(&[(1, 2), (3, 4)]), edge_rel(&[(2, 5), (2, 6)])];
        let res = nested_loop_join(&q, &rels);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn oracle_agrees_with_generic_join_on_triangle() {
        let q = triangle_query();
        let e = edge_rel(&[(1, 2), (2, 3), (3, 1), (1, 3), (3, 2), (2, 1), (1, 1)]);
        let rels = vec![e.clone(), e.clone(), e];
        let nl = nested_loop_join(&q, &rels);
        let (gj, _) = crate::generic_join::generic_join_materialize(&q, &rels, None);
        assert_same_result(&nl, &gj);
    }

    #[test]
    fn canonicalize_sorts() {
        let mut r = edge_rel(&[(3, 1), (1, 2), (1, 1)]);
        canonicalize(&mut r);
        assert_eq!(r.row(0)[0].int(), 1);
        assert_eq!(r.row(2)[0].int(), 3);
    }
}
