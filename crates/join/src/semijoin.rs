//! Semi-join reductions and the full reducer.
//!
//! `R ⋉ S`: keep the tuples of `R` that join with at least one tuple of
//! `S`. A **full reducer** (Bernstein–Chiu 1981) runs one bottom-up and
//! one top-down sweep of semi-joins over a join tree; afterwards the
//! database is *globally consistent* (§3): every remaining tuple
//! participates in at least one query answer, which is exactly the
//! precondition Yannakakis and T-DP rely on for output-sensitive cost.

use anyk_query::cq::ConjunctiveQuery;
use anyk_query::join_tree::JoinTree;
use anyk_storage::{HashIndex, Relation};

/// Filter `left` in place, keeping rows whose key (at `left_keys`)
/// appears in `right` (at `right_keys`). Returns retained row count.
pub fn semijoin_filter(
    left: &mut Relation,
    left_keys: &[usize],
    right: &Relation,
    right_keys: &[usize],
) -> usize {
    assert_eq!(left_keys.len(), right_keys.len());
    if left_keys.is_empty() {
        // Degenerate cartesian edge: keep all iff right is non-empty.
        return if right.is_empty() {
            left.retain(|_| false)
        } else {
            left.len()
        };
    }
    let idx = HashIndex::build(right, right_keys);
    let mut key = Vec::with_capacity(left_keys.len());
    // `retain` passes row ids in order; extract keys through a scratch
    // buffer to avoid per-row allocation.
    let lk = left_keys.to_vec();
    // Work around borrow rules: collect the keep-decisions first.
    let keep: Vec<bool> = (0..left.len() as u32)
        .map(|rid| {
            left.key_into(rid, &lk, &mut key);
            idx.contains(&key)
        })
        .collect();
    left.retain(|rid| keep[rid as usize])
}

/// Key positions of the join between a node and its parent, as
/// `(child_positions, parent_positions)`.
pub fn join_key_positions(
    q: &ConjunctiveQuery,
    tree: &JoinTree,
    node: usize,
) -> (Vec<usize>, Vec<usize>) {
    let n = tree.node(node);
    let parent = n.parent.expect("root has no parent join");
    let child_atom = q.atom(n.atom);
    let parent_atom = q.atom(tree.node(parent).atom);
    let mut cpos = Vec::with_capacity(n.join_vars.len());
    let mut ppos = Vec::with_capacity(n.join_vars.len());
    for &v in &n.join_vars {
        cpos.push(
            child_atom
                .positions_of(v)
                .first()
                .copied()
                .expect("join var must occur in child atom"),
        );
        ppos.push(
            parent_atom
                .positions_of(v)
                .first()
                .copied()
                .expect("join var must occur in parent atom"),
        );
    }
    (cpos, ppos)
}

/// Enforce intra-atom repeated variables: when an atom mentions the same
/// variable at several positions, drop rows whose values differ there.
/// (Self-loop elimination in graph patterns, e.g. `E(x,x)`.)
pub fn prefilter_repeated_vars(rel: &mut Relation, q: &ConjunctiveQuery, atom: usize) {
    let a = q.atom(atom);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &v in a.vars.iter() {
        let pos = a.positions_of(v);
        if pos.len() > 1 && !groups.contains(&pos) {
            groups.push(pos);
        }
    }
    if groups.is_empty() {
        return;
    }
    let keep: Vec<bool> = (0..rel.len() as u32)
        .map(|rid| {
            let row = rel.row(rid);
            groups
                .iter()
                .all(|g| g.iter().all(|&p| row[p] == row[g[0]]))
        })
        .collect();
    rel.retain(|rid| keep[rid as usize]);
}

/// Run a full reducer over `rels` (parallel to the query's atoms) using
/// `tree`: bottom-up semi-joins (children filter parents), then top-down
/// (parents filter children). Also enforces repeated variables first.
///
/// After this, for every node, each remaining tuple extends to at least
/// one full query answer.
pub fn full_reducer(q: &ConjunctiveQuery, tree: &JoinTree, rels: &mut [Relation]) {
    assert_eq!(rels.len(), q.num_atoms());
    for (i, rel) in rels.iter_mut().enumerate() {
        prefilter_repeated_vars(rel, q, i);
    }
    let order = tree.preorder();
    // Bottom-up: visit in reverse preorder; each node filters its parent.
    for &node in order.iter().rev() {
        if tree.node(node).parent.is_none() {
            continue;
        }
        let parent = tree.node(node).parent.unwrap();
        let (cpos, ppos) = join_key_positions(q, tree, node);
        let (p_atom, c_atom) = (tree.node(parent).atom, tree.node(node).atom);
        // Split borrow: parent and child atoms are distinct relations
        // (distinct atom indices even for self-joins).
        let (lo, hi) = if p_atom < c_atom {
            (p_atom, c_atom)
        } else {
            (c_atom, p_atom)
        };
        let (head, tail) = rels.split_at_mut(hi);
        let (parent_rel, child_rel): (&mut Relation, &Relation) = if p_atom < c_atom {
            (&mut head[lo], &tail[0])
        } else {
            (&mut tail[0], &head[lo])
        };
        semijoin_filter(parent_rel, &ppos, child_rel, &cpos);
    }
    // Top-down: visit in preorder; each node filters its children.
    for &node in order.iter() {
        if tree.node(node).parent.is_none() {
            continue;
        }
        let parent = tree.node(node).parent.unwrap();
        let (cpos, ppos) = join_key_positions(q, tree, node);
        let (p_atom, c_atom) = (tree.node(parent).atom, tree.node(node).atom);
        let (lo, hi) = if p_atom < c_atom {
            (p_atom, c_atom)
        } else {
            (c_atom, p_atom)
        };
        let (head, tail) = rels.split_at_mut(hi);
        let (child_rel, parent_rel): (&mut Relation, &Relation) = if c_atom < p_atom {
            (&mut head[lo], &tail[0])
        } else {
            (&mut tail[0], &head[lo])
        };
        semijoin_filter(child_rel, &cpos, parent_rel, &ppos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, QueryBuilder};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(name_cols: [&str; 2], edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(name_cols));
        for &(x, y) in edges {
            b.push_ints(&[x, y], 0.0);
        }
        b.finish()
    }

    #[test]
    fn semijoin_keeps_matching() {
        let mut r = edge_rel(["a", "b"], &[(1, 2), (2, 3), (3, 4)]);
        let s = edge_rel(["b", "c"], &[(2, 9), (4, 9)]);
        let kept = semijoin_filter(&mut r, &[1], &s, &[0]);
        assert_eq!(kept, 2);
        let bs: Vec<i64> = (0..r.len() as u32).map(|i| r.row(i)[1].int()).collect();
        assert_eq!(bs, vec![2, 4]);
    }

    #[test]
    fn semijoin_empty_key_cartesian() {
        let mut r = edge_rel(["a", "b"], &[(1, 2)]);
        let s = Relation::empty(Schema::new(["c"]));
        assert_eq!(semijoin_filter(&mut r, &[], &s, &[]), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn full_reducer_removes_dangling() {
        // Path R1(x0,x1) ⋈ R2(x1,x2) ⋈ R3(x2,x3):
        // R1 has a dangling edge (9,9); R3 has (8,8).
        let q = path_query(3);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let mut rels = vec![
            edge_rel(["a", "b"], &[(1, 2), (9, 9)]),
            edge_rel(["b", "c"], &[(2, 3)]),
            edge_rel(["c", "d"], &[(3, 4), (8, 8)]),
        ];
        full_reducer(&q, &tree, &mut rels);
        assert_eq!(rels[0].len(), 1);
        assert_eq!(rels[1].len(), 1);
        assert_eq!(rels[2].len(), 1);
        assert_eq!(rels[0].row(0)[0].int(), 1);
    }

    #[test]
    fn full_reducer_global_consistency() {
        // After reduction every tuple must participate in some answer:
        // brute-force check on a random-ish instance.
        let q = path_query(2);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let mut rels = vec![
            edge_rel(["a", "b"], &[(1, 2), (1, 3), (4, 5)]),
            edge_rel(["b", "c"], &[(2, 7), (3, 8), (6, 9)]),
        ];
        full_reducer(&q, &tree, &mut rels);
        // (4,5) and (6,9) must be gone.
        assert_eq!(rels[0].len(), 2);
        assert_eq!(rels[1].len(), 2);
        for i in 0..rels[0].len() as u32 {
            let b = rels[0].row(i)[1];
            assert!((0..rels[1].len() as u32).any(|j| rels[1].row(j)[0] == b));
        }
    }

    #[test]
    fn repeated_vars_prefiltered() {
        let q = QueryBuilder::new().atom("E", &["x", "x"]).build();
        let mut r = edge_rel(["u", "v"], &[(1, 1), (1, 2), (3, 3)]);
        prefilter_repeated_vars(&mut r, &q, 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1)[0].int(), 3);
    }
}
