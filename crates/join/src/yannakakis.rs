//! The Yannakakis algorithm for acyclic joins — O~(n + r), matching the
//! Ω(n + r) lower bound (§3 of the paper).
//!
//! Pipeline: full reducer (global consistency), then backtracking
//! enumeration down the join tree. After reduction *every* partial
//! binding extends to a full answer, so enumeration never dead-ends and
//! the join phase is output-linear.

use anyk_query::cq::ConjunctiveQuery;
use anyk_query::join_tree::JoinTree;
use anyk_storage::{HashIndex, Relation, RelationBuilder, RowId, Schema, Value, Weight};

use crate::semijoin::{full_reducer, join_key_positions};

/// Output schema of a full CQ: one column per variable, in `VarId`
/// order, named after the query's variable names.
pub fn output_schema(q: &ConjunctiveQuery) -> Schema {
    Schema::new(q.var_names().iter().cloned())
}

/// Run Yannakakis, invoking `f` once per answer with the (reduced)
/// relations and the row ids chosen at each join-tree node (indexed by
/// *node id*) — callers reconstruct values or weights as they wish.
/// Relations are consumed (the reducer filters them in place).
///
/// Returns the (reduced) relations for further use.
pub fn yannakakis_for_each<F: FnMut(&[Relation], &[RowId])>(
    q: &ConjunctiveQuery,
    tree: &JoinTree,
    mut rels: Vec<Relation>,
    mut f: F,
) -> Vec<Relation> {
    full_reducer(q, tree, &mut rels);
    if rels.iter().any(|r| r.is_empty()) {
        return rels; // no answers
    }
    let order = tree.preorder();
    // Per non-root node (by preorder slot): hash index on its join key,
    // plus the positions of the key inside the parent's relation.
    let mut indexes: Vec<Option<(HashIndex, Vec<usize>)>> = Vec::with_capacity(order.len());
    for &node in &order {
        if tree.node(node).parent.is_none() {
            indexes.push(None);
        } else {
            let (cpos, ppos) = join_key_positions(q, tree, node);
            let idx = HashIndex::build(&rels[tree.node(node).atom], &cpos);
            indexes.push(Some((idx, ppos)));
        }
    }
    // Map node id -> slot in preorder, and parent slot per slot.
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (s, &n) in order.iter().enumerate() {
        slot_of[n] = s;
    }
    let parent_slot: Vec<usize> = order
        .iter()
        .map(|&n| tree.node(n).parent.map_or(usize::MAX, |p| slot_of[p]))
        .collect();

    // Backtracking over preorder slots.
    let m = order.len();
    let mut chosen_rows: Vec<RowId> = vec![0; m]; // by slot
    let mut iters: Vec<(usize, usize)> = vec![(0, 0); m]; // (pos, len) per slot
    let mut group_cache: Vec<Vec<RowId>> = vec![Vec::new(); m];
    let mut by_node: Vec<RowId> = vec![0; tree.len()];
    let mut key_buf: Vec<Value> = Vec::new();

    let mut slot = 0usize;
    'outer: loop {
        // Initialize candidate group for `slot`.
        let node = order[slot];
        let atom = tree.node(node).atom;
        let group: &[RowId] = if slot == 0 {
            group_cache[0].clear();
            group_cache[0].extend(0..rels[atom].len() as RowId);
            &group_cache[0]
        } else {
            let (idx, ppos) = indexes[slot].as_ref().unwrap();
            let pslot = parent_slot[slot];
            let prow = chosen_rows[pslot];
            let patom = tree.node(order[pslot]).atom;
            rels[patom].key_into(prow, ppos, &mut key_buf);
            let g = idx.get(&key_buf);
            group_cache[slot].clear();
            group_cache[slot].extend_from_slice(g);
            &group_cache[slot]
        };
        debug_assert!(!group.is_empty(), "full reducer guarantees matches");
        iters[slot] = (0, group.len());
        // Descend / emit loop.
        loop {
            let (pos, len) = iters[slot];
            if pos < len {
                chosen_rows[slot] = group_cache[slot][pos];
                if slot + 1 == m {
                    // Emit.
                    for s in 0..m {
                        by_node[order[s]] = chosen_rows[s];
                    }
                    f(&rels, &by_node);
                    iters[slot].0 += 1;
                    continue;
                }
                slot += 1;
                continue 'outer;
            }
            // Exhausted: backtrack.
            if slot == 0 {
                break 'outer;
            }
            slot -= 1;
            iters[slot].0 += 1;
        }
    }
    rels
}

/// Reconstruct an answer's output row (one value per variable, `VarId`
/// order) and summed weight from per-node row choices.
pub fn assemble_answer(
    q: &ConjunctiveQuery,
    tree: &JoinTree,
    rels: &[Relation],
    by_node: &[RowId],
    row: &mut [Value],
) -> Weight {
    let mut w = 0.0f64;
    for (node, &rid) in by_node.iter().enumerate() {
        let atom_idx = tree.node(node).atom;
        let atom = q.atom(atom_idx);
        let rel = &rels[atom_idx];
        let tuple = rel.row(rid);
        for (pos, &v) in atom.vars.iter().enumerate() {
            row[v] = tuple[pos];
        }
        w += rel.weight(rid).get();
    }
    Weight::new(w)
}

/// Materialize the full join: output schema = all variables (`VarId`
/// order); each answer's weight is the **sum** of its tuples' weights
/// (other ranking functions are handled by `anyk-core`'s batch
/// wrappers, which use the callback API).
pub fn yannakakis_join(q: &ConjunctiveQuery, tree: &JoinTree, rels: Vec<Relation>) -> Relation {
    let schema = output_schema(q);
    let mut out = RelationBuilder::new(schema);
    let mut row: Vec<Value> = vec![Value::Int(0); q.num_vars()];
    yannakakis_for_each(q, tree, rels, |rels, by_node| {
        let w = assemble_answer(q, tree, rels, by_node, &mut row);
        out.push(&row, w);
    });
    out.finish()
}

/// Count answers without materializing them, via bottom-up counting DP:
/// `count(t) = prod_children sum_{t' joining t} count(t')`, answer =
/// `sum over root tuples`. Linear time after reduction — used to verify
/// AGM-bound experiments without paying materialization.
pub fn yannakakis_count(q: &ConjunctiveQuery, tree: &JoinTree, mut rels: Vec<Relation>) -> u128 {
    full_reducer(q, tree, &mut rels);
    if rels.iter().any(|r| r.is_empty()) {
        return 0;
    }
    let order = tree.preorder();
    // counts[node][row] = number of answers in the subtree of `node`
    // consistent with `row`.
    let mut counts: Vec<Vec<u128>> = rels.iter().map(|r| vec![1u128; r.len()]).collect();
    for &node in order.iter().rev() {
        let children: Vec<usize> = tree.node(node).children.clone();
        let atom = tree.node(node).atom;
        for child in children {
            let catom = tree.node(child).atom;
            let (cpos, ppos) = join_key_positions(q, tree, child);
            let idx = HashIndex::build(&rels[catom], &cpos);
            let mut key = Vec::new();
            for row in 0..rels[atom].len() as RowId {
                rels[atom].key_into(row, &ppos, &mut key);
                let s: u128 = idx
                    .get(&key)
                    .iter()
                    .map(|&r| counts[catom][r as usize])
                    .sum();
                counts[atom][row as usize] = counts[atom][row as usize].saturating_mul(s);
            }
        }
    }
    let root_atom = tree.node(tree.root()).atom;
    counts[root_atom].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, star_query};
    use anyk_query::gyo::{gyo_reduce, GyoResult};
    use anyk_storage::RelationBuilder;

    fn edge_rel(cols: [&str; 2], edges: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(cols));
        for &(x, y) in edges {
            b.push_ints(&[x, y], 1.0);
        }
        b.finish()
    }

    fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
        match gyo_reduce(q) {
            GyoResult::Acyclic(t) => t,
            _ => panic!("cyclic"),
        }
    }

    #[test]
    fn path_enumeration() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2), (1, 3), (4, 2)]),
            edge_rel(["b", "c"], &[(2, 5), (3, 6), (3, 7)]),
        ];
        let mut n = 0;
        yannakakis_for_each(&q, &tree, rels, |_, _| n += 1);
        // (1,2,5), (1,3,6), (1,3,7), (4,2,5)
        assert_eq!(n, 4);
    }

    #[test]
    fn count_matches_enumeration() {
        let q = path_query(3);
        let tree = tree_of(&q);
        let mk = || {
            vec![
                edge_rel(["a", "b"], &[(1, 2), (2, 2), (3, 4)]),
                edge_rel(["b", "c"], &[(2, 2), (2, 3), (4, 1)]),
                edge_rel(["c", "d"], &[(2, 9), (3, 9), (1, 8)]),
            ]
        };
        let mut n: u128 = 0;
        yannakakis_for_each(&q, &tree, mk(), |_, _| n += 1);
        assert_eq!(yannakakis_count(&q, &tree, mk()), n);
        assert!(n > 0);
    }

    #[test]
    fn star_count() {
        let q = star_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["o", "p"], &[(1, 10), (1, 11), (2, 12)]),
            edge_rel(["o", "q"], &[(1, 20), (2, 21), (2, 22)]),
        ];
        // center 1: 2*1 = 2; center 2: 1*2 = 2.
        assert_eq!(yannakakis_count(&q, &tree, rels), 4);
    }

    #[test]
    fn empty_result() {
        let q = path_query(2);
        let tree = tree_of(&q);
        let rels = vec![
            edge_rel(["a", "b"], &[(1, 2)]),
            edge_rel(["b", "c"], &[(9, 5)]),
        ];
        let mut n = 0;
        yannakakis_for_each(&q, &tree, rels, |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
