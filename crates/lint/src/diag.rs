//! Diagnostics: what a rule reports, with severity and position.

use std::fmt;

/// How bad a finding is. Errors fail the build (`anyk-lint` exits
/// non-zero); warnings print but pass — the tier for heuristics whose
/// false-positive rate is not zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: `file:line:col: severity [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub severity: Severity,
    /// The rule id (`unsafe-needs-safety`, ...).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.file, self.line, self.col, self.severity, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grep_friendly() {
        let d = Diagnostic {
            file: "crates/server/src/tcp.rs".to_string(),
            line: 321,
            col: 40,
            severity: Severity::Error,
            rule: "wire-encoder-discipline",
            message: "protocol literal outside wire.rs/frame.rs".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/server/src/tcp.rs:321:40: error [wire-encoder-discipline] \
             protocol literal outside wire.rs/frame.rs"
        );
        assert!(Severity::Error > Severity::Warning);
    }
}
