//! A small Rust lexer: just enough token structure for lexical
//! lint rules, with exact `line:col` positions.
//!
//! What it gets right (because the rules depend on it):
//!
//! * comments — line (`//`, `///`, `//!`) and block (`/* */`, nested)
//!   — are *not* tokens; they are collected separately so rules can
//!   look for `// SAFETY:` and `// LINT-ALLOW(...)` annotations
//!   without ever mistaking commented-out code for live code;
//! * string literals in every Rust flavor — `"…"`, `b"…"`, `r"…"`,
//!   `r#"…"#` (any `#` depth), `br#"…"#` — become single [`Tok::Str`]
//!   tokens carrying their raw content, so a protocol literal inside
//!   a string never leaks tokens and a `//` inside a string never
//!   starts a comment;
//! * char literals vs lifetimes — `'a'` is a literal, `'a` is a
//!   lifetime — so a lint scanning for identifiers is not derailed by
//!   `'static`;
//! * raw identifiers (`r#match`) lex as identifiers, not raw strings.
//!
//! Everything else (numbers, punctuation) is kept deliberately loose:
//! the rules only pattern-match identifiers, strings, and punctuation
//! shapes, never numeric values.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `fn`, `Instant`, ...).
    Ident(String),
    /// A string literal's raw content (quotes and any `r#` framing
    /// stripped; escape sequences left unprocessed).
    Str(String),
    /// A char or byte literal (content not needed by any rule).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal (value not needed by any rule).
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// A comment (line or block) with its 1-based line span and text
/// (comment markers stripped for line comments; raw for block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line_start: u32,
    pub line_end: u32,
    pub text: String,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while<F: Fn(u8) -> bool>(&mut self, f: F) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// How many `#` would follow at `ahead`, and whether a `"` follows
/// them — the raw-string opener test for `r`/`br` prefixes.
fn raw_string_follows(c: &Cursor<'_>, ahead: usize) -> Option<usize> {
    let mut hashes = 0;
    while c.peek(ahead + hashes) == Some(b'#') {
        hashes += 1;
    }
    (c.peek(ahead + hashes) == Some(b'"')).then_some(hashes)
}

/// Lex `src` into tokens + comments. Never fails: unterminated
/// constructs run to end-of-file (the compiler reports those; the
/// linter only needs to stay aligned on well-formed code).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos;
                c.eat_while(|b| b != b'\n');
                let mut text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                // Strip the `//`, `///`, or `//!` marker.
                let trimmed = text
                    .trim_start_matches('/')
                    .trim_start_matches('!')
                    .to_string();
                text = trimmed;
                out.comments.push(Comment {
                    line_start: line,
                    line_end: line,
                    text,
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line_start: line,
                    line_end: c.line,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                });
            }
            b'"' => {
                let content = lex_cooked_string(&mut c);
                out.tokens.push(Token {
                    kind: Tok::Str(content),
                    line,
                    col,
                });
            }
            b'r' => {
                if let Some(hashes) = raw_string_follows(&c, 1) {
                    c.bump(); // r
                    let content = lex_raw_string(&mut c, hashes);
                    out.tokens.push(Token {
                        kind: Tok::Str(content),
                        line,
                        col,
                    });
                } else {
                    // `r#ident` or a plain identifier starting with r.
                    if c.peek(1) == Some(b'#') {
                        c.bump();
                        c.bump();
                    }
                    lex_ident(&mut c, &mut out, line, col);
                }
            }
            b'b' => {
                if c.peek(1) == Some(b'"') {
                    c.bump(); // b
                    let content = lex_cooked_string(&mut c);
                    out.tokens.push(Token {
                        kind: Tok::Str(content),
                        line,
                        col,
                    });
                } else if c.peek(1) == Some(b'\'') {
                    c.bump(); // b
                    lex_char(&mut c);
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line,
                        col,
                    });
                } else if c.peek(1) == Some(b'r') {
                    if let Some(hashes) = raw_string_follows(&c, 2) {
                        c.bump(); // b
                        c.bump(); // r
                        let content = lex_raw_string(&mut c, hashes);
                        out.tokens.push(Token {
                            kind: Tok::Str(content),
                            line,
                            col,
                        });
                    } else {
                        lex_ident(&mut c, &mut out, line, col);
                    }
                } else {
                    lex_ident(&mut c, &mut out, line, col);
                }
            }
            b'\'' => {
                // Char literal or lifetime. `'X'` / `'\…'` are chars;
                // `'ident` with no closing quote is a lifetime.
                if c.peek(1) == Some(b'\\') {
                    lex_char(&mut c);
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line,
                        col,
                    });
                } else if c.peek(2) == Some(b'\'')
                    && c.peek(1).is_some_and(|x| x != b'\'' && x != b'\n')
                {
                    c.bump();
                    c.bump();
                    c.bump();
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line,
                        col,
                    });
                } else {
                    c.bump(); // '
                    c.eat_while(is_ident_continue);
                    out.tokens.push(Token {
                        kind: Tok::Lifetime,
                        line,
                        col,
                    });
                }
            }
            b if is_ident_start(b) => lex_ident(&mut c, &mut out, line, col),
            b if b.is_ascii_digit() => {
                // Loose number scan: digits, radix/exponent letters,
                // `_`, and a `.` only when a digit follows (so `1.0`
                // is one token but `1.max(2)` keeps its method dot).
                c.bump();
                loop {
                    match c.peek(0) {
                        Some(x) if x.is_ascii_alphanumeric() || x == b'_' => {
                            c.bump();
                        }
                        Some(b'.') if c.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                            c.bump();
                        }
                        _ => break,
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Num,
                    line,
                    col,
                });
            }
            other => {
                c.bump();
                out.tokens.push(Token {
                    kind: Tok::Punct(other as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn lex_ident(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let start = c.pos;
    c.eat_while(is_ident_continue);
    let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
    out.tokens.push(Token {
        kind: Tok::Ident(text),
        line,
        col,
    });
}

/// Consume a `"…"` literal (opening quote at the cursor); returns the
/// raw content between the quotes.
fn lex_cooked_string(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening "
    let start = c.pos;
    loop {
        match c.peek(0) {
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'"') => {
                let content = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                c.bump();
                return content;
            }
            Some(_) => {
                c.bump();
            }
            None => return String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        }
    }
}

/// Consume a raw string body: cursor on the first `#` or the `"`;
/// `hashes` is the `#` count. Returns the content.
fn lex_raw_string(c: &mut Cursor<'_>, hashes: usize) -> String {
    for _ in 0..hashes {
        c.bump();
    }
    c.bump(); // opening "
    let start = c.pos;
    loop {
        match c.peek(0) {
            Some(b'"') => {
                let mut ok = true;
                for i in 0..hashes {
                    if c.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let content = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                    c.bump();
                    for _ in 0..hashes {
                        c.bump();
                    }
                    return content;
                }
                c.bump();
            }
            Some(_) => {
                c.bump();
            }
            None => return String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        }
    }
}

/// Consume a char/byte literal (cursor on the opening `'`).
fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // '
    loop {
        match c.peek(0) {
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'\'') => {
                c.bump();
                return;
            }
            Some(b'\n') | None => return,
            Some(_) => {
                c.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unsafe unwrap() \"ERR \"\n/* panic! */ let y;");
        assert!(idents("let x = 1; // unsafe\nlet y;").contains(&"let".to_string()));
        assert_eq!(l.comments.len(), 2);
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "unsafe" || s == "panic")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn string_flavors_lex_as_single_tokens() {
        assert_eq!(strings(r#"let s = "OK cursor=0";"#), vec!["OK cursor=0"]);
        assert_eq!(strings(r##"let s = r"raw \ no escapes";"##).len(), 1);
        assert_eq!(
            strings(r###"let s = r#"with "quotes" inside"#;"###),
            vec![r#"with "quotes" inside"#]
        );
        assert_eq!(strings(r#"let b = b"bytes";"#), vec!["bytes"]);
        // A `//` inside a string must not start a comment.
        let l = lex(r#"let url = "http://x"; let y = 1;"#);
        assert!(l.comments.is_empty());
        assert!(idents(r#"let url = "http://x"; let y = 1;"#).contains(&"y".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert!(idents("let r#match = 1;").contains(&"match".to_string()));
        assert!(strings("let r#match = 1;").is_empty());
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let ids = idents("let x = 1.max(2); let y = 0x1f; let z = 1.5e-3;");
        assert!(ids.contains(&"max".to_string()));
    }
}
