//! anyk-lint: in-tree static analysis enforcing the serving stack's
//! invariants.
//!
//! A deliberately dependency-free pass (no `syn`, no regex, no
//! network) over the workspace's own source: a small Rust lexer that
//! correctly skips comments, strings, and raw strings feeds six
//! project-specific rules (see [`rules`]). Diagnostics carry
//! `file:line:col`, a severity, and a rule id; authors can silence a
//! finding with `// LINT-ALLOW(rule): reason` on the offending line or
//! the line above.
//!
//! Runs two ways, on the same code path:
//! - `cargo run -p anyk-lint -- --workspace` (the CI gate), and
//! - as a `#[test]` (`crates/lint/tests/self_lint.rs`), so a plain
//!   `cargo test` refuses violations too.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};
pub use source::SourceFile;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint one file's source under its workspace-relative path
/// (`/`-separated, e.g. `crates/server/src/tcp.rs`). Returns the
/// post-suppression diagnostics, sorted by position; malformed or
/// unknown-rule `LINT-ALLOW` comments are themselves reported (rule
/// `lint-allow`) so a typo cannot silently disable nothing.
pub fn lint_source(relpath: &str, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(relpath, source);
    let mut out: Vec<Diagnostic> = rules::run_all(&file)
        .into_iter()
        .filter(|d| !file.is_suppressed(d.rule, d.line))
        .collect();
    for (line, message) in &file.bad_allows {
        out.push(Diagnostic {
            file: relpath.to_string(),
            line: *line,
            col: 1,
            severity: Severity::Error,
            rule: "lint-allow",
            message: message.clone(),
        });
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// The `.rs` files the workspace pass scans: `crates/*/src/**` (and
/// `crates/shims/*/src/**`) plus the root facade `src/**`. Test
/// directories (`tests/`, `benches/`) and the lint fixtures are
/// deliberately outside the walk — fixtures *contain* violations.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        collect_crate_srcs(&crates, &mut out)?;
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

/// For each subdirectory of `dir` that has a `src/`, collect its `.rs`
/// files; recurse one level for nested crate roots like `crates/shims/*`.
fn collect_crate_srcs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_dir() {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            collect_rs(&src, out)?;
        } else {
            collect_crate_srcs(&path, out)?;
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`; diagnostics come back
/// sorted by (file, line, col).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_source(&rel, &source));
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(out)
}

/// True if any diagnostic is an [`Severity::Error`] — the exit-code
/// predicate shared by the CLI and the self-lint test.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_exactly_the_named_rule() {
        let src = "\
// LINT-ALLOW(no-panic-hot-path): demo.
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g(x: Option<u32>) -> u32 { x.unwrap() }
";
        let diags = lint_source("crates/server/src/demo.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn bad_allow_is_itself_a_diagnostic() {
        let src = "// LINT-ALLOW(nonexistent-rule): why not.\nfn f() {}\n";
        let diags = lint_source("crates/core/src/demo.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lint-allow");
        assert!(has_errors(&diags));
    }

    #[test]
    fn diagnostics_are_position_sorted() {
        let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g(x: Option<u32>) -> u32 { x.expect(\"no\") }
";
        let diags = lint_source("crates/engine/src/demo.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }
}
