//! `anyk-lint` CLI: `cargo run -p anyk-lint -- --workspace`.
//!
//! Exit status: 0 when no error-severity findings, 1 otherwise, 2 on
//! usage/IO problems. Output is one grep-friendly line per finding:
//! `file:line:col: severity [rule] message`.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use anyk_lint::{has_errors, lint_workspace, Severity};

fn usage() -> ExitCode {
    eprintln!(
        "usage: anyk-lint --workspace [--root <dir>]\n\
         \n\
         Lints every crate's src/ (plus the root facade) against the\n\
         serving stack's invariants. Suppress a finding with\n\
         `// LINT-ALLOW(rule): reason` on or above the offending line."
    );
    ExitCode::from(2)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if !workspace {
        return usage();
    }
    let root = match root_arg {
        Some(dir) => dir,
        None => {
            let cwd = match env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("anyk-lint: cannot read current dir: {err}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "anyk-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match lint_workspace(&root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("anyk-lint: {err}");
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    println!(
        "anyk-lint: {errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
