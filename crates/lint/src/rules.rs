//! The seven project-specific rules. Each is a pure function from a
//! [`SourceFile`] to diagnostics; scoping (which crates a rule applies
//! to) lives here too, derived from the workspace-relative path.
//!
//! The rules encode invariants the compiler cannot see — see
//! `docs/ARCHITECTURE.md` § "Invariants & static analysis" for the
//! rationale behind each:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety` | every `unsafe` carries a `// SAFETY:` contract |
//! | `no-panic-hot-path` | serving hot paths (`server`, `engine`) never panic |
//! | `lock-order` | session ≺ shard coord ≺ catalog ≺ plan cache ≺ deadline map |
//! | `wire-encoder-discipline` | protocol bytes originate only in the shared encoder |
//! | `shim-purity` | shims import no anyk code; core stays socket-free |
//! | `no-boxed-dyn-error` | library crates keep typed errors end-to-end |
//! | `timing-discipline` | raw wall clocks live only in `crates/obs` |

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, Token};
use crate::source::SourceFile;

/// Every rule id, in documentation order. `LINT-ALLOW` comments may
/// only name these.
pub const RULE_IDS: [&str; 7] = [
    "unsafe-needs-safety",
    "no-panic-hot-path",
    "lock-order",
    "wire-encoder-discipline",
    "shim-purity",
    "no-boxed-dyn-error",
    "timing-discipline",
];

/// The library crates whose non-test code must stay deterministic
/// (no clocks, no sockets) and keep typed errors.
const LIBRARY_CRATES: [&str; 7] = [
    "storage",
    "query",
    "join",
    "topk",
    "core",
    "workloads",
    "engine",
];

/// Where a file sits in the workspace, derived from its relative path.
struct Scope<'a> {
    path: &'a str,
    file_name: &'a str,
}

impl<'a> Scope<'a> {
    fn of(file: &'a SourceFile) -> Scope<'a> {
        let path = file.path.as_str();
        let file_name = path.rsplit('/').next().unwrap_or(path);
        Scope { path, file_name }
    }

    /// Inside `crates/<name>/src/`.
    fn in_crate_src(&self, name: &str) -> bool {
        let prefix = format!("crates/{name}/src/");
        self.path.starts_with(&prefix)
    }

    /// Inside any `crates/shims/*/src/`.
    fn in_shims(&self) -> bool {
        self.path.starts_with("crates/shims/")
    }

    /// The root facade (`src/lib.rs` and friends).
    fn in_root_src(&self) -> bool {
        self.path.starts_with("src/")
    }

    /// Non-test code of a deterministic library crate (or the facade).
    fn in_library(&self) -> bool {
        self.in_root_src() || LIBRARY_CRATES.iter().any(|c| self.in_crate_src(c))
    }
}

/// Run every applicable rule over `file`; suppressions are applied by
/// the caller ([`crate::lint_source`]).
pub fn run_all(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unsafe_needs_safety(file, &mut out);
    no_panic_hot_path(file, &mut out);
    lock_order(file, &mut out);
    wire_encoder_discipline(file, &mut out);
    shim_purity(file, &mut out);
    no_boxed_dyn_error(file, &mut out);
    timing_discipline(file, &mut out);
    out
}

fn diag(
    file: &SourceFile,
    t: &Token,
    severity: Severity,
    rule: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        file: file.path.clone(),
        line: t.line,
        col: t.col,
        severity,
        rule,
        message,
    }
}

fn ident(t: &Token) -> Option<&str> {
    match &t.kind {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(t) if t.kind == Tok::Punct(c))
}

// ---------------------------------------------------------------
// Rule 1: unsafe-needs-safety
// ---------------------------------------------------------------

/// Every `unsafe` keyword (block, fn, impl, trait) outside test code
/// must have a contiguous line-comment block directly above containing
/// `SAFETY:`. Applies workspace-wide — today only
/// `crates/shims/polling` has any `unsafe` at all, and this rule keeps
/// it that way by making new `unsafe` expensive to add silently.
fn unsafe_needs_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in file.tokens() {
        if ident(t) != Some("unsafe") || file.is_test_line(t.line) {
            continue;
        }
        let above = file.comment_block_ending_at(t.line.saturating_sub(1));
        if !above.contains("SAFETY:") {
            out.push(diag(
                file,
                t,
                Severity::Error,
                "unsafe-needs-safety",
                "`unsafe` without a `// SAFETY:` comment directly above \
                 stating the contract that makes it sound"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------
// Rule 2: no-panic-hot-path
// ---------------------------------------------------------------

/// Panic sites a lexical scan can see: `.unwrap(` / `.expect(` method
/// calls and the panicking macros.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Non-test code of `crates/server` and `crates/engine` must not
/// contain `unwrap`/`expect`/`panic!`/`unreachable!` — a poisoned lock
/// or a surprising `None` on the serving path must become a typed
/// error (or poison recovery), never a worker-thread abort.
fn no_panic_hot_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    if !(scope.in_crate_src("server") || scope.in_crate_src("engine")) {
        return;
    }
    let toks = file.tokens();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident(t) else { continue };
        if file.is_test_line(t.line) {
            continue;
        }
        let flagged = if PANIC_MACROS.contains(&name) {
            is_punct(toks.get(i + 1), '!')
        } else if name == "unwrap" || name == "expect" {
            i > 0 && is_punct(toks.get(i - 1), '.') && is_punct(toks.get(i + 1), '(')
        } else {
            false
        };
        if flagged {
            out.push(diag(
                file,
                t,
                Severity::Error,
                "no-panic-hot-path",
                format!(
                    "`{name}` on a serving hot path — return a typed error or \
                     recover (poisoned locks: `unwrap_or_else(PoisonError::into_inner)`)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------
// Rule 3: lock-order
// ---------------------------------------------------------------

/// The documented canonical order (outermost first). Receiver-name
/// aliases map to one position; acquiring a smaller position while a
/// larger one is held is a potential deadlock.
fn lock_position(name: &str) -> Option<(usize, &'static str)> {
    match name {
        "session" => Some((0, "session mutex")),
        "coord" => Some((1, "shard-coordination RwLock")),
        "catalog" => Some((2, "catalog RwLock")),
        "cache" => Some((3, "plan-cache mutex")),
        "map" | "deadlines" | "shard" | "shards" => Some((4, "shared deadline map")),
        _ => None,
    }
}

#[derive(Debug)]
struct LiveGuard {
    binding: String,
    lock_name: String,
    position: Option<(usize, &'static str)>,
    depth: usize,
    line: u32,
}

/// Heuristic guard-scope tracking over `crates/server` +
/// `crates/engine`: a `let g = <recv>.lock()/.read()/.write()` guard
/// is live until its enclosing block closes; while any guard is live,
/// acquiring a known lock out of the documented order
/// (session ≺ coord ≺ catalog ≺ cache ≺ deadline map) or re-acquiring
/// the same lock is an error, and any other nested `.lock()` is a
/// warning
/// (the cross-function cases this lexical pass cannot prove safe).
/// `.read()`/`.write()` count only with an empty argument list and a
/// known RwLock receiver, so socket `read(&mut buf)` calls never
/// match.
fn lock_order(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    if !(scope.in_crate_src("server") || scope.in_crate_src("engine")) {
        return;
    }
    let toks = file.tokens();
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    // The current statement's `let` binding, if any.
    let mut stmt_let: Option<String> = None;
    let mut stmt_start = true;

    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = true;
                stmt_let = None;
            }
            Tok::Punct('}') => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                stmt_start = true;
                stmt_let = None;
            }
            Tok::Punct(';') => {
                stmt_start = true;
                stmt_let = None;
            }
            Tok::Ident(name) if stmt_start && name == "let" => {
                // Binding name: first ident after `let` (skipping
                // `mut`); destructuring patterns get a placeholder.
                let mut j = i + 1;
                if toks.get(j).and_then(ident) == Some("mut") {
                    j += 1;
                }
                stmt_let = Some(
                    toks.get(j)
                        .and_then(ident)
                        .unwrap_or("<pattern>")
                        .to_string(),
                );
                stmt_start = false;
            }
            Tok::Ident(method)
                if (method == "lock" || method == "read" || method == "write")
                    && i > 0
                    && is_punct(toks.get(i - 1), '.')
                    && is_punct(toks.get(i + 1), '(')
                    && is_punct(toks.get(i + 2), ')') =>
            {
                if file.is_test_line(t.line) {
                    stmt_start = false;
                    continue;
                }
                // Receiver: the identifier before the `.`.
                let recv = i
                    .checked_sub(2)
                    .and_then(|r| toks.get(r))
                    .and_then(ident)
                    .unwrap_or("?");
                let position = lock_position(recv);
                // `.read()`/`.write()` only count on known RwLocks.
                if method != "lock" && position.is_none() {
                    stmt_start = false;
                    continue;
                }
                for g in &guards {
                    match (position, g.position) {
                        (Some((new_pos, new_label)), Some((held_pos, held_label))) => {
                            if new_pos <= held_pos {
                                out.push(diag(
                                    file,
                                    t,
                                    Severity::Error,
                                    "lock-order",
                                    format!(
                                        "acquiring the {new_label} while guard `{}` holds the \
                                         {held_label} (line {}) violates the documented order \
                                         session \u{227a} coord \u{227a} catalog \u{227a} \
                                         cache \u{227a} deadline map",
                                        g.binding, g.line
                                    ),
                                ));
                            }
                        }
                        _ => {
                            out.push(diag(
                                file,
                                t,
                                Severity::Warning,
                                "lock-order",
                                format!(
                                    "`.{method}()` on `{recv}` while guard `{}` (of `{}`, \
                                     line {}) is live in the same function — release the \
                                     guard first or document why this cannot deadlock",
                                    g.binding, g.lock_name, g.line
                                ),
                            ));
                        }
                    }
                }
                // Only a `let` whose chain *ends* with the acquisition
                // (modulo unwrap/expect adapters) binds a guard —
                // `let v = m.lock().unwrap().recv();` binds the recv
                // result, and the guard temporary dies with the
                // statement.
                if let Some(binding) = stmt_let.take() {
                    if chain_ends_statement(toks, i + 2) {
                        guards.push(LiveGuard {
                            binding,
                            lock_name: recv.to_string(),
                            position,
                            depth,
                            line: t.line,
                        });
                    }
                }
                stmt_start = false;
            }
            _ => {
                stmt_start = false;
            }
        }
    }
}

/// Result adapters that keep the value a guard when chained after an
/// acquisition (`.lock().unwrap_or_else(PoisonError::into_inner)`).
const GUARD_ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "unwrap_or"];

/// With `close` the index of the `)` ending an acquisition call: true
/// when the rest of the statement is only guard adapters and then `;`
/// (or `?;`) — i.e. the `let` really binds the guard.
fn chain_ends_statement(toks: &[Token], close: usize) -> bool {
    let mut j = close;
    loop {
        match toks.get(j + 1).map(|t| &t.kind) {
            Some(Tok::Punct(';')) => return true,
            Some(Tok::Punct('?')) => j += 1,
            Some(Tok::Punct('.')) => {
                let Some(name) = toks.get(j + 2).and_then(ident) else {
                    return false;
                };
                if !GUARD_ADAPTERS.contains(&name) || !is_punct(toks.get(j + 3), '(') {
                    return false;
                }
                // Skip the adapter's balanced argument list.
                let mut depth = 0i32;
                j += 3;
                while let Some(t) = toks.get(j) {
                    match t.kind {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => return false,
        }
    }
}

// ---------------------------------------------------------------
// Rule 4: wire-encoder-discipline
// ---------------------------------------------------------------

/// Files allowed to spell protocol literals: the shared encoders.
const ENCODER_FILES: [&str; 2] = ["wire.rs", "frame.rs"];
/// Files allowed to call socket-write methods: encoders + transports.
const TRANSPORT_FILES: [&str; 4] = ["wire.rs", "frame.rs", "tcp.rs", "event_loop.rs"];

/// True when a string literal's content opens with a protocol keyword
/// (`OK`, `ERR`, `END`, `ROW`, `INFO`) as a full word — exact, or
/// followed by a space or an (unprocessed) `\n` escape.
fn is_protocol_literal(s: &str) -> bool {
    ["OK", "ERR", "END", "ROW", "INFO"].iter().any(|kw| {
        s == *kw
            || s.strip_prefix(kw)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with("\\n"))
    })
}

/// Within `crates/server`, protocol literals may only appear in the
/// shared encoder (`wire.rs` + `frame.rs`), and socket-write calls
/// only in the encoder + transport files — so no code path can ever
/// hand-format reply bytes, which is what keeps `TcpClient` ==
/// `LocalClient` byte-identical *by construction* rather than by test.
fn wire_encoder_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    if !scope.in_crate_src("server") {
        return;
    }
    let literals_ok = ENCODER_FILES.contains(&scope.file_name);
    let writes_ok = TRANSPORT_FILES.contains(&scope.file_name);
    let toks = file.tokens();
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if !literals_ok {
            if let Tok::Str(s) = &t.kind {
                if is_protocol_literal(s) {
                    out.push(diag(
                        file,
                        t,
                        Severity::Error,
                        "wire-encoder-discipline",
                        format!(
                            "protocol literal {:?} outside wire.rs/frame.rs — route reply \
                             bytes through the shared encoder (byte-identity contract)",
                            s
                        ),
                    ));
                }
            }
        }
        if !writes_ok {
            if let Some(name) = ident(t) {
                if (name == "write" || name == "write_all" || name == "write_vectored")
                    && i > 0
                    && is_punct(toks.get(i - 1), '.')
                    && is_punct(toks.get(i + 1), '(')
                    && !is_punct(toks.get(i + 2), ')')
                {
                    out.push(diag(
                        file,
                        t,
                        Severity::Error,
                        "wire-encoder-discipline",
                        format!(
                            "`.{name}(...)` outside the transport/encoder files — only \
                             tcp.rs/event_loop.rs may write sockets, with bytes from the \
                             shared encoder"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Rule 5: shim-purity
// ---------------------------------------------------------------

/// Two directions: `crates/shims/*` must not reference anyk crates
/// (shims mirror *external* APIs; a shim that imports the workspace
/// inverts the dependency arrow), and the deterministic library
/// crates must not touch sockets (`std::net`) — those belong to
/// crates/server, keeping core/engine testable and replayable. (Wall
/// clocks were this rule's concern too until `timing-discipline`
/// tightened the clock invariant workspace-wide.)
fn shim_purity(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    let toks = file.tokens();
    if scope.in_shims() {
        for t in toks {
            if file.is_test_line(t.line) {
                continue;
            }
            if let Some(name) = ident(t) {
                if name == "anyk" || name.starts_with("anyk_") {
                    out.push(diag(
                        file,
                        t,
                        Severity::Error,
                        "shim-purity",
                        format!(
                            "shim references workspace crate `{name}` — shims mirror \
                             external APIs and must not depend on anyk code"
                        ),
                    ));
                }
            }
        }
        return;
    }
    if !scope.in_library() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let Some(name) = ident(t) else { continue };
        let path_to = |want: &str| -> bool {
            is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && toks.get(i + 3).and_then(ident) == Some(want)
        };
        if name == "std" && path_to("net") {
            out.push(diag(
                file,
                t,
                Severity::Error,
                "shim-purity",
                "`std::net` in a deterministic library crate — sockets live in \
                 crates/server (transports) only"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------
// Rule 6: no-boxed-dyn-error
// ---------------------------------------------------------------

/// Library crates (and the server) keep typed errors end-to-end:
/// `Box<dyn Error>` erases the failure taxonomy PR 1 built
/// (`EngineError`, `ServeError`, ...) and makes the wire's `ERR
/// <kind>` tag a lie. Flags `Box<dyn … Error>` / `… Error + Send>` in
/// non-test code.
fn no_boxed_dyn_error(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    if !(scope.in_library() || scope.in_crate_src("server")) {
        return;
    }
    let toks = file.tokens();
    for (i, t) in toks.iter().enumerate() {
        if ident(t) != Some("Box") || file.is_test_line(t.line) {
            continue;
        }
        if !is_punct(toks.get(i + 1), '<') || toks.get(i + 2).and_then(ident) != Some("dyn") {
            continue;
        }
        // Scan the angle-bracket span at depth 1 for a path segment
        // `Error` that ends the trait object (followed by `>` or `+`).
        let mut depth = 1i32;
        let mut j = i + 2;
        while depth > 0 {
            j += 1;
            let Some(tj) = toks.get(j) else { break };
            match &tj.kind {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct(';') | Tok::Punct('{') => break,
                Tok::Ident(s)
                    if s == "Error"
                        && depth == 1
                        && (is_punct(toks.get(j + 1), '>') || is_punct(toks.get(j + 1), '+')) =>
                {
                    out.push(diag(
                        file,
                        t,
                        Severity::Error,
                        "no-boxed-dyn-error",
                        "`Box<dyn Error>` in a library crate — use the crate's typed \
                         error enum so failures stay matchable end-to-end"
                            .to_string(),
                    ));
                    break;
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------
// Rule 7: timing-discipline
// ---------------------------------------------------------------

/// Raw wall clocks — `Instant::now()` / `SystemTime::now()` — are
/// permitted only inside `crates/obs`, the one crate whose job is
/// reading clocks (its `MonotonicClock` is the workspace's sole
/// `Instant::now` site). Everything else — engine, server, bench,
/// even this linter — must go through an injected
/// [`Clock`](anyk_obs::Clock) (or `anyk_obs::global_clock()` at the
/// edges), so tests run on a deterministic clock and timing behavior
/// is replayable. Shims that mirror an external timing API (the
/// criterion shim) carry an explicit `LINT-ALLOW` instead of a scope
/// carve-out, so every exception is visible and justified in place.
fn timing_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope = Scope::of(file);
    if scope.in_crate_src("obs") {
        return;
    }
    let toks = file.tokens();
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let Some(name) = ident(t) else { continue };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let calls_now = is_punct(toks.get(i + 1), ':')
            && is_punct(toks.get(i + 2), ':')
            && toks.get(i + 3).and_then(ident) == Some("now");
        if calls_now {
            out.push(diag(
                file,
                t,
                Severity::Error,
                "timing-discipline",
                format!(
                    "`{name}::now()` outside crates/obs — read time through an \
                     injected `anyk_obs::Clock` (or `anyk_obs::global_clock()` at \
                     a bench/CLI edge) so timing stays deterministic under test"
                ),
            ));
        }
    }
}
