//! The per-file analysis context rules run against: the token stream,
//! the comments, which lines are test code, and which diagnostics the
//! author suppressed with `// LINT-ALLOW(rule): reason`.

use crate::lexer::{lex, Comment, Lexed, Tok, Token};
use crate::rules::RULE_IDS;

/// A half-open line range `[start, end]` (inclusive) of test code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineRange {
    start: u32,
    end: u32,
}

/// One parsed `LINT-ALLOW` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rules it names (comma-separated in the comment).
    pub rules: Vec<String>,
    /// The line the comment sits on — it silences findings on this
    /// line and the next code line.
    pub line: u32,
    /// The justification after the `:` (must be non-empty).
    pub reason: String,
}

/// A lexed, analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    lexed: Lexed,
    test_ranges: Vec<LineRange>,
    suppressions: Vec<Suppression>,
    /// Malformed/unknown-rule LINT-ALLOW comments (reported by the
    /// engine so a typo cannot silently disable nothing).
    pub bad_allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lex and analyze `source` under the given workspace-relative
    /// path.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let (suppressions, bad_allows) = find_suppressions(&lexed.comments);
        SourceFile {
            path: path.to_string(),
            lexed,
            test_ranges,
            suppressions,
            bad_allows,
        }
    }

    /// All tokens, including those inside test code.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// All comments.
    pub fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }

    /// True when `line` falls inside a `#[cfg(test)]` module or a
    /// `#[test]` function body.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|r| r.start <= line && line <= r.end)
    }

    /// True when a `LINT-ALLOW(rule)` annotation covers `line` — the
    /// annotation's own line or the line directly below it (the usual
    /// comment-above-the-code placement).
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }

    /// The contiguous line-comment block ending on `line` (used for
    /// `// SAFETY:` lookup): text of comments on `line`, `line-1`, ...
    /// down to the first non-comment line.
    pub fn comment_block_ending_at(&self, line: u32) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut want = line;
        // Walk comments from the back; they are in source order.
        for c in self.lexed.comments.iter().rev() {
            if c.line_end > want {
                continue;
            }
            if c.line_end == want || (c.line_start <= want && want <= c.line_end) {
                parts.push(&c.text);
                want = c.line_start.saturating_sub(1);
            } else {
                break;
            }
        }
        parts.reverse();
        parts.join("\n")
    }
}

/// Scan for `#[test]` / `#[cfg(test)]`-guarded items and return the
/// line ranges of their bodies. Attribute → skip further attributes →
/// find the item's `{` before any top-level `;` → match braces.
fn find_test_ranges(tokens: &[Token]) -> Vec<LineRange> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let Some((attr_is_test, after_attr)) = parse_attribute(tokens, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test {
            i = after_attr;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = after_attr;
        while j < tokens.len() && tokens[j].kind == Tok::Punct('#') {
            match parse_attribute(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // Find the item body's opening brace; a `;` first means the
        // attribute guards a bodyless item (a `use`, a field) — skip.
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            match tokens[k].kind {
                Tok::Punct('{') => {
                    open = Some(k);
                    break;
                }
                Tok::Punct(';') => break,
                _ => k += 1,
            }
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        // Match braces to the close.
        let mut depth = 0i32;
        let mut close = open;
        for (idx, t) in tokens.iter().enumerate().skip(open) {
            match t.kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = idx;
                        break;
                    }
                }
                _ => {}
            }
        }
        ranges.push(LineRange {
            start: tokens[i].line,
            end: tokens[close].line,
        });
        i = close + 1;
    }
    ranges
}

/// Parse an attribute starting at `#` (index `i`); returns
/// `(is_test_attribute, index_after_closing_bracket)`. A test
/// attribute is `#[test]`, `#[cfg(test)]`, or any `cfg(...)`
/// containing `test` not guarded by `not(`.
fn parse_attribute(tokens: &[Token], i: usize) -> Option<(bool, usize)> {
    let mut j = i + 1;
    // `#![...]` inner attributes too.
    if tokens.get(j).map(|t| &t.kind) == Some(&Tok::Punct('!')) {
        j += 1;
    }
    if tokens.get(j).map(|t| &t.kind) != Some(&Tok::Punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    let mut rendered = String::new();
    let mut k = j;
    while k < tokens.len() {
        match &tokens[k].kind {
            Tok::Punct('[') => {
                depth += 1;
                if depth > 1 {
                    rendered.push('[');
                }
            }
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_test = rendered == "test"
                        || (rendered.contains("test")
                            && rendered.contains("cfg(")
                            && !rendered.contains("not(test"));
                    return Some((is_test, k + 1));
                }
                rendered.push(']');
            }
            Tok::Ident(s) => rendered.push_str(s),
            Tok::Punct(c) => rendered.push(*c),
            Tok::Str(_) => rendered.push('s'),
            _ => rendered.push('.'),
        }
        k += 1;
    }
    None
}

/// Extract `LINT-ALLOW(rule[, rule...]): reason` annotations from the
/// comment list; malformed ones (missing reason, unknown rule) are
/// returned separately for the engine to report. The annotation must
/// *start* the comment — prose that merely mentions the syntax (like
/// this sentence) is not an annotation.
fn find_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim_start().strip_prefix("LINT-ALLOW") else {
            continue;
        };
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = rest[close + 1..].strip_prefix(':')?;
            let reason = tail.trim();
            if rules.is_empty() || reason.is_empty() {
                return None;
            }
            Some((rules, reason.to_string()))
        })();
        match parsed {
            Some((rules, reason)) => {
                if let Some(unknown) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
                    bad.push((
                        c.line_end,
                        format!("LINT-ALLOW names unknown rule `{unknown}`"),
                    ));
                } else {
                    ok.push(Suppression {
                        rules,
                        line: c.line_end,
                        reason,
                    });
                }
            }
            None => bad.push((
                c.line_end,
                "malformed LINT-ALLOW: expected `LINT-ALLOW(rule): reason` \
                 with a non-empty reason"
                    .to_string(),
            )),
        }
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_code() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    boom();\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() {\n    body();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn cfg_test_use_does_not_open_a_range() {
        let src = "#[cfg(test)]\nuse proptest::prelude::*;\nfn live() {\n    body();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(4));
    }

    #[test]
    fn suppression_parses_and_covers_next_line() {
        let src = "// LINT-ALLOW(no-panic-hot-path): documented panicking constructor.\nfn f() { x.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_suppressed("no-panic-hot-path", 1));
        assert!(f.is_suppressed("no-panic-hot-path", 2));
        assert!(!f.is_suppressed("no-panic-hot-path", 3));
        assert!(!f.is_suppressed("unsafe-needs-safety", 2));
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn malformed_or_unknown_suppressions_are_reported() {
        let f = SourceFile::parse("x.rs", "// LINT-ALLOW(no-panic-hot-path):\nfn f() {}\n");
        assert_eq!(f.bad_allows.len(), 1, "missing reason");
        let f = SourceFile::parse("x.rs", "// LINT-ALLOW(not-a-rule): because.\nfn f() {}\n");
        assert_eq!(f.bad_allows.len(), 1, "unknown rule");
    }

    #[test]
    fn comment_block_lookup_spans_contiguous_lines() {
        let src = "// SAFETY: part one\n// and part two.\nunsafe { x() }\n";
        let f = SourceFile::parse("x.rs", src);
        let block = f.comment_block_ending_at(2);
        assert!(block.contains("SAFETY:"));
        assert!(block.contains("part two"));
        assert_eq!(f.comment_block_ending_at(1), " SAFETY: part one");
    }
}
