//! The fixture corpus: for every rule, each `firing*.rs` fixture must
//! produce at least one error *of that rule* (and nothing from any
//! other rule — cross-contamination would mean a rule's scope leaks),
//! and each `clean*.rs` fixture must produce no diagnostics at all.
//!
//! Fixtures are never compiled and never scanned by the workspace walk
//! (which only visits `crates/*/src/`); each declares the virtual
//! workspace path it should be linted under on its first line:
//! `// virtual path: crates/server/src/demo.rs`.

use std::fs;
use std::path::{Path, PathBuf};

use anyk_lint::{has_errors, lint_source, rules::RULE_IDS};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The `// virtual path: ...` header every fixture starts with.
fn virtual_path(source: &str) -> String {
    let first = source.lines().next().expect("fixture is non-empty");
    first
        .strip_prefix("// virtual path: ")
        .unwrap_or_else(|| panic!("fixture missing `// virtual path:` header: {first:?}"))
        .trim()
        .to_string()
}

fn fixture_files(rule: &str, prefix: &str) -> Vec<PathBuf> {
    let dir = fixtures_root().join(rule);
    let mut out: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {}: {e}", dir.display()))
        .map(|e| e.expect("read_dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".rs"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_rule_has_firing_and_clean_fixtures() {
    for rule in RULE_IDS {
        assert!(
            !fixture_files(rule, "firing").is_empty(),
            "rule {rule} has no firing fixture"
        );
        assert!(
            !fixture_files(rule, "clean").is_empty(),
            "rule {rule} has no clean fixture"
        );
    }
}

#[test]
fn firing_fixtures_fire_their_rule_and_only_their_rule() {
    for rule in RULE_IDS {
        for path in fixture_files(rule, "firing") {
            let source = fs::read_to_string(&path).expect("read fixture");
            let diags = lint_source(&virtual_path(&source), &source);
            assert!(
                has_errors(&diags),
                "{} should produce at least one error",
                path.display()
            );
            for d in &diags {
                assert_eq!(
                    d.rule,
                    rule,
                    "{} leaked a diagnostic from another rule: {d}",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for rule in RULE_IDS {
        for path in fixture_files(rule, "clean") {
            let source = fs::read_to_string(&path).expect("read fixture");
            let diags = lint_source(&virtual_path(&source), &source);
            assert!(
                diags.is_empty(),
                "{} should be clean, got:\n{}",
                path.display(),
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
