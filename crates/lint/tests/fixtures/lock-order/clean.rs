// virtual path: crates/server/src/demo.rs
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError, RwLock};

// Documented order: acquire the catalog before the plan cache.
pub fn in_order(catalog: &RwLock<u64>, cache: &Mutex<HashMap<u64, u64>>) -> u64 {
    let epoch = catalog.read().unwrap_or_else(PoisonError::into_inner);
    let c = cache.lock().unwrap_or_else(PoisonError::into_inner);
    *epoch + c.len() as u64
}

// Sequential (non-nested) acquisitions are fine: the first guard's
// block closes before the second acquisition.
pub fn sequential(cache: &Mutex<HashMap<u64, u64>>, catalog: &RwLock<u64>) -> u64 {
    let n = {
        let c = cache.lock().unwrap_or_else(PoisonError::into_inner);
        c.len() as u64
    };
    let epoch = catalog.read().unwrap_or_else(PoisonError::into_inner);
    n + *epoch
}

// A `let` binding a *derived* value (not the guard) does not pin the
// lock: the guard temporary dies at the statement's end.
pub fn temporary_guard(map: &Mutex<HashMap<u64, u64>>, cache: &Mutex<HashMap<u64, u64>>) -> usize {
    let n = map.lock().unwrap_or_else(PoisonError::into_inner).len();
    let m = cache.lock().unwrap_or_else(PoisonError::into_inner).len();
    n + m
}

// The sharded prepare path: the coordination lock comes first, then
// each per-shard catalog — the documented order.
pub fn coord_then_catalog(coord: &RwLock<u64>, catalog: &RwLock<u64>) -> u64 {
    let epoch = coord.read().unwrap_or_else(PoisonError::into_inner);
    let snapshot = catalog.read().unwrap_or_else(PoisonError::into_inner);
    *epoch + *snapshot
}

// Socket-style `.read(&mut buf)` has arguments — never mistaken for a
// RwLock read.
pub fn io_read(stream: &mut impl std::io::Read) -> std::io::Result<usize> {
    let mut buf = [0u8; 16];
    let catalog_guard = ();
    let _ = catalog_guard;
    stream.read(&mut buf)
}
