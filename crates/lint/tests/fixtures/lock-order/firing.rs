// virtual path: crates/server/src/demo.rs
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError, RwLock};

pub struct Shared {
    catalog: RwLock<u64>,
    cache: Mutex<HashMap<u64, u64>>,
    map: Mutex<HashMap<u64, u64>>,
}

impl Shared {
    // Acquires the plan cache, then the catalog: backwards — the
    // documented order is session < catalog < cache < deadline map.
    pub fn backwards(&self, catalog: &RwLock<u64>, cache: &Mutex<HashMap<u64, u64>>) -> u64 {
        let c = cache.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = catalog.read().unwrap_or_else(PoisonError::into_inner);
        *epoch + c.len() as u64
    }

    // Re-acquires the deadline map while already holding it.
    pub fn reentrant(&self, map: &Mutex<HashMap<u64, u64>>) -> usize {
        let held = map.lock().unwrap_or_else(PoisonError::into_inner);
        let again = map.lock().unwrap_or_else(PoisonError::into_inner);
        held.len() + again.len()
    }

    // Acquires the shard-coordination lock *after* a per-shard
    // catalog: backwards — coord must be taken before any shard
    // catalog, or two updaters can deadlock against a preparer.
    pub fn coord_after_catalog(&self, coord: &RwLock<u64>, catalog: &RwLock<u64>) -> u64 {
        let snapshot = catalog.read().unwrap_or_else(PoisonError::into_inner);
        let epoch = coord.read().unwrap_or_else(PoisonError::into_inner);
        *snapshot + *epoch
    }
}
