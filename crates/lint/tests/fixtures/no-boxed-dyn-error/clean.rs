// virtual path: crates/storage/src/demo.rs
use std::fmt;

// The typed alternative: failures stay matchable end-to-end.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    Empty,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io: {e}"),
            LoadError::Empty => write!(f, "empty file"),
        }
    }
}

impl std::error::Error for LoadError {}

pub fn load(path: &str) -> Result<Vec<u8>, LoadError> {
    let bytes = std::fs::read(path).map_err(LoadError::Io)?;
    if bytes.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(bytes)
}

// Boxed trait objects that are not errors are fine — and so is an
// `Error` buried in a nested generic that is not the trait object.
pub fn stream() -> Box<dyn Iterator<Item = Result<u8, LoadError>> + Send> {
    Box::new(std::iter::empty())
}
