// virtual path: crates/storage/src/demo.rs
use std::error::Error;

pub fn load(path: &str) -> Result<Vec<u8>, Box<dyn Error>> {
    Ok(std::fs::read(path)?)
}

pub fn load_send(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error + Send + Sync>> {
    Ok(std::fs::read(path)?)
}
