// virtual path: crates/server/src/demo.rs
use std::sync::{Mutex, PoisonError};

pub fn handler(x: Option<u32>, m: &Mutex<u32>) -> Result<u32, &'static str> {
    let v = x.ok_or("missing")?;
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    Ok(*g + v)
}

pub fn documented(x: Option<u32>) -> u32 {
    // LINT-ALLOW(no-panic-hot-path): demo of a justified, documented panic.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
