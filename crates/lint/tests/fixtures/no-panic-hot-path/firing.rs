// virtual path: crates/server/src/demo.rs
pub fn handler(x: Option<u32>, m: &std::sync::Mutex<u32>) -> u32 {
    let v = x.unwrap();
    let g = m.lock().expect("poisoned");
    if *g > v {
        panic!("out of range");
    }
    match v {
        0 => 0,
        _ => unreachable!(),
    }
}
