// virtual path: crates/core/src/demo.rs
// A deterministic library crate: no sockets, no wall clocks; durations
// are data passed in from the edge.
use std::time::Duration;

pub fn budget_exceeded(spent: Duration, budget: Duration) -> bool {
    spent > budget
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_use_clocks() {
        let t0 = Instant::now();
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }
}
