// virtual path: crates/shims/demo/src/lib.rs
// A shim that imports workspace crates has inverted the dependency
// arrow: shims mirror external APIs.
use anyk_engine::RankedAnswer;

pub fn leak(a: &RankedAnswer) -> usize {
    anyk_core::arity(a)
}
