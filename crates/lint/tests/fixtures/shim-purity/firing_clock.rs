// virtual path: crates/core/src/demo.rs
// A library crate reaching for sockets.

pub fn dial(addr: &str) -> std::io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect(addr)
}
