// virtual path: crates/core/src/demo.rs
// A library crate reaching for sockets and wall clocks.
use std::time::Instant;

pub fn now_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}

pub fn dial(addr: &str) -> std::io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect(addr)
}
