// virtual path: crates/obs/src/demo_clock.rs
// Inside crates/obs the raw clock is the whole point: this is the
// one crate allowed to call `Instant::now()`.
use std::time::Instant;

pub struct DemoClock {
    origin: Instant,
}

impl DemoClock {
    pub fn new() -> Self {
        DemoClock {
            origin: Instant::now(),
        }
    }

    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for DemoClock {
    fn default() -> Self {
        DemoClock::new()
    }
}
