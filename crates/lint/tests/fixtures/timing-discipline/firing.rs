// virtual path: crates/server/src/demo.rs
// Server code reading wall clocks directly instead of through an
// injected `anyk_obs::Clock`.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    Instant::now().elapsed().as_millis()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
