// virtual path: crates/shims/demo/src/lib.rs
// SAFETY: the caller guarantees `p` is valid for reads (function-level
// contract restated at the site).
pub fn documented(p: *const u8) -> u8 {
    // SAFETY: `p` is non-null and points to a live byte per this
    // function's contract.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    // Test code may use `unsafe` without ceremony.
    fn in_tests(p: *const u8) -> u8 {
        unsafe { *p }
    }
}

// The word unsafe inside a string or comment is not a finding:
pub const DOC: &str = "unsafe is spelled here";
