// virtual path: crates/shims/demo/src/lib.rs
// A bare `unsafe` with no SAFETY contract, and one whose comment
// above says something else entirely.
pub fn no_comment(p: *const u8) -> u8 {
    unsafe { *p }
}

// closes the fd we own
pub fn wrong_comment(fd: i32) {
    unsafe {
        libc_close(fd);
    }
}

extern "C" {
    fn libc_close(fd: i32) -> i32;
}
