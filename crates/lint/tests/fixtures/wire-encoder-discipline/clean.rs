// virtual path: crates/server/src/wire.rs
use std::io::Write;

// In wire.rs itself, the protocol vocabulary is at home.
pub fn encode_ok(rows: usize) -> String {
    let mut out = format!("OK cursor=- rows={rows} done=true\n");
    out.push_str("END\n");
    out
}

pub fn encode_err(msg: &str) -> String {
    format!("ERR proto: {msg}\nEND\n")
}

// The encoder may also write what it encoded.
pub fn respond(sock: &mut std::net::TcpStream, msg: &str) -> std::io::Result<()> {
    sock.write_all(encode_err(msg).as_bytes())
}

// Non-protocol strings are fine anywhere: "OKAY" and "OverKill" do
// not start a protocol line.
pub const NOT_PROTOCOL: [&str; 2] = ["OKAY", "ENDURANCE"];
