// virtual path: crates/server/src/demo.rs
use std::io::Write;

// Hand-formats a protocol reply outside wire.rs/frame.rs.
pub fn handgrown_reply(rows: usize) -> String {
    let mut out = format!("OK cursor=- rows={rows} done=true\n");
    out.push_str("END\n");
    out
}

pub fn hand_error() -> &'static str {
    "ERR proto: bad line"
}

// Writes bytes straight to a socket from a non-transport file.
pub fn sneaky_write(sock: &mut std::net::TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    sock.write_all(bytes)
}
