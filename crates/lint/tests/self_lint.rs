//! The self-run: `cargo test` lints the live workspace through the
//! exact code path the CLI and CI gate use, so a violation cannot land
//! without either fixing it or writing a visible `LINT-ALLOW` with a
//! reason.

use std::path::Path;

use anyk_lint::{lint_workspace, workspace_files};

fn workspace_root() -> &'static Path {
    // crates/lint/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn live_workspace_lints_clean() {
    let diags = lint_workspace(workspace_root()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean (fix it or LINT-ALLOW with a reason):\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn walk_covers_the_serving_stack_but_not_fixtures() {
    let files = workspace_files(workspace_root()).expect("walk workspace");
    let rels: Vec<String> = files
        .iter()
        .map(|p| {
            p.strip_prefix(workspace_root())
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    for must in [
        "crates/server/src/wire.rs",
        "crates/server/src/service.rs",
        "crates/engine/src/lib.rs",
        "crates/shims/polling/src/lib.rs",
        "crates/lint/src/rules.rs",
    ] {
        assert!(rels.iter().any(|r| r == must), "walk missed {must}");
    }
    assert!(
        rels.iter().all(|r| !r.contains("tests/")),
        "the walk must never scan test or fixture files"
    );
}
