//! Injected time: the [`Clock`] trait and its two implementations.
//!
//! The workspace's `timing-discipline` lint permits `Instant::now` /
//! `SystemTime::now` **only in this crate**, so library and server
//! code receive time as `Arc<dyn Clock>` and report microseconds since
//! the clock's origin. Tests swap in [`ManualClock`] and advance time
//! explicitly — deterministic TTL, deadline, and trace timings.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonic microsecond source. Implementations must never go
/// backwards; only differences of `now_us` readings are meaningful
/// (origins differ between clock instances).
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds elapsed since this clock's origin.
    fn now_us(&self) -> u64;

    /// Nanoseconds elapsed since this clock's origin, for measurement
    /// code whose signal is sub-microsecond (per-answer delay in the
    /// bench harness). Defaults to microsecond granularity so manual
    /// clocks stay trivially consistent with `now_us`.
    fn now_ns(&self) -> u64 {
        self.now_us().saturating_mul(1_000)
    }
}

/// The real clock: microseconds since construction, via
/// `Instant::now` — the only call sites in the workspace.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A deterministic test clock: time moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    pub fn new(start_us: u64) -> Self {
        ManualClock {
            us: AtomicU64::new(start_us),
        }
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.us.fetch_add(us, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute reading.
    pub fn set(&self, us: u64) {
        self.us.store(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }
}

/// A fresh shared real clock.
pub fn monotonic_clock() -> Arc<dyn Clock> {
    Arc::new(MonotonicClock::new())
}

/// A fresh shared manual clock (returned concretely so tests keep a
/// handle to `advance`).
pub fn manual_clock(start_us: u64) -> Arc<ManualClock> {
    Arc::new(ManualClock::new(start_us))
}

/// The process-wide real clock, for free-standing timing helpers
/// (e.g. the bench harness's `time()`), where threading a handle
/// through every call site would be noise. Library/server code should
/// prefer an injected `Arc<dyn Clock>`.
pub fn global_clock() -> &'static MonotonicClock {
    static GLOBAL: OnceLock<MonotonicClock> = OnceLock::new();
    GLOBAL.get_or_init(MonotonicClock::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut prev = clock.now_us();
        for _ in 0..1000 {
            let now = clock.now_us();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let clock = ManualClock::new(5);
        assert_eq!(clock.now_us(), 5);
        clock.advance(10);
        assert_eq!(clock.now_us(), 15);
        clock.set(3);
        assert_eq!(clock.now_us(), 3);
    }

    #[test]
    fn now_ns_tracks_now_us() {
        let manual = ManualClock::new(7);
        assert_eq!(manual.now_ns(), 7_000);
        let real = MonotonicClock::new();
        let us = real.now_us();
        let ns = real.now_ns();
        // ns read after us: at least as far along, same origin.
        assert!(ns >= us.saturating_mul(1_000));
    }

    #[test]
    fn global_clock_is_shared_and_monotonic() {
        let a = global_clock().now_us();
        let b = global_clock().now_us();
        assert!(b >= a);
    }
}
