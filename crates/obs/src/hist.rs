//! The lock-free power-of-two latency histogram, moved here from the
//! server so every layer (and every shard) shares one implementation
//! — and so per-shard histograms can be **merged bucket-wise** into
//! truthful whole-service percentiles (summing per-shard p99s, or
//! taking their max, reports a latency nobody observed).

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two latency buckets (µs): bucket `i` counts samples in
/// `[2^i, 2^(i+1))`; the last bucket absorbs the tail. 32 buckets
/// reach past 71 minutes — far beyond any sane page latency.
pub const HIST_BUCKETS: usize = 32;

/// A lock-free fixed-bucket latency histogram: `record` is one relaxed
/// `fetch_add`, percentiles are computed on read (the `STATS` path),
/// so the per-page hot path never takes a lock or allocates.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    pub fn record(&self, us: u64) {
        let bucket = (us.max(1).ilog2() as usize).min(HIST_BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The inclusive upper bound of bucket `i`, in µs.
    pub fn upper_bound(i: usize) -> u64 {
        (1u64 << (i + 1)) - 1
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Fold another histogram's samples into this one, bucket by
    /// bucket. Because buckets are position-aligned (same power-of-two
    /// bounds everywhere), merging distributions is exact: percentiles
    /// of the merged histogram equal percentiles of a histogram that
    /// had recorded every underlying sample itself.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Bucket-wise merge of many histograms into a fresh one.
    pub fn merged<'a, I: IntoIterator<Item = &'a Histogram>>(parts: I) -> Histogram {
        let out = Histogram::default();
        for h in parts {
            out.merge_from(h);
        }
        out
    }

    /// The latency below which fraction `p` of samples fall, estimated
    /// by **linear interpolation within the containing power-of-two
    /// bucket**: the sample's rank inside the bucket positions it
    /// between the bucket's bounds, assuming samples spread uniformly
    /// there. (Reporting the raw upper bound overstates a median
    /// sitting at a bucket's lower edge by up to 2×.) The open-ended
    /// top bucket has no interior to interpolate, so it still reports
    /// its conservative upper bound. 0 while the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if cum + c >= target && c > 0 {
                if i == HIST_BUCKETS - 1 {
                    return Self::upper_bound(i);
                }
                // Bucket i covers [2^i, 2^(i+1)); rank (1-based) of the
                // target sample within it interpolates across that span.
                let lo = 1u64 << i;
                let span = lo;
                let rank = target - cum;
                return (lo + (rank * span) / c).min(Self::upper_bound(i));
            }
            cum += c;
        }
        Self::upper_bound(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The percentile-semantics pins that previously lived in the
    // server crate — moved with the implementation.
    #[test]
    fn percentile_interpolates_within_buckets() {
        let h = Histogram::default();
        for _ in 0..49 {
            h.record(1);
        }
        for _ in 0..51 {
            h.record(512);
        }
        assert_eq!(h.percentile(0.50), 522);
    }

    #[test]
    fn percentile_edges_and_tail() {
        let h = Histogram::default();
        for _ in 0..89 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        h.record(0); // clamps to 1µs
        assert_eq!(h.percentile(0.95), 768);
        assert_eq!(h.percentile(0.99), 972);
    }

    #[test]
    fn top_bucket_reports_upper_bound() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.5), Histogram::upper_bound(HIST_BUCKETS - 1));
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_equals_recording_all_samples_in_one() {
        // A skewed two-shard split: shard 0 fast, shard 1 slow.
        let shard0 = Histogram::default();
        let shard1 = Histogram::default();
        let combined = Histogram::default();
        for _ in 0..90 {
            shard0.record(8);
            combined.record(8);
        }
        for _ in 0..10 {
            shard1.record(8000);
            combined.record(8000);
        }
        let merged = Histogram::merged([&shard0, &shard1]);
        assert_eq!(merged.snapshot(), combined.snapshot());
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(merged.percentile(p), combined.percentile(p));
        }
        // And the merged tail is the slow shard's tail, which neither
        // shard-local histogram alone would report service-wide.
        assert!(merged.percentile(0.99) >= 4096);
        assert!(shard0.percentile(0.99) < 16);
    }
}
