//! # anyk-obs — observability core for the any-k serving stack
//!
//! Std-only, allocation-light, **no network**: a lock-free tracing
//! core the rest of the workspace instruments itself with.
//!
//! * [`clock`] — the injected [`Clock`] trait. This crate is the only
//!   place allowed to call `Instant::now` (the `timing-discipline`
//!   lint rule enforces it workspace-wide), so every other crate
//!   times itself through a clock handle and tests can run on the
//!   deterministic [`ManualClock`].
//! * [`hist`] — the 32-bucket power-of-two latency [`Histogram`],
//!   with bucket-wise [`Histogram::merge_from`] so per-shard
//!   distributions combine into truthful whole-service percentiles.
//! * [`trace`] — the [`Stage`] taxonomy (parse → admission → prepare
//!   → spawn → pull → merge → encode), the POD [`QueryTrace`] record,
//!   and the fixed-capacity [`TraceRing`]: relaxed-atomic slot claim
//!   plus a seqlock-style publish, readable without locks and torn
//!   reads detected and discarded.
//! * [`registry`] — [`ObsRegistry`]: per-route × per-ranking labeled
//!   counter/histogram cells, the trace ring, a bounded slow-query
//!   log, and the clock, behind one `Arc` shared by engine and
//!   server. `ANYK_OBS=off` disables recording (the hot paths check
//!   one bool) for overhead A/B runs — E19 pins the instrumented
//!   build within 5% of that baseline.

pub mod clock;
pub mod hist;
pub mod registry;
pub mod trace;

pub use clock::{global_clock, manual_clock, monotonic_clock, Clock, ManualClock, MonotonicClock};
pub use hist::{Histogram, HIST_BUCKETS};
pub use registry::{rank_id, route_id, ObsRegistry, RouteCell, SlowLog, RANKS, ROUTES};
pub use trace::{QueryTrace, RingStats, Stage, TraceRing, MAX_TRACE_SHARDS, STAGES, TRACE_WORDS};
