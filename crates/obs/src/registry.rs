//! [`ObsRegistry`]: the per-process observability hub — labeled
//! per-route × per-ranking cells, engine-side histograms, the trace
//! ring, a bounded slow-query log, and the injected clock.
//!
//! One registry instance per engine (so a sharded deployment has one
//! per shard — their histograms merge bucket-wise for `STATS`) plus
//! one per service (ring + slow log + route cells). Recording is
//! gated on a single `enabled` bool set at construction from
//! `ANYK_OBS` (`off`/`0` disables), which is the E19 A/B switch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::clock::{monotonic_clock, Clock};
use crate::hist::Histogram;
use crate::trace::{QueryTrace, RingStats, TraceRing};

/// Planner route labels, in stable order (`QueryTrace::route` /
/// [`RouteCell`] indices point here). Must stay in sync with the
/// engine's `Route::label` strings.
pub const ROUTES: [&str; 4] = ["acyclic", "triangle", "four-cycle", "decomposed"];

/// Ranking labels, in stable order (mirrors `RankSpec::ALL`).
pub const RANKS: [&str; 5] = ["sum", "max", "min", "prod", "lex"];

/// Index of `label` in [`ROUTES`] (0 — "acyclic" — for unknown
/// labels, which cannot occur for plans the engine actually emits).
pub fn route_id(label: &str) -> u64 {
    ROUTES.iter().position(|r| *r == label).unwrap_or(0) as u64
}

/// Index of `label` in [`RANKS`] (0 for unknown).
pub fn rank_id(label: &str) -> u64 {
    RANKS.iter().position(|r| *r == label).unwrap_or(0) as u64
}

/// One route × ranking telemetry cell.
#[derive(Debug, Default)]
pub struct RouteCell {
    /// Queries answered on this route × ranking.
    pub queries: AtomicU64,
    /// Answers streamed out.
    pub answers: AtomicU64,
    /// Time-to-first-answer distribution (µs).
    pub ttf: Histogram,
}

/// A bounded, newest-first log of slow queries (traces whose total
/// wall time crossed the service's threshold). Mutex-guarded — this
/// path only runs for already-slow queries, so a lock is noise-free.
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    entries: Mutex<VecDeque<QueryTrace>>,
}

impl SlowLog {
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, trace: QueryTrace) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() == self.cap {
            entries.pop_back();
        }
        entries.push_front(trace);
    }

    /// Newest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Default trace-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 256;
/// Default slow-log capacity.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// The observability hub. Cheap to share (`Arc`), lock-free on every
/// recording path, and a no-op throughout when disabled.
#[derive(Debug)]
pub struct ObsRegistry {
    enabled: bool,
    clock: Arc<dyn Clock>,
    ring: TraceRing,
    slow: SlowLog,
    cells: Vec<RouteCell>, // ROUTES.len() × RANKS.len(), row-major by route
    prepare: Histogram,
    delay: Histogram,
    ids: AtomicU64,
}

impl ObsRegistry {
    /// Real clock, enabled unless `ANYK_OBS` says `off`/`0`.
    pub fn from_env() -> ObsRegistry {
        Self::with_enabled(env_enabled(), monotonic_clock())
    }

    /// Enabled, on the given clock (tests inject a `ManualClock`).
    pub fn new(clock: Arc<dyn Clock>) -> ObsRegistry {
        Self::with_enabled(true, clock)
    }

    pub fn with_enabled(enabled: bool, clock: Arc<dyn Clock>) -> ObsRegistry {
        ObsRegistry {
            enabled,
            clock,
            ring: TraceRing::new(DEFAULT_RING_CAPACITY),
            slow: SlowLog::new(DEFAULT_SLOW_CAPACITY),
            cells: (0..ROUTES.len() * RANKS.len())
                .map(|_| RouteCell::default())
                .collect(),
            prepare: Histogram::default(),
            delay: Histogram::default(),
            ids: AtomicU64::new(1),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current reading of the injected clock (µs since its origin).
    /// Usable even when recording is disabled — the server still needs
    /// time for TTLs and deadlines.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Next trace id (monotonic, never 0).
    pub fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// The cell for a route × ranking pair (by [`ROUTES`]/[`RANKS`]
    /// index, as carried in a [`QueryTrace`]).
    pub fn cell(&self, route: u64, rank: u64) -> &RouteCell {
        let r = (route as usize).min(ROUTES.len() - 1);
        let k = (rank as usize).min(RANKS.len() - 1);
        &self.cells[r * RANKS.len() + k]
    }

    /// Record a completed query into its route × ranking cell.
    pub fn record_query(&self, route: u64, rank: u64, answers: u64, ttf_us: Option<u64>) {
        if !self.enabled {
            return;
        }
        let cell = self.cell(route, rank);
        cell.queries.fetch_add(1, Ordering::Relaxed);
        cell.answers.fetch_add(answers, Ordering::Relaxed);
        if let Some(us) = ttf_us {
            cell.ttf.record(us.max(1));
        }
    }

    /// Record one `Engine::prepare` wall time.
    pub fn record_prepare(&self, us: u64) {
        if self.enabled {
            self.prepare.record(us.max(1));
        }
    }

    /// Record one sampled inter-answer delay.
    pub fn record_delay(&self, us: u64) {
        if self.enabled {
            self.delay.record(us.max(1));
        }
    }

    /// The prepare-time distribution (this registry only; merge
    /// across shards with [`Histogram::merged`]).
    pub fn prepare_hist(&self) -> &Histogram {
        &self.prepare
    }

    /// The sampled per-pull delay distribution.
    pub fn delay_hist(&self) -> &Histogram {
        &self.delay
    }

    /// Publish a completed trace to the ring (and the slow log when
    /// its total crosses `slow_threshold_us`; 0 disables the log).
    pub fn publish(&self, trace: &QueryTrace, slow_threshold_us: u64) {
        if !self.enabled {
            return;
        }
        self.ring.publish(trace);
        if slow_threshold_us > 0 && trace.total_us >= slow_threshold_us {
            self.slow.push(*trace);
        }
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        self.ring.recent(n)
    }

    /// The slow-query log, newest first.
    pub fn slow(&self) -> Vec<QueryTrace> {
        self.slow.snapshot()
    }

    pub fn ring_stats(&self) -> RingStats {
        self.ring.stats()
    }
}

fn env_enabled() -> bool {
    match std::env::var("ANYK_OBS") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            v != "off" && v != "0" && v != "false"
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::manual_clock;

    #[test]
    fn route_and_rank_ids_round_trip() {
        for (i, r) in ROUTES.iter().enumerate() {
            assert_eq!(route_id(r), i as u64);
        }
        for (i, k) in RANKS.iter().enumerate() {
            assert_eq!(rank_id(k), i as u64);
        }
        assert_eq!(route_id("nonsense"), 0);
    }

    #[test]
    fn cells_accumulate_per_route_per_rank() {
        let reg = ObsRegistry::new(manual_clock(0));
        reg.record_query(1, 2, 10, Some(100));
        reg.record_query(1, 2, 5, None);
        reg.record_query(0, 0, 1, Some(7));
        let cell = reg.cell(1, 2);
        assert_eq!(cell.queries.load(Ordering::Relaxed), 2);
        assert_eq!(cell.answers.load(Ordering::Relaxed), 15);
        assert_eq!(cell.ttf.count(), 1);
        assert_eq!(reg.cell(3, 4).queries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn disabled_registry_records_nothing_but_still_tells_time() {
        let clock = manual_clock(42);
        let reg = ObsRegistry::with_enabled(false, clock.clone());
        assert_eq!(reg.now_us(), 42);
        reg.record_query(0, 0, 3, Some(5));
        reg.record_prepare(10);
        reg.record_delay(10);
        reg.publish(&QueryTrace::default(), 1);
        assert_eq!(reg.cell(0, 0).queries.load(Ordering::Relaxed), 0);
        assert_eq!(reg.prepare_hist().count(), 0);
        assert_eq!(reg.delay_hist().count(), 0);
        assert!(reg.recent(8).is_empty());
        assert!(reg.slow().is_empty());
    }

    #[test]
    fn slow_log_is_bounded_and_thresholded() {
        let log = SlowLog::new(2);
        for total_us in [10, 20, 30] {
            log.push(QueryTrace {
                total_us,
                ..QueryTrace::default()
            });
        }
        let got = log.snapshot();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].total_us, 30);
        assert_eq!(got[1].total_us, 20);

        let reg = ObsRegistry::new(manual_clock(0));
        let fast = QueryTrace {
            total_us: 5,
            ..QueryTrace::default()
        };
        let slow = QueryTrace {
            total_us: 500,
            ..QueryTrace::default()
        };
        reg.publish(&fast, 100);
        reg.publish(&slow, 100);
        assert_eq!(reg.slow().len(), 1);
        assert_eq!(reg.slow()[0].total_us, 500);
        assert_eq!(reg.recent(8).len(), 2);
    }
}
