//! Query traces and the lock-free trace ring.
//!
//! A [`QueryTrace`] is a plain-old-data record of one completed query:
//! which route × ranking it took, per-[`Stage`] wall times, actual
//! cardinality vs the requested limit, cache/index provenance, and
//! shard fan-in. Completed traces are published into a fixed-capacity
//! [`TraceRing`]:
//!
//! * **claim** — a writer takes a slot with one relaxed `fetch_add`
//!   on the ring head (no CAS loop, no lock);
//! * **publish** — the slot is guarded seqlock-style by a per-slot
//!   sequence word (odd = write in progress). The payload is stored
//!   as relaxed `AtomicU64` words, so a concurrent read is always
//!   well-defined; the sequence re-check detects (and discards) torn
//!   snapshots.
//!
//! Writers never wait: if a slot is still held by a straggler from a
//! previous lap, the claim is counted in `dropped` and abandoned —
//! telemetry may drop under pathological contention, but it may never
//! stall the query path. The accounting invariant `claims ==
//! published + dropped` is what the concurrency tests pin.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of [`Stage`]s in the taxonomy.
pub const STAGES: usize = 7;

/// Per-shard fan-in rows are recorded for up to this many shards;
/// larger deployments still trace totals, just not per-shard splits.
pub const MAX_TRACE_SHARDS: usize = 8;

/// The life of a query, in order. Every stage is a contiguous span of
/// the same wall-clock interval, so the stage times of a trace sum to
/// its total (E19 asserts this within 10% end-to-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexing + parsing the command text.
    Parse,
    /// Waiting on / acquiring the admission semaphore.
    Admission,
    /// Plan-cache lookup, routing, index acquisition, operator build.
    Prepare,
    /// Materializing the ranked stream object (post-prepare).
    Spawn,
    /// Pulling answers out of the stream.
    Pull,
    /// Tournament-merge work attributable to shard fan-in.
    Merge,
    /// Rendering protocol bytes.
    Encode,
}

impl Stage {
    pub const ALL: [Stage; STAGES] = [
        Stage::Parse,
        Stage::Admission,
        Stage::Prepare,
        Stage::Spawn,
        Stage::Pull,
        Stage::Merge,
        Stage::Encode,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::Prepare => "prepare",
            Stage::Spawn => "spawn",
            Stage::Pull => "pull",
            Stage::Merge => "merge",
            Stage::Encode => "encode",
        }
    }
}

/// Cache provenance of a prepared plan.
pub const CACHE_MISS: u64 = 0;
/// See [`CACHE_MISS`].
pub const CACHE_HIT: u64 = 1;

/// One completed query, as published to the ring. Fixed-size POD —
/// no heap, `Copy` — so it serializes to a constant number of `u64`
/// words for the seqlock slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryTrace {
    /// Monotonic id (registry-assigned).
    pub id: u64,
    /// Planner route, as a [`crate::registry::ROUTES`] index.
    pub route: u64,
    /// Ranking, as a [`crate::registry::RANKS`] index.
    pub rank: u64,
    /// [`CACHE_HIT`] or [`CACHE_MISS`].
    pub cache: u64,
    /// Index provenance: 0 = n/a, 1 = cached, 2 = built.
    pub index: u64,
    /// Shard count (0 or 1 = unsharded).
    pub shards: u64,
    /// Tournament-tree depth of the shard merge (0 unsharded).
    pub merge_depth: u64,
    /// Answers actually produced.
    pub rows: u64,
    /// Answers requested (page limit).
    pub limit: u64,
    /// End-to-end wall time, µs.
    pub total_us: u64,
    /// Per-stage wall times, µs, indexed by [`Stage::ALL`] order.
    pub stage_us: [u64; STAGES],
    /// Rows pulled from each shard (first [`MAX_TRACE_SHARDS`]).
    pub shard_rows: [u64; MAX_TRACE_SHARDS],
}

/// Words per serialized trace: 10 scalars + stages + shard rows.
pub const TRACE_WORDS: usize = 10 + STAGES + MAX_TRACE_SHARDS;

impl QueryTrace {
    /// Sum of the per-stage times (µs).
    pub fn stage_sum_us(&self) -> u64 {
        self.stage_us.iter().sum()
    }

    fn to_words(self) -> [u64; TRACE_WORDS] {
        let mut w = [0u64; TRACE_WORDS];
        w[0] = self.id;
        w[1] = self.route;
        w[2] = self.rank;
        w[3] = self.cache;
        w[4] = self.index;
        w[5] = self.shards;
        w[6] = self.merge_depth;
        w[7] = self.rows;
        w[8] = self.limit;
        w[9] = self.total_us;
        w[10..10 + STAGES].copy_from_slice(&self.stage_us);
        w[10 + STAGES..].copy_from_slice(&self.shard_rows);
        w
    }

    fn from_words(w: &[u64; TRACE_WORDS]) -> QueryTrace {
        let mut t = QueryTrace {
            id: w[0],
            route: w[1],
            rank: w[2],
            cache: w[3],
            index: w[4],
            shards: w[5],
            merge_depth: w[6],
            rows: w[7],
            limit: w[8],
            total_us: w[9],
            ..QueryTrace::default()
        };
        t.stage_us.copy_from_slice(&w[10..10 + STAGES]);
        t.shard_rows.copy_from_slice(&w[10 + STAGES..]);
        t
    }
}

/// One ring slot: a seqlock. `seq` is even when the payload is
/// consistent, odd while a writer holds it; a slot on lap `turn`
/// moves `2·turn → 2·turn+1 → 2·turn+2`. The payload itself is
/// atomic words, so concurrent access is race-free by construction —
/// the sequence check only decides whether a snapshot is *consistent*.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; TRACE_WORDS],
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Point-in-time ring accounting; `claims == published + dropped`
/// once all in-flight publishes have finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    pub capacity: usize,
    pub claims: u64,
    pub published: u64,
    pub dropped: u64,
}

/// The fixed-capacity, lock-free ring of completed query traces.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publish one trace. Returns `false` when the claimed slot was
    /// still held by a writer from another lap (the trace is dropped
    /// rather than waiting — the query path must never stall on
    /// telemetry).
    pub fn publish(&self, trace: &QueryTrace) -> bool {
        let cap = self.slots.len() as u64;
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % cap) as usize];
        let turn = claim / cap;
        let open = 2 * turn;
        // Acquire pairs with the Release of the previous lap's close,
        // so we observe that lap's payload stores as completed.
        if slot
            .seq
            .compare_exchange(open, open + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        for (word, value) in slot.words.iter().zip(trace.to_words()) {
            word.store(value, Ordering::Relaxed);
        }
        // Release publishes the payload stores before the slot reads
        // as consistent again.
        slot.seq.store(open + 2, Ordering::Release);
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Read the slot holding ring position `claim`, if it currently
    /// holds a consistent snapshot of that lap (or a later one — the
    /// freshest consistent payload wins).
    fn read_slot(&self, claim: u64) -> Option<QueryTrace> {
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(claim % cap) as usize];
        // Bounded retries: under a write burst we'd rather skip a
        // trace than spin.
        for _ in 0..4 {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                return None; // never written
            }
            if before % 2 == 1 {
                continue; // write in progress
            }
            let words: [u64; TRACE_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Order the payload loads before the sequence re-check.
            fence(Ordering::Acquire);
            let after = slot.seq.load(Ordering::Relaxed);
            if before == after {
                return Some(QueryTrace::from_words(&words));
            }
        }
        None
    }

    /// The most recent `n` consistent traces, newest first. Slots mid
    /// write (or overwritten while reading) are skipped, never torn.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let head = self.head.load(Ordering::Acquire);
        let window = head.min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(n.min(window as usize));
        let mut claim = head;
        while out.len() < n && claim > head - window {
            claim -= 1;
            if let Some(t) = self.read_slot(claim) {
                out.push(t);
            }
        }
        out
    }

    pub fn stats(&self) -> RingStats {
        RingStats {
            capacity: self.slots.len(),
            claims: self.head.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> QueryTrace {
        let mut t = QueryTrace {
            id,
            route: id % 4,
            rank: id % 5,
            cache: id % 2,
            index: id % 3,
            shards: 2,
            merge_depth: 1,
            rows: 10 + id,
            limit: 10,
            total_us: 100 * id + 7,
            ..QueryTrace::default()
        };
        for (i, s) in t.stage_us.iter_mut().enumerate() {
            *s = id + i as u64;
        }
        t.shard_rows[0] = id;
        t.shard_rows[1] = id * 2;
        t
    }

    #[test]
    fn words_round_trip() {
        for id in [0, 1, 7, 1 << 40] {
            let t = trace(id);
            assert_eq!(QueryTrace::from_words(&t.to_words()), t);
        }
    }

    #[test]
    fn recent_returns_newest_first_and_respects_capacity() {
        let ring = TraceRing::new(4);
        assert!(ring.recent(8).is_empty());
        for id in 0..6 {
            assert!(ring.publish(&trace(id)));
        }
        let got = ring.recent(8);
        let ids: Vec<u64> = got.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![5, 4, 3, 2]);
        assert_eq!(ring.recent(2).len(), 2);
        assert_eq!(ring.recent(2)[0].id, 5);
    }

    #[test]
    fn accounting_claims_equal_published_plus_dropped() {
        let ring = TraceRing::new(2);
        for id in 0..100 {
            ring.publish(&trace(id));
        }
        let s = ring.stats();
        assert_eq!(s.claims, 100);
        assert_eq!(s.published + s.dropped, s.claims);
        assert_eq!(s.dropped, 0, "single-threaded publishes never contend");
    }

    /// A loom-style deterministic interleaving, std-only: a writer is
    /// frozen mid-publish (seq left odd) by driving the slot protocol
    /// by hand; readers must skip the slot and a same-slot claim from
    /// the next lap must drop, not corrupt.
    #[test]
    fn interleaved_half_published_slot_is_invisible_and_drops_contender() {
        let ring = TraceRing::new(1);
        assert!(ring.publish(&trace(1)));
        assert_eq!(ring.recent(1)[0].id, 1);

        // Freeze a lap-1 writer mid-publish: claim ring position 1 and
        // take its seqlock (2 → 3) without completing the payload.
        let claim = ring.head.fetch_add(1, Ordering::Relaxed);
        assert_eq!(claim, 1);
        let slot = &ring.slots[0];
        slot.seq
            .compare_exchange(2, 3, Ordering::Acquire, Ordering::Relaxed)
            .expect("writer takes the slot");
        slot.words[0].store(999, Ordering::Relaxed); // half-written id

        // Reader: the in-progress slot yields nothing — never a torn
        // trace with id 999.
        assert!(ring.recent(4).is_empty());

        // A lap-2 writer mapping to the same slot finds seq != 4: it
        // must drop and account, not spin or overwrite.
        assert!(!ring.publish(&trace(2)));
        let s = ring.stats();
        assert_eq!(s.dropped, 1);
        assert_eq!(s.claims, 3);

        // The frozen writer finishes; its payload becomes visible.
        for (word, value) in slot.words.iter().zip(trace(7).to_words()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(4, Ordering::Release);
        ring.published.fetch_add(1, Ordering::Relaxed);
        let got = ring.recent(4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], trace(7));
        let s = ring.stats();
        assert_eq!(s.published + s.dropped, s.claims);
    }

    #[test]
    fn concurrent_publishers_and_reader_no_torn_reads_no_drift() {
        use std::sync::atomic::AtomicBool;
        let ring = TraceRing::new(8);
        let stop = AtomicBool::new(false);
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 2000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.publish(&trace(w * PER_WRITER + i));
                    }
                });
            }
            let reader = scope.spawn(|| {
                let mut seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for t in ring.recent(8) {
                        seen += 1;
                        // Torn-read detector: every field of a valid
                        // trace is derived from its id (see `trace`),
                        // so any mixed-lap snapshot fails this check.
                        assert_eq!(t, trace(t.id), "torn read escaped the seqlock");
                    }
                }
                seen
            });
            // Writers finish, then the reader drains once more.
            while ring.stats().claims < WRITERS * PER_WRITER {
                std::hint::spin_loop();
            }
            stop.store(true, Ordering::Relaxed);
            let seen = reader.join().expect("reader");
            assert!(seen > 0, "reader observed traces while writing");
        });
        let s = ring.stats();
        assert_eq!(s.claims, WRITERS * PER_WRITER);
        assert_eq!(
            s.published + s.dropped,
            s.claims,
            "lost-slot accounting drift"
        );
        // Quiesced: the last ring-full of published traces reads clean.
        assert_eq!(ring.recent(8).len() as u64, 8u64.min(s.published));
    }
}
