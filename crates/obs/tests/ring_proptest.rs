//! Property tests for the trace ring: arbitrary publish schedules
//! across arbitrary thread splits never tear a trace and never lose a
//! claim from the accounting (`claims == published + dropped`), while
//! a concurrent reader drains `recent()` the whole time.

use anyk_obs::{QueryTrace, TraceRing, MAX_TRACE_SHARDS, STAGES};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// A trace whose every field is a deterministic function of its id —
/// the torn-read detector re-derives it and compares.
fn derived(id: u64) -> QueryTrace {
    let mut t = QueryTrace {
        id,
        route: id % 4,
        rank: id % 5,
        cache: id % 2,
        index: id % 3,
        shards: id % (MAX_TRACE_SHARDS as u64),
        merge_depth: id % 7,
        rows: id.wrapping_mul(3),
        limit: id % 100,
        total_us: id.wrapping_mul(13).wrapping_add(1),
        ..QueryTrace::default()
    };
    for (i, s) in t.stage_us.iter_mut().enumerate() {
        *s = id.wrapping_add(i as u64);
    }
    for (i, s) in t.shard_rows.iter_mut().enumerate() {
        *s = id.wrapping_mul(i as u64 + 1);
    }
    t
}

proptest! {
    #[test]
    fn publish_storm_keeps_accounting_and_reads_consistent(
        capacity in 1usize..16,
        writers in 1usize..5,
        per_writer in 1u64..400,
    ) {
        let ring = TraceRing::new(capacity);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.publish(&derived((w as u64) * per_writer + i));
                    }
                });
            }
            let ring_ref = &ring;
            let stop_ref = &stop;
            let reader = scope.spawn(move || {
                while !stop_ref.load(Ordering::Relaxed) {
                    for t in ring_ref.recent(capacity) {
                        // Any torn snapshot mixes two ids' derived
                        // fields and fails the re-derivation check.
                        assert_eq!(t, derived(t.id), "torn read");
                    }
                }
            });
            while ring.stats().claims < (writers as u64) * per_writer {
                std::hint::spin_loop();
            }
            stop.store(true, Ordering::Relaxed);
            reader.join().expect("reader");
        });
        let s = ring.stats();
        prop_assert_eq!(s.claims, (writers as u64) * per_writer);
        prop_assert_eq!(s.published + s.dropped, s.claims);
        // Quiesced, every consistent slot re-derives cleanly and the
        // window is bounded by both capacity and publishes.
        let drained = ring.recent(capacity);
        prop_assert!(drained.len() as u64 <= s.published);
        prop_assert!(drained.len() <= capacity);
        for t in drained {
            prop_assert_eq!(t, derived(t.id));
        }
        // stage serialization stays within the fixed word budget
        prop_assert_eq!(STAGES, 7);
    }
}
