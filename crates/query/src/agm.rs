//! Fractional edge covers and the AGM bound (Atserias–Grohe–Marx).
//!
//! The AGM bound (§3) ties the worst-case output size of a join query to
//! the optimal fractional edge cover of its hypergraph:
//! `|Q(D)| <= prod_e |R_e|^{x_e}` for any feasible fractional cover `x`,
//! and the bound is tight at the optimum. With all relations of size
//! `n`, the bound is `n^{rho*}` where `rho*` is the *fractional edge
//! cover number* — e.g. 1.5 for the triangle, 2 for the 4-cycle.

use crate::hypergraph::{iter_vars, Hypergraph, VarSet};
use crate::simplex::solve_min;

/// An optimal fractional edge cover.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalCover {
    /// One weight per hyperedge.
    pub weights: Vec<f64>,
    /// The cover number (sum of weights for the uniform objective, or
    /// the weighted log-size objective for [`agm_bound`]).
    pub value: f64,
}

/// The fractional edge cover number `rho*` of the vertices in `vars`
/// using the hypergraph's edges. `vars = h.all_vars()` gives the classic
/// query-level `rho*`.
///
/// Returns `None` if some vertex of `vars` is in no edge (uncoverable).
pub fn fractional_edge_cover(h: &Hypergraph, vars: VarSet) -> Option<FractionalCover> {
    let edges = h.edges();
    let covered = edges.iter().fold(0u64, |acc, &e| acc | e);
    if vars & !covered != 0 {
        return None;
    }
    let active: Vec<usize> = iter_vars(vars).collect();
    if active.is_empty() {
        return Some(FractionalCover {
            weights: vec![0.0; edges.len()],
            value: 0.0,
        });
    }
    let c = vec![1.0; edges.len()];
    let a: Vec<Vec<f64>> = active
        .iter()
        .map(|&v| {
            edges
                .iter()
                .map(|&e| if e & (1 << v) != 0 { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let b = vec![1.0; active.len()];
    let sol = solve_min(&c, &a, &b)?;
    Some(FractionalCover {
        weights: sol.x,
        value: sol.objective,
    })
}

/// The AGM bound for the query hypergraph `h` with per-edge relation
/// sizes `sizes`: `min prod |R_e|^{x_e}` over fractional covers `x` of
/// all variables. Computed by minimizing `sum x_e * ln|R_e|`.
///
/// Relations of size 0 make the bound 0; size-1 relations contribute
/// nothing (ln 1 = 0).
pub fn agm_bound(h: &Hypergraph, sizes: &[usize]) -> Option<f64> {
    assert_eq!(sizes.len(), h.num_edges());
    if sizes.contains(&0) {
        return Some(0.0);
    }
    let edges = h.edges();
    let vars = h.all_vars();
    let covered = edges.iter().fold(0u64, |acc, &e| acc | e);
    if vars & !covered != 0 {
        return None;
    }
    let active: Vec<usize> = iter_vars(vars).collect();
    let c: Vec<f64> = sizes.iter().map(|&s| (s as f64).ln()).collect();
    let a: Vec<Vec<f64>> = active
        .iter()
        .map(|&v| {
            edges
                .iter()
                .map(|&e| if e & (1 << v) != 0 { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let b = vec![1.0; active.len()];
    let sol = solve_min(&c, &a, &b)?;
    Some(sol.objective.exp())
}

/// The *integral* edge cover number (smallest number of edges covering
/// all of `vars`) — contrast with `rho*`; brute force over subsets, fine
/// for query-sized hypergraphs.
pub fn integral_edge_cover(h: &Hypergraph, vars: VarSet) -> Option<usize> {
    let edges = h.edges();
    let m = edges.len();
    assert!(m <= 20, "brute-force cover limited to 20 edges");
    let mut best: Option<usize> = None;
    for mask in 0u32..(1 << m) {
        let mut cov: VarSet = 0;
        for (e, &edge) in edges.iter().enumerate() {
            if mask & (1 << e) != 0 {
                cov |= edge;
            }
        }
        if vars & !cov == 0 {
            let k = mask.count_ones() as usize;
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{cycle_query, path_query, star_query, triangle_query};

    fn rho(q: &crate::cq::ConjunctiveQuery) -> f64 {
        let h = Hypergraph::of_query(q);
        fractional_edge_cover(&h, h.all_vars()).unwrap().value
    }

    #[test]
    fn triangle_rho_is_1_5() {
        assert!((rho(&triangle_query()) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn four_cycle_rho_is_2() {
        assert!((rho(&cycle_query(4)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn odd_cycles() {
        // rho*(C_l) = l/2 for every cycle (each vertex in exactly 2
        // edges; half-weights are optimal).
        assert!((rho(&cycle_query(5)) - 2.5).abs() < 1e-6);
        assert!((rho(&cycle_query(6)) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn path_rho_is_ceil_half() {
        // Path of l edges: endpoints force full weight on alternating
        // edges: rho* = ceil(l/2) ... for l=2: 2? Each of x0 and x2 is
        // in one edge only, so both edges need weight 1 -> 2. l=3: edges
        // 1 and 3 forced (x0, x3), they cover all but x1..x2 wait x1 in
        // e1, x2 in e3 -> 2.
        assert!((rho(&path_query(2)) - 2.0).abs() < 1e-6);
        assert!((rho(&path_query(3)) - 2.0).abs() < 1e-6);
        assert!((rho(&path_query(4)) - 3.0).abs() < 1e-6); // wrong? checked below
    }

    #[test]
    fn star_rho() {
        // Star with l leaves: every leaf variable in exactly one edge ->
        // all edges weight 1 -> rho* = l.
        assert!((rho(&star_query(3)) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn agm_uniform_sizes_matches_rho() {
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let n = 1000usize;
        let bound = agm_bound(&h, &[n, n, n]).unwrap();
        assert!((bound - (n as f64).powf(1.5)).abs() / bound < 1e-6);
    }

    #[test]
    fn agm_skewed_sizes() {
        // Triangle with one tiny relation: put weight 1 on the two
        // others? Cover constraints: each vertex covered. Sizes (1, n,
        // n): optimal cover weights (1,?,?)... bound <= 1 * n = n via
        // x=(1, 1, 0)? vertex C in edges 2,3: covered by edge 2 weight
        // 1. A in 1,3: edge1 w=1. B in 1,2 ok. bound = 1^1 * n^1 = n.
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let n = 1000usize;
        let bound = agm_bound(&h, &[1, n, n]).unwrap();
        assert!(bound <= n as f64 * 1.0001, "bound {bound}");
    }

    #[test]
    fn agm_zero_size() {
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        assert_eq!(agm_bound(&h, &[0, 5, 5]), Some(0.0));
    }

    #[test]
    fn integral_vs_fractional() {
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let int = integral_edge_cover(&h, h.all_vars()).unwrap();
        assert_eq!(int, 2);
        let frac = fractional_edge_cover(&h, h.all_vars()).unwrap().value;
        assert!(frac < int as f64);
    }

    #[test]
    fn uncoverable_vars() {
        let h = Hypergraph::new(3, vec![0b011]); // vertex 2 uncovered
        assert!(fractional_edge_cover(&h, 0b111).is_none());
        assert!(integral_edge_cover(&h, 0b111).is_none());
    }

    #[test]
    fn empty_varset_costs_zero() {
        let h = Hypergraph::new(2, vec![0b11]);
        let c = fractional_edge_cover(&h, 0).unwrap();
        assert_eq!(c.value, 0.0);
    }
}
