//! Full conjunctive queries (natural joins, no projection).
//!
//! A query is a set of *atoms* `R_i(x, y, ...)` over named variables.
//! Self-joins are first-class: two atoms may reference the same relation
//! with different variable lists (e.g. the 4-cycle over an edge relation,
//! §1 of the paper). At execution time, atoms are paired positionally
//! with a `&[Relation]` slice: atom `i`'s `j`-th variable binds column
//! `j` of relation `i`.

use std::fmt;

/// A query variable, an index into [`ConjunctiveQuery::var_names`].
pub type VarId = usize;

/// One query atom: a relation name plus its variable list (positional).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name (purely informational; execution binds by index).
    pub relation: String,
    /// Variables, one per column of the relation.
    pub vars: Vec<VarId>,
}

impl Atom {
    /// Does this atom use variable `v`?
    pub fn uses(&self, v: VarId) -> bool {
        self.vars.contains(&v)
    }

    /// Column positions (possibly several, for repeated variables) at
    /// which `v` occurs.
    pub fn positions_of(&self, v: VarId) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, &u)| (u == v).then_some(i))
            .collect()
    }
}

/// A full conjunctive query (all variables are output variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    var_names: Vec<String>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Atom `i`.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// Variable names, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v]
    }

    /// The `VarId` of `name`, if declared.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names.iter().position(|n| n == name)
    }

    /// Variables shared by atoms `a` and `b` (sorted).
    pub fn shared_vars(&self, a: usize, b: usize) -> Vec<VarId> {
        let mut out: Vec<VarId> = self.atoms[a]
            .vars
            .iter()
            .copied()
            .filter(|&v| self.atoms[b].uses(v))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All atoms (indices) using variable `v`.
    pub fn atoms_using(&self, v: VarId) -> Vec<usize> {
        (0..self.atoms.len())
            .filter(|&i| self.atoms[i].uses(v))
            .collect()
    }

    /// A copy of this query with atom `i` retargeted at `relation`.
    /// Variable ids, variable names, and every other atom are preserved
    /// exactly — the seam sharded serving uses to point one atom at a
    /// hash fragment of its relation without perturbing the query
    /// structure. Panics if `i` is out of range.
    pub fn with_atom_relation<S: Into<String>>(&self, i: usize, relation: S) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.atoms[i].relation = relation.into();
        q
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a.vars.iter().map(|&v| self.var_name(v)).collect();
                format!("{}({})", a.relation, vars.join(","))
            })
            .collect();
        write!(f, "{}", parts.join(" ⋈ "))
    }
}

/// Fluent construction of a [`ConjunctiveQuery`]; variables are declared
/// implicitly on first use.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    var_names: Vec<String>,
    atoms: Vec<Atom>,
}

impl QueryBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    /// Add an atom `relation(vars...)`; unseen variable names are
    /// declared automatically.
    pub fn atom<S: Into<String>>(mut self, relation: S, vars: &[&str]) -> Self {
        let var_ids = vars
            .iter()
            .map(|name| {
                if let Some(i) = self.var_names.iter().position(|n| n == name) {
                    i
                } else {
                    self.var_names.push((*name).to_string());
                    self.var_names.len() - 1
                }
            })
            .collect();
        self.atoms.push(Atom {
            relation: relation.into(),
            vars: var_ids,
        });
        self
    }

    /// Finish. Panics on empty queries.
    pub fn build(self) -> ConjunctiveQuery {
        assert!(!self.atoms.is_empty(), "query must have at least one atom");
        ConjunctiveQuery {
            var_names: self.var_names,
            atoms: self.atoms,
        }
    }
}

/// The length-`l` path query `R_1(x0,x1) ⋈ ... ⋈ R_l(x_{l-1}, x_l)`.
pub fn path_query(l: usize) -> ConjunctiveQuery {
    assert!(l >= 1);
    let mut b = QueryBuilder::new();
    for i in 0..l {
        let r = format!("R{}", i + 1);
        let x0 = format!("x{i}");
        let x1 = format!("x{}", i + 1);
        b = b.atom(r, &[x0.as_str(), x1.as_str()]);
    }
    b.build()
}

/// The `l`-cycle query `R_1(x1,x2) ⋈ ... ⋈ R_l(x_l, x1)` (l >= 3). The
/// paper's running cyclic examples are the triangle (l = 3) and the
/// 4-cycle.
pub fn cycle_query(l: usize) -> ConjunctiveQuery {
    assert!(l >= 3);
    let mut b = QueryBuilder::new();
    for i in 0..l {
        let r = format!("R{}", i + 1);
        let x0 = format!("x{}", i + 1);
        let x1 = format!("x{}", (i + 1) % l + 1);
        b = b.atom(r, &[x0.as_str(), x1.as_str()]);
    }
    b.build()
}

/// The triangle query `R(A,B) ⋈ S(B,C) ⋈ T(C,A)` from §3.
pub fn triangle_query() -> ConjunctiveQuery {
    cycle_query(3)
}

/// The `l`-star query `R_1(x0,x1) ⋈ R_2(x0,x2) ⋈ ... ⋈ R_l(x0,x_l)`:
/// all relations share the central variable `x0`.
pub fn star_query(l: usize) -> ConjunctiveQuery {
    assert!(l >= 1);
    let mut b = QueryBuilder::new();
    for i in 0..l {
        let r = format!("R{}", i + 1);
        let xi = format!("x{}", i + 1);
        b = b.atom(r, &["x0", xi.as_str()]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_declares_vars_once() {
        let q = QueryBuilder::new()
            .atom("R", &["a", "b"])
            .atom("S", &["b", "c"])
            .build();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.var("b"), Some(1));
        assert_eq!(q.shared_vars(0, 1), vec![1]);
    }

    #[test]
    fn path_query_shape() {
        let q = path_query(3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.to_string(), "R1(x0,x1) ⋈ R2(x1,x2) ⋈ R3(x2,x3)");
    }

    #[test]
    fn cycle_query_closes() {
        let q = cycle_query(4);
        assert_eq!(q.num_vars(), 4);
        let last = q.atom(3);
        assert_eq!(last.vars, vec![3, 0]);
    }

    #[test]
    fn star_query_shares_center() {
        let q = star_query(3);
        let center = q.var("x0").unwrap();
        for i in 0..3 {
            assert!(q.atom(i).uses(center));
        }
        assert_eq!(q.atoms_using(center).len(), 3);
    }

    #[test]
    fn repeated_variable_positions() {
        let q = QueryBuilder::new().atom("E", &["x", "x"]).build();
        assert_eq!(q.atom(0).positions_of(0), vec![0, 1]);
    }

    #[test]
    fn triangle_display() {
        assert_eq!(
            triangle_query().to_string(),
            "R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x1)"
        );
    }
}
