//! Cycle-query recognition and submodular-width facts.
//!
//! The paper's headline cyclic example: the 4-cycle has fractional
//! hypertree width 2 but **submodular width 1.5**, achieved by
//! decomposing into a *union of multiple trees*, each receiving a subset
//! of the input (§3, referencing Marx and PANDA). The executable C4 plan
//! (heavy/light case split) lives in `anyk_core::cyclic`; this module
//! provides the structural side: recognizing cycle queries, the known
//! subw values, and the heavy-degree threshold.

use crate::cq::ConjunctiveQuery;

/// If `q` is the standard `l`-cycle `R_1(x1,x2), ..., R_l(x_l,x_1)` (up
/// to variable naming, atoms in cycle order), return `l`.
///
/// Recognition is deliberately syntactic: binary atoms, atom `i` shares
/// its second variable with atom `i+1`'s first, and the last closes the
/// cycle with the first. (General cycle detection up to isomorphism is
/// not needed: workload generators emit this canonical shape.)
pub fn cycle_length(q: &ConjunctiveQuery) -> Option<usize> {
    let l = q.num_atoms();
    if l < 3 || q.num_vars() != l {
        return None;
    }
    for a in q.atoms() {
        if a.vars.len() != 2 {
            return None;
        }
    }
    for i in 0..l {
        let cur = &q.atom(i).vars;
        let nxt = &q.atom((i + 1) % l).vars;
        if cur[1] != nxt[0] {
            return None;
        }
    }
    // All first variables distinct (true when num_vars == l and the
    // chain condition holds, but keep the explicit check).
    let mut seen = vec![false; q.num_vars()];
    for i in 0..l {
        let v = q.atom(i).vars[0];
        if seen[v] {
            return None;
        }
        seen[v] = true;
    }
    Some(l)
}

/// The submodular width of the `l`-cycle: `2 - 1/ceil(l/2)` (Marx 2013 —
/// quoted for the 4-cycle as 1.5 in §3 of the paper).
pub fn cycle_submodular_width(l: usize) -> f64 {
    assert!(l >= 3);
    2.0 - 1.0 / ((l as f64) / 2.0).ceil()
}

/// Degree threshold separating heavy from light values in the C4 plan:
/// values with more than `sqrt(n)` occurrences are heavy, so there are
/// at most `sqrt(n)` heavy values.
pub fn heavy_threshold(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{cycle_query, path_query, star_query, QueryBuilder};

    #[test]
    fn recognizes_cycles() {
        for l in 3..=7 {
            assert_eq!(cycle_length(&cycle_query(l)), Some(l));
        }
    }

    #[test]
    fn rejects_non_cycles() {
        assert_eq!(cycle_length(&path_query(3)), None);
        assert_eq!(cycle_length(&star_query(3)), None);
        let q = QueryBuilder::new()
            .atom("R", &["a", "b", "c"])
            .atom("S", &["c", "a"])
            .atom("T", &["b", "a"])
            .build();
        assert_eq!(cycle_length(&q), None);
    }

    #[test]
    fn subw_values() {
        assert!((cycle_submodular_width(3) - 1.5).abs() < 1e-12);
        assert!((cycle_submodular_width(4) - 1.5).abs() < 1e-12);
        assert!((cycle_submodular_width(5) - 5.0 / 3.0).abs() < 1e-12);
        assert!((cycle_submodular_width(6) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_threshold_sqrt() {
        assert_eq!(heavy_threshold(100), 10);
        assert_eq!(heavy_threshold(101), 11);
        assert_eq!(heavy_threshold(1), 1);
    }
}
