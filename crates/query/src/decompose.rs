//! Tree decompositions of cyclic queries via variable elimination.
//!
//! §3 of the paper: algorithms with `O~(n^d + r)` complexity decompose a
//! cyclic query into a tree of *bags*, materialize each bag (a small
//! join), and run Yannakakis over the bag tree. The exponent `d` is the
//! maximum, over bags, of the bag's fractional edge cover — minimized
//! over decompositions this is the **fractional hypertree width** (fhw).
//!
//! We search elimination orders: every elimination order induces a valid
//! tree decomposition, and every tree decomposition can be converted to
//! an elimination order whose bags are no larger — so for a monotone bag
//! cost (fractional cover is monotone under set inclusion) the minimum
//! over orders is *exact*. Queries live in the data-complexity regime
//! (few variables), so exhaustive order search with memoized bag costs
//! is practical up to ~9 variables; beyond that a min-fill greedy order
//! is used.

use crate::agm::fractional_edge_cover;
use crate::hypergraph::{iter_vars, Hypergraph, VarSet};
use anyk_storage::FxHashMap;

/// How a decomposition was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompositionKind {
    /// Exhaustive elimination-order search (exact fhw).
    Exact,
    /// Min-fill greedy order (upper bound on fhw).
    Greedy,
}

/// One bag of a tree decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Bag {
    /// The bag's variables.
    pub vars: VarSet,
    /// Parent bag index (`None` for the root).
    pub parent: Option<usize>,
    /// Edge indices whose optimal fractional cover witnesses this bag's
    /// cost (all edges with positive LP weight) — the relations joined
    /// to materialize the bag.
    pub cover: Vec<usize>,
    /// Fractional edge cover number of the bag.
    pub cost: f64,
}

/// A tree decomposition with per-bag covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Bags; `bags[i].parent < i` never guaranteed — use `parent` links.
    pub bags: Vec<Bag>,
    /// Maximum bag cost = the decomposition's (fractional) width.
    pub width: f64,
    /// Provenance.
    pub kind: DecompositionKind,
    /// For each hyperedge, a bag that fully contains it (where the
    /// relation's weight is accounted during ranked enumeration).
    pub edge_home: Vec<usize>,
}

impl Decomposition {
    /// Validity: every hyperedge inside some bag, and bags containing
    /// any fixed variable form a connected subtree.
    pub fn is_valid(&self, h: &Hypergraph) -> bool {
        for &e in h.edges() {
            if !self.bags.iter().any(|b| e & !b.vars == 0) {
                return false;
            }
        }
        for v in 0..h.num_vars() {
            let bit = 1u64 << v;
            let using: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].vars & bit != 0)
                .collect();
            if using.len() <= 1 {
                continue;
            }
            // Connectivity over tree edges restricted to `using`.
            let mut seen = vec![false; self.bags.len()];
            let mut stack = vec![using[0]];
            seen[using[0]] = true;
            let mut count = 0;
            while let Some(i) = stack.pop() {
                count += 1;
                let mut adj: Vec<usize> = Vec::new();
                if let Some(p) = self.bags[i].parent {
                    adj.push(p);
                }
                for (j, b) in self.bags.iter().enumerate() {
                    if b.parent == Some(i) {
                        adj.push(j);
                    }
                }
                for a in adj {
                    if !seen[a] && self.bags[a].vars & bit != 0 {
                        seen[a] = true;
                        stack.push(a);
                    }
                }
            }
            if count != using.len() {
                return false;
            }
        }
        true
    }
}

/// Memoizing wrapper for per-bag fractional covers.
struct BagCost<'a> {
    h: &'a Hypergraph,
    cache: FxHashMap<VarSet, (f64, Vec<usize>)>,
}

impl<'a> BagCost<'a> {
    fn new(h: &'a Hypergraph) -> Self {
        BagCost {
            h,
            cache: FxHashMap::default(),
        }
    }

    fn cost(&mut self, bag: VarSet) -> (f64, Vec<usize>) {
        if let Some(c) = self.cache.get(&bag) {
            return c.clone();
        }
        let cover =
            fractional_edge_cover(self.h, bag).expect("bag contains a variable used by no atom");
        let support: Vec<usize> = cover
            .weights
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| (w > 1e-9).then_some(i))
            .collect();
        let out = (cover.value, support);
        self.cache.insert(bag, out.clone());
        out
    }
}

/// The primal (Gaifman) graph as per-vertex neighbor masks.
fn primal(h: &Hypergraph) -> Vec<VarSet> {
    let mut adj = vec![0u64; h.num_vars()];
    for &e in h.edges() {
        for v in iter_vars(e) {
            adj[v] |= e & !(1 << v);
        }
    }
    adj
}

/// Decomposition induced by eliminating variables in `order`.
fn decompose_order(h: &Hypergraph, order: &[usize], costs: &mut BagCost) -> Decomposition {
    let n = h.num_vars();
    debug_assert_eq!(order.len(), n);
    let mut adj = primal(h);
    let mut eliminated_at = vec![usize::MAX; n];
    let mut bag_vars: Vec<VarSet> = Vec::with_capacity(n);
    for (step, &v) in order.iter().enumerate() {
        let bag = adj[v] | (1 << v);
        bag_vars.push(bag);
        eliminated_at[v] = step;
        // Connect v's remaining neighbors into a clique, remove v.
        let nbrs: Vec<usize> = iter_vars(adj[v]).collect();
        for &u in &nbrs {
            adj[u] |= adj[v] & !(1 << u);
            adj[u] &= !(1 << v);
        }
        adj[v] = 0;
    }
    // Clique-tree structure: bag of step i connects to the bag of the
    // earliest-eliminated vertex among its other members... precisely:
    // parent(bag_i) = bag of the *next* eliminated vertex in bag_i \ {v_i}.
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, &v) in order.iter().enumerate() {
        let rest = bag_vars[i] & !(1 << v);
        let next = iter_vars(rest).map(|u| eliminated_at[u]).min();
        parents[i] = next;
    }
    // Prune redundant bags (subset of their parent) to keep trees small.
    // Keep it simple: retain all non-subset bags; remap parents through
    // pruned ones.
    let mut keep = vec![true; n];
    for i in 0..n {
        if let Some(p) = parents[i] {
            if bag_vars[i] & !bag_vars[p] == 0 {
                keep[i] = false;
            }
        }
    }
    let resolve = |mut i: usize, parents: &[Option<usize>], keep: &[bool]| -> Option<usize> {
        loop {
            match parents[i] {
                None => return None,
                Some(p) => {
                    if keep[p] {
                        return Some(p);
                    }
                    i = p;
                }
            }
        }
    };
    let mut remap = vec![usize::MAX; n];
    let mut bags: Vec<Bag> = Vec::new();
    for i in 0..n {
        if keep[i] {
            remap[i] = bags.len();
            let (cost, cover) = costs.cost(bag_vars[i]);
            bags.push(Bag {
                vars: bag_vars[i],
                parent: None, // fixed below
                cover,
                cost,
            });
        }
    }
    for i in 0..n {
        if keep[i] {
            // When a pruned bag's subtree reattaches, children of pruned
            // bags must re-resolve too; handle by resolving through
            // pruned parents transitively.
            let p = resolve(i, &parents, &keep);
            bags[remap[i]].parent = p.map(|p| remap[p]);
        }
    }
    let width = bags.iter().map(|b| b.cost).fold(0.0, f64::max);
    // Edge homes: first bag containing each edge.
    let edge_home = h
        .edges()
        .iter()
        .map(|&e| {
            bags.iter()
                .position(|b| e & !b.vars == 0)
                .expect("elimination bags must cover every edge")
        })
        .collect();
    Decomposition {
        bags,
        width,
        kind: DecompositionKind::Exact,
        edge_home,
    }
}

/// Exact fractional hypertree width by exhausting elimination orders.
/// Panics if the query has more than `MAX_EXACT_VARS` variables.
pub fn fhw_exact(h: &Hypergraph) -> Decomposition {
    const MAX_EXACT_VARS: usize = 9;
    let n = h.num_vars();
    assert!(
        n <= MAX_EXACT_VARS,
        "exact fhw limited to {MAX_EXACT_VARS} variables; use fhw_greedy"
    );
    let mut costs = BagCost::new(h);
    let mut best: Option<Decomposition> = None;
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |ord| {
        let d = decompose_order(h, ord, &mut costs);
        if best.as_ref().is_none_or(|b| d.width < b.width - 1e-12) {
            best = Some(d);
        }
    });
    best.expect("non-empty hypergraph")
}

/// Greedy min-fill elimination order (classic heuristic): decomposition
/// whose width upper-bounds fhw.
pub fn fhw_greedy(h: &Hypergraph) -> Decomposition {
    let n = h.num_vars();
    let mut adj = primal(h);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        // Pick the vertex whose elimination adds the fewest fill edges.
        let v = remaining
            .iter()
            .copied()
            .min_by_key(|&v| {
                let nbrs: Vec<usize> = iter_vars(adj[v]).collect();
                let mut fill = 0usize;
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[i + 1..] {
                        if adj[a] & (1 << b) == 0 {
                            fill += 1;
                        }
                    }
                }
                (fill, v)
            })
            .unwrap();
        order.push(v);
        let nbrs: Vec<usize> = iter_vars(adj[v]).collect();
        for &u in &nbrs {
            adj[u] |= adj[v] & !(1 << u);
            adj[u] &= !(1 << v);
        }
        adj[v] = 0;
        remaining.retain(|&x| x != v);
    }
    let mut costs = BagCost::new(h);
    let mut d = decompose_order(h, &order, &mut costs);
    d.kind = DecompositionKind::Greedy;
    d
}

/// Visit all permutations of `xs[k..]` (Heap-style recursion).
fn permute<F: FnMut(&[usize])>(xs: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == xs.len() {
        f(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, f);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{cycle_query, path_query, star_query, triangle_query};

    fn fhw(q: &crate::cq::ConjunctiveQuery) -> f64 {
        fhw_exact(&Hypergraph::of_query(q)).width
    }

    #[test]
    fn acyclic_queries_have_width_1() {
        assert!((fhw(&path_query(4)) - 1.0).abs() < 1e-9);
        assert!((fhw(&star_query(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_fhw_is_1_5() {
        assert!((fhw(&triangle_query()) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn four_cycle_fhw_is_2() {
        // §3: single-tree decompositions of the 4-cycle have width 2
        // (contrast: submodular width 1.5 via a union of trees).
        assert!((fhw(&cycle_query(4)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn six_cycle_fhw_is_2() {
        assert!((fhw(&cycle_query(6)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decompositions_are_valid() {
        for q in [
            triangle_query(),
            cycle_query(4),
            cycle_query(5),
            path_query(3),
        ] {
            let h = Hypergraph::of_query(&q);
            let d = fhw_exact(&h);
            assert!(d.is_valid(&h), "invalid decomposition for {q}");
            assert_eq!(d.edge_home.len(), h.num_edges());
            for (e, &home) in h.edges().iter().zip(&d.edge_home) {
                assert_eq!(e & !d.bags[home].vars, 0, "edge not inside home bag");
            }
        }
    }

    #[test]
    fn greedy_upper_bounds_exact() {
        for q in [
            triangle_query(),
            cycle_query(4),
            cycle_query(5),
            star_query(4),
        ] {
            let h = Hypergraph::of_query(&q);
            let e = fhw_exact(&h).width;
            let g = fhw_greedy(&h);
            assert!(g.width >= e - 1e-9, "greedy below exact on {q}");
            assert!(g.is_valid(&h));
        }
    }

    #[test]
    fn bag_covers_materializable() {
        let h = Hypergraph::of_query(&cycle_query(4));
        let d = fhw_exact(&h);
        for b in &d.bags {
            // Union of cover edges must contain the bag.
            let mut m = 0u64;
            for &e in &b.cover {
                m |= h.edges()[e];
            }
            assert_eq!(b.vars & !m, 0, "cover does not span bag");
        }
    }
}
