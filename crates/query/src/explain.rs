//! Human-readable plan rendering — `EXPLAIN` for join trees and
//! decompositions. Used by examples and handy when debugging why a
//! query got the width it did.

use crate::cq::ConjunctiveQuery;
use crate::decompose::Decomposition;
use crate::hypergraph::iter_vars;
use crate::join_tree::{JoinTree, NodeId};

/// Render a join tree as an indented ASCII tree, annotated with atom
/// names and parent join keys.
pub fn explain_join_tree(q: &ConjunctiveQuery, tree: &JoinTree) -> String {
    let mut out = String::new();
    fn rec(q: &ConjunctiveQuery, tree: &JoinTree, node: NodeId, depth: usize, out: &mut String) {
        let n = tree.node(node);
        let atom = q.atom(n.atom);
        let vars: Vec<&str> = atom.vars.iter().map(|&v| q.var_name(v)).collect();
        let indent = "  ".repeat(depth);
        if n.parent.is_none() {
            out.push_str(&format!("{indent}{}({})\n", atom.relation, vars.join(",")));
        } else {
            let keys: Vec<&str> = n.join_vars.iter().map(|&v| q.var_name(v)).collect();
            out.push_str(&format!(
                "{indent}{}({}) [join on {}]\n",
                atom.relation,
                vars.join(","),
                if keys.is_empty() {
                    "∅ (cartesian)".to_string()
                } else {
                    keys.join(",")
                }
            ));
        }
        for &c in &n.children {
            rec(q, tree, c, depth + 1, out);
        }
    }
    rec(q, tree, tree.root(), 0, &mut out);
    out
}

/// Render a decomposition: bags with variables, covers, per-bag cost,
/// and the resulting width.
pub fn explain_decomposition(q: &ConjunctiveQuery, d: &Decomposition) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "decomposition ({:?}), width {:.3}\n",
        d.kind, d.width
    ));
    for (i, bag) in d.bags.iter().enumerate() {
        let vars: Vec<&str> = iter_vars(bag.vars).map(|v| q.var_name(v)).collect();
        let cover: Vec<String> = bag
            .cover
            .iter()
            .map(|&e| q.atom(e).relation.clone())
            .collect();
        out.push_str(&format!(
            "  bag {i}: {{{}}} cover = [{}], cost = {:.3}{}\n",
            vars.join(","),
            cover.join(", "),
            bag.cost,
            match bag.parent {
                Some(p) => format!(", parent = bag {p}"),
                None => ", root".to_string(),
            }
        ));
    }
    let homes: Vec<String> = d
        .edge_home
        .iter()
        .enumerate()
        .map(|(e, &b)| format!("{}→bag {b}", q.atom(e).relation))
        .collect();
    out.push_str(&format!("  atom homes: {}\n", homes.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{path_query, triangle_query};
    use crate::decompose::fhw_exact;
    use crate::gyo::{gyo_reduce, GyoResult};
    use crate::hypergraph::Hypergraph;

    #[test]
    fn join_tree_rendering_mentions_all_atoms() {
        let q = path_query(3);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let text = explain_join_tree(&q, &tree);
        for i in 1..=3 {
            assert!(text.contains(&format!("R{i}(")), "{text}");
        }
        assert!(text.contains("[join on "));
    }

    #[test]
    fn decomposition_rendering() {
        let q = triangle_query();
        let h = Hypergraph::of_query(&q);
        let d = fhw_exact(&h);
        let text = explain_decomposition(&q, &d);
        assert!(text.contains("width 1.500"), "{text}");
        assert!(text.contains("bag 0"));
        assert!(text.contains("atom homes"));
    }
}
