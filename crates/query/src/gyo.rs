//! GYO (Graham / Yu–Özsoyoğlu) reduction: the classic linear-time test
//! for α-acyclicity that simultaneously produces a join tree.
//!
//! An atom `e` is an **ear** if some other atom `w` (the *witness*)
//! contains every variable of `e` that is shared with any other atom.
//! Repeatedly removing ears empties an acyclic hypergraph; a cyclic one
//! gets stuck (§3 of the paper: acyclic queries admit the Yannakakis
//! algorithm, cyclic ones need decompositions).

use crate::cq::ConjunctiveQuery;
use crate::hypergraph::{Hypergraph, VarSet};
use crate::join_tree::JoinTree;

/// Result of a GYO reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GyoResult {
    /// The query is α-acyclic; a valid join tree is attached.
    Acyclic(JoinTree),
    /// The query is cyclic; the atom indices that could not be removed.
    Cyclic(Vec<usize>),
}

/// Run GYO reduction on `q` and, if acyclic, build a join tree.
pub fn gyo_reduce(q: &ConjunctiveQuery) -> GyoResult {
    let h = Hypergraph::of_query(q);
    let n = h.num_edges();
    let edges = h.edges();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut remaining = n;

    // An atom whose variable set is contained in another alive atom is
    // always an ear (witness = the container). More generally: shared
    // vars (vars also in some other alive atom) must be contained in a
    // single witness.
    loop {
        if remaining <= 1 {
            break;
        }
        let mut removed_any = false;
        'ears: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Union of all other alive edges.
            let mut others: VarSet = 0;
            for o in 0..n {
                if o != e && alive[o] {
                    others |= edges[o];
                }
            }
            let shared = edges[e] & others;
            for w in 0..n {
                if w != e && alive[w] && shared & !edges[w] == 0 {
                    alive[e] = false;
                    parent[e] = Some(w);
                    remaining -= 1;
                    removed_any = true;
                    continue 'ears;
                }
            }
        }
        if !removed_any {
            let stuck: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
            return GyoResult::Cyclic(stuck);
        }
    }

    // The last alive atom is the root; but removed ears may point at
    // other removed ears (we allowed any witness order): parent pointers
    // recorded at removal time always reference an atom alive *at that
    // moment*, which may itself be removed later — that still yields a
    // valid tree because removal order is a reverse topological order.
    GyoResult::Acyclic(JoinTree::from_parents(q, &parent))
}

/// Is `q` α-acyclic?
pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
    matches!(gyo_reduce(q), GyoResult::Acyclic(_))
}

/// Brute-force acyclicity oracle for testing: try all parent-pointer
/// forests and check the running-intersection property. Exponential —
/// only for tiny queries in tests.
pub fn is_acyclic_bruteforce(q: &ConjunctiveQuery) -> bool {
    let n = q.num_atoms();
    if n == 1 {
        return true;
    }
    // Enumerate all rooted labelled trees via Prüfer-like brute force:
    // every function parent: [n] -> [n] with one root, acyclic, then
    // check running intersection.
    fn rec(q: &ConjunctiveQuery, parents: &mut Vec<Option<usize>>, i: usize, root: usize) -> bool {
        let n = q.num_atoms();
        if i == n {
            // Cycle check.
            for start in 0..n {
                let mut seen = 0usize;
                let mut cur = start;
                while let Some(p) = parents[cur] {
                    cur = p;
                    seen += 1;
                    if seen > n {
                        return false;
                    }
                }
            }
            let t = JoinTree::from_parents(q, parents);
            return t.satisfies_running_intersection(q);
        }
        if i == root {
            parents.push(None);
            if rec(q, parents, i + 1, root) {
                return true;
            }
            parents.pop();
            return false;
        }
        for p in 0..n {
            if p == i {
                continue;
            }
            parents.push(Some(p));
            if rec(q, parents, i + 1, root) {
                return true;
            }
            parents.pop();
        }
        false
    }
    (0..n).any(|root| rec(q, &mut Vec::new(), 0, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{cycle_query, path_query, star_query, triangle_query, QueryBuilder};

    #[test]
    fn paths_and_stars_are_acyclic() {
        for l in 1..=6 {
            assert!(is_acyclic(&path_query(l)), "path {l}");
            assert!(is_acyclic(&star_query(l)), "star {l}");
        }
    }

    #[test]
    fn cycles_are_cyclic() {
        for l in 3..=6 {
            assert!(!is_acyclic(&cycle_query(l)), "cycle {l}");
        }
    }

    #[test]
    fn join_tree_is_valid() {
        let q = path_query(4);
        match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => {
                assert!(t.satisfies_running_intersection(&q));
                assert_eq!(t.len(), 4);
            }
            GyoResult::Cyclic(_) => panic!("path is acyclic"),
        }
    }

    #[test]
    fn triangle_reports_stuck_atoms() {
        match gyo_reduce(&triangle_query()) {
            GyoResult::Cyclic(stuck) => assert_eq!(stuck.len(), 3),
            GyoResult::Acyclic(_) => panic!("triangle is cyclic"),
        }
    }

    #[test]
    fn contained_atom_is_ear() {
        // R(a,b,c) contains S(a,b): acyclic even with T(c,d).
        let q = QueryBuilder::new()
            .atom("R", &["a", "b", "c"])
            .atom("S", &["a", "b"])
            .atom("T", &["c", "d"])
            .build();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn agrees_with_bruteforce_on_small_queries() {
        let queries = vec![
            path_query(2),
            path_query(3),
            star_query(3),
            triangle_query(),
            cycle_query(4),
            QueryBuilder::new()
                .atom("R", &["a", "b"])
                .atom("S", &["b", "c"])
                .atom("T", &["a", "c"])
                .atom("U", &["a", "b", "c"])
                .build(), // cyclic core absorbed by U -> acyclic
        ];
        for q in queries {
            assert_eq!(
                is_acyclic(&q),
                is_acyclic_bruteforce(&q),
                "disagreement on {q}"
            );
        }
    }

    #[test]
    fn single_atom_acyclic() {
        let q = QueryBuilder::new().atom("R", &["a", "b"]).build();
        assert!(is_acyclic(&q));
        match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => assert_eq!(t.len(), 1),
            _ => panic!(),
        }
    }
}
