//! Query hypergraphs: vertices = variables, hyperedges = atom variable
//! sets. Represented as bitmasks (`u64`) — queries in the data-complexity
//! regime have few variables, and bitmask set algebra keeps the
//! decomposition search fast.

use crate::cq::ConjunctiveQuery;

/// A set of variables as a bitmask.
pub type VarSet = u64;

/// The hypergraph of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// Number of vertices (variables).
    num_vars: usize,
    /// One bitmask per hyperedge (atom).
    edges: Vec<VarSet>,
}

impl Hypergraph {
    /// Build from explicit edges. Panics if more than 64 variables.
    pub fn new(num_vars: usize, edges: Vec<VarSet>) -> Self {
        assert!(num_vars <= 64, "at most 64 query variables supported");
        for &e in &edges {
            assert!(
                e < (1u64 << num_vars) || num_vars == 64,
                "edge uses out-of-range vertex"
            );
        }
        Hypergraph { num_vars, edges }
    }

    /// The hypergraph of `q`.
    pub fn of_query(q: &ConjunctiveQuery) -> Self {
        assert!(q.num_vars() <= 64, "at most 64 query variables supported");
        let edges = q
            .atoms()
            .iter()
            .map(|a| {
                let mut m: VarSet = 0;
                for &v in &a.vars {
                    m |= 1 << v;
                }
                m
            })
            .collect();
        Hypergraph {
            num_vars: q.num_vars(),
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges as bitmasks.
    pub fn edges(&self) -> &[VarSet] {
        &self.edges
    }

    /// Bitmask of all vertices.
    pub fn all_vars(&self) -> VarSet {
        if self.num_vars == 64 {
            u64::MAX
        } else {
            (1u64 << self.num_vars) - 1
        }
    }

    /// Edges (indices) containing vertex `v`.
    pub fn edges_with(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        let bit = 1u64 << v;
        self.edges
            .iter()
            .enumerate()
            .filter_map(move |(i, &e)| (e & bit != 0).then_some(i))
    }

    /// The neighbors of `v`: all vertices sharing an edge with `v`
    /// (excluding `v`).
    pub fn neighbors(&self, v: usize) -> VarSet {
        let bit = 1u64 << v;
        let mut m = 0;
        for &e in &self.edges {
            if e & bit != 0 {
                m |= e;
            }
        }
        m & !bit
    }

    /// Is `cover` (a set of edge indices) a vertex cover of `vars`?
    pub fn covers(&self, edge_subset: &[usize], vars: VarSet) -> bool {
        let mut m = 0;
        for &i in edge_subset {
            m |= self.edges[i];
        }
        vars & !m == 0
    }
}

/// Iterate the vertices in a [`VarSet`].
pub fn iter_vars(mut set: VarSet) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if set == 0 {
            None
        } else {
            let v = set.trailing_zeros() as usize;
            set &= set - 1;
            Some(v)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{cycle_query, path_query, triangle_query};

    #[test]
    fn of_triangle() {
        let h = Hypergraph::of_query(&triangle_query());
        assert_eq!(h.num_vars(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edges(), &[0b011, 0b110, 0b101]);
        assert_eq!(h.all_vars(), 0b111);
    }

    #[test]
    fn neighbors_of_path() {
        let h = Hypergraph::of_query(&path_query(3));
        // x1 (vertex 1) neighbors x0 and x2.
        assert_eq!(h.neighbors(1), 0b101);
        // endpoint x0 neighbors only x1.
        assert_eq!(h.neighbors(0), 0b010);
    }

    #[test]
    fn edges_with_vertex() {
        let h = Hypergraph::of_query(&cycle_query(4));
        let touching: Vec<usize> = h.edges_with(0).collect();
        assert_eq!(touching, vec![0, 3]);
    }

    #[test]
    fn covers_checks_union() {
        let h = Hypergraph::of_query(&triangle_query());
        assert!(h.covers(&[0, 1], 0b111));
        assert!(!h.covers(&[0], 0b111));
    }

    #[test]
    fn iter_vars_yields_sorted() {
        let got: Vec<usize> = iter_vars(0b101001).collect();
        assert_eq!(got, vec![0, 3, 5]);
    }
}
