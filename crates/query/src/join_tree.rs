//! Rooted join trees for acyclic (sub)queries.
//!
//! A join tree has one node per atom; for every variable, the nodes whose
//! atoms use it form a connected subtree (the *running intersection*
//! property). Yannakakis and T-DP both operate on this structure.

use crate::cq::{ConjunctiveQuery, VarId};

/// Index of a node in a [`JoinTree`].
pub type NodeId = usize;

/// One join-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTreeNode {
    /// The atom (index into the query's atom list) at this node.
    pub atom: usize,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Variables shared with the parent (sorted; empty for the root —
    /// a cartesian-product edge would also be empty, which is legal).
    pub join_vars: Vec<VarId>,
}

/// A rooted join tree over the atoms of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    nodes: Vec<JoinTreeNode>,
    root: NodeId,
}

impl JoinTree {
    /// Build from parent pointers over atoms: `parents[i]` is the atom
    /// index of atom `i`'s parent (`None` exactly once, for the root).
    /// Join variables are derived from the query.
    pub fn from_parents(q: &ConjunctiveQuery, parents: &[Option<usize>]) -> Self {
        assert_eq!(parents.len(), q.num_atoms());
        let root = parents
            .iter()
            .position(|p| p.is_none())
            .expect("exactly one root required");
        assert_eq!(
            parents.iter().filter(|p| p.is_none()).count(),
            1,
            "exactly one root required"
        );
        let mut nodes: Vec<JoinTreeNode> = (0..q.num_atoms())
            .map(|i| JoinTreeNode {
                atom: i,
                parent: parents[i],
                children: Vec::new(),
                join_vars: match parents[i] {
                    Some(p) => q.shared_vars(i, p),
                    None => Vec::new(),
                },
            })
            .collect();
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                nodes[p].children.push(i);
            }
        }
        let tree = JoinTree { nodes, root };
        debug_assert!(tree.preorder().len() == tree.len(), "parent cycle");
        tree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree has no nodes (never for trees built from
    /// queries, which have >= 1 atom).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &JoinTreeNode {
        &self.nodes[id]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[JoinTreeNode] {
        &self.nodes
    }

    /// Node ids in pre-order (root first, children in order). Each
    /// subtree occupies a contiguous range — the property T-DP's
    /// serialization relies on.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so they pop in order.
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Check the running-intersection property against `q`: for each
    /// variable, the atoms using it must induce a connected subtree.
    pub fn satisfies_running_intersection(&self, q: &ConjunctiveQuery) -> bool {
        for v in 0..q.num_vars() {
            let using: Vec<NodeId> = (0..self.nodes.len())
                .filter(|&n| q.atom(self.nodes[n].atom).uses(v))
                .collect();
            if using.len() <= 1 {
                continue;
            }
            // Walk up from each using node; the variable must stay
            // present along the path to the "highest" using node.
            // Equivalent check: the set is connected iff every using
            // node except the highest has a parent whose subtree-path
            // eventually reaches another using node through using nodes.
            // Simple BFS over tree edges restricted to `using`:
            let mut seen = vec![false; self.nodes.len()];
            let mut stack = vec![using[0]];
            seen[using[0]] = true;
            let in_using = |n: NodeId| using.contains(&n);
            let mut count = 0;
            while let Some(n) = stack.pop() {
                count += 1;
                let mut adj: Vec<NodeId> = self.nodes[n].children.clone();
                if let Some(p) = self.nodes[n].parent {
                    adj.push(p);
                }
                for a in adj {
                    if !seen[a] && in_using(a) {
                        seen[a] = true;
                        stack.push(a);
                    }
                }
            }
            if count != using.len() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{path_query, star_query, QueryBuilder};

    #[test]
    fn from_parents_builds_chain() {
        let q = path_query(3);
        let t = JoinTree::from_parents(&q, &[None, Some(0), Some(1)]);
        assert_eq!(t.root(), 0);
        assert_eq!(t.node(1).join_vars, vec![q.var("x1").unwrap()]);
        assert_eq!(t.node(2).join_vars, vec![q.var("x2").unwrap()]);
        assert_eq!(t.preorder(), vec![0, 1, 2]);
        assert!(t.satisfies_running_intersection(&q));
    }

    #[test]
    fn star_tree() {
        let q = star_query(3);
        let t = JoinTree::from_parents(&q, &[None, Some(0), Some(0)]);
        assert_eq!(t.node(0).children, vec![1, 2]);
        assert_eq!(t.preorder(), vec![0, 1, 2]);
        assert!(t.satisfies_running_intersection(&q));
    }

    #[test]
    fn preorder_contiguous_subtrees() {
        // Build: 0 -> {1 -> {2}, 3}
        let q = QueryBuilder::new()
            .atom("A", &["a", "b"])
            .atom("B", &["b", "c"])
            .atom("C", &["c", "d"])
            .atom("D", &["a", "e"])
            .build();
        let t = JoinTree::from_parents(&q, &[None, Some(0), Some(1), Some(0)]);
        assert_eq!(t.preorder(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn running_intersection_violation_detected() {
        // Path query but tree connects R1-R3 directly: x1 appears at
        // nodes 0,1 (fine), x2 at 1,2 (parent of 2 is 0 -> disconnected).
        let q = path_query(3);
        let t = JoinTree::from_parents(&q, &[None, Some(0), Some(0)]);
        assert!(!t.satisfies_running_intersection(&q));
    }

    #[test]
    #[should_panic]
    fn two_roots_rejected() {
        let q = path_query(2);
        let _ = JoinTree::from_parents(&q, &[None, None]);
    }
}
