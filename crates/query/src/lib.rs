//! # anyk-query
//!
//! Query-level machinery for the `anyk` project: conjunctive queries and
//! their hypergraphs, structural analysis (acyclicity via GYO, join
//! trees), and the width/size theory of Part 2 of the paper — fractional
//! edge covers and the AGM bound (via a built-in simplex solver), tree
//! decompositions from elimination orders, and the submodular-width
//! union-of-trees plans for cycle queries.
//!
//! All analysis here is *data-independent*: it looks only at the query
//! shape (plus, optionally, relation sizes for weighted AGM bounds).
//! Execution lives in `anyk-join` (batch) and `anyk-core` (ranked).

pub mod agm;
pub mod cq;
pub mod cycles;
pub mod decompose;
pub mod explain;
pub mod gyo;
pub mod hypergraph;
pub mod join_tree;
pub mod simplex;

pub use agm::{agm_bound, fractional_edge_cover, FractionalCover};
pub use cq::{Atom, ConjunctiveQuery, QueryBuilder, VarId};
pub use decompose::{Decomposition, DecompositionKind};
pub use explain::{explain_decomposition, explain_join_tree};
pub use gyo::{gyo_reduce, is_acyclic};
pub use hypergraph::Hypergraph;
pub use join_tree::{JoinTree, NodeId};
