//! A small dense two-phase simplex solver.
//!
//! Solves `min c·x  s.t.  A x >= b,  x >= 0` — exactly the shape of the
//! fractional-edge-cover LP behind the AGM bound (§3 of the paper). The
//! LPs here have at most a few dozen variables (one per atom), so a
//! textbook dense tableau with Bland's anti-cycling rule is both simple
//! and fast. Implemented locally: pulling an LP crate for a 10-variable
//! LP would be the tail wagging the dog.

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal assignment (length = number of structural variables).
    pub x: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Minimize `c·x` subject to `A x >= b`, `x >= 0`.
///
/// Requires `b[i] >= 0` (true for cover LPs; callers with negative
/// right-hand sides should negate rows into `<=` form first — not needed
/// in this project). Returns `None` if infeasible or unbounded.
pub fn solve_min(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<LpSolution> {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m);
    for row in a {
        assert_eq!(row.len(), n);
    }
    assert!(b.iter().all(|&x| x >= 0.0), "b must be non-negative");

    // Tableau columns: [structural 0..n | surplus n..n+m | artificial
    // n+m..n+2m | rhs]. Constraints: A x - s + art = b.
    let cols = n + 2 * m + 1;
    let rhs = cols - 1;
    let mut t = vec![vec![0.0f64; cols]; m];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = a[i][j];
        }
        t[i][n + i] = -1.0;
        t[i][n + m + i] = 1.0;
        t[i][rhs] = b[i];
    }
    // Basis: artificial variables.
    let mut basis: Vec<usize> = (0..m).map(|i| n + m + i).collect();

    // Phase 1: minimize the sum of artificials. We keep the objective
    // row in `z_j - c_j` form (minimization: optimal when all <= 0,
    // enter on > 0). With the all-artificial starting basis (B = I,
    // c_B = 1), `z_j - c_j = sum_i t[i][j]` for non-artificial j and 0
    // for artificial j; the rhs cell carries the current phase-1 value.
    let mut obj = vec![0.0f64; cols];
    for row in t.iter().take(m) {
        for (j, cell) in obj.iter_mut().enumerate() {
            if !(n + m..n + 2 * m).contains(&j) {
                *cell += row[j];
            }
        }
    }
    simplex_loop(&mut t, &mut obj, &mut basis, n + m)?;
    if obj[rhs] > EPS {
        return None; // Infeasible: artificials cannot be driven to 0.
    }

    // Drive any artificial still in the basis out (degenerate case).
    for i in 0..m {
        if basis[i] >= n + m {
            // Find a non-artificial column with nonzero coefficient.
            if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut obj, &mut basis, i, j);
            }
            // Else the row is all-zero: redundant constraint; leave it.
        }
    }

    // Phase 2 objective: minimize c·x. Reduced costs: start from -c in
    // structural columns, then eliminate basic columns.
    let mut obj2 = vec![0.0f64; cols];
    for (j, &cj) in c.iter().enumerate() {
        obj2[j] = -cj;
    }
    for i in 0..m {
        let bj = basis[i];
        if obj2[bj].abs() > EPS {
            let factor = obj2[bj];
            for j in 0..cols {
                obj2[j] -= factor * t[i][j];
            }
        }
    }
    simplex_loop(&mut t, &mut obj2, &mut basis, n + m)?;

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][rhs];
        }
    }
    // obj2[rhs] holds -(objective shift); recompute objective directly.
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Some(LpSolution { objective, x })
}

/// Run simplex iterations on the tableau until optimal (all reduced
/// costs <= 0 for our maximization-of-negated form). `col_limit`
/// restricts entering columns (used to forbid artificials in phase 2).
/// Returns `None` on unboundedness.
fn simplex_loop(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    col_limit: usize,
) -> Option<()> {
    let m = t.len();
    let rhs = obj.len() - 1;
    loop {
        // Bland's rule: smallest-index column with positive reduced cost.
        let Some(enter) = (0..col_limit).find(|&j| obj[j] > EPS) else {
            return Some(()); // optimal
        };
        // Ratio test (Bland: smallest basis index breaks ties).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][rhs] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let leave = leave?; // None -> unbounded
        pivot(t, obj, basis, leave, enter);
    }
}

/// Pivot the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS);
    for cell in t[row].iter_mut() {
        *cell /= p;
    }
    // Split the tableau around `row` so the pivot row can be read
    // while the other rows are mutated — no clone, no allocation.
    let (before, rest) = t.split_at_mut(row);
    let (pivot_row, after) = rest.split_first_mut().expect("row in bounds");
    for r in before.iter_mut().chain(after.iter_mut()) {
        if r[col].abs() > EPS {
            let f = r[col];
            for (cell, &pv) in r.iter_mut().zip(pivot_row.iter()) {
                *cell -= f * pv;
            }
        }
    }
    if obj[col].abs() > EPS {
        let f = obj[col];
        for (o, &pv) in obj.iter_mut().zip(pivot_row.iter()) {
            *o -= f * pv;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivial_single_var() {
        // min x s.t. x >= 3.
        let sol = solve_min(&[1.0], &[vec![1.0]], &[3.0]).unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.x[0], 3.0);
    }

    #[test]
    fn triangle_cover_is_three_halves() {
        // Fractional edge cover of the triangle: each vertex in 2 edges,
        // min x1+x2+x3 with x_e summing >= 1 per vertex -> 1.5.
        let a = vec![
            vec![1.0, 0.0, 1.0], // vertex A in edges 1,3
            vec![1.0, 1.0, 0.0], // vertex B in edges 1,2
            vec![0.0, 1.0, 1.0], // vertex C in edges 2,3
        ];
        let sol = solve_min(&[1.0, 1.0, 1.0], &a, &[1.0, 1.0, 1.0]).unwrap();
        assert_close(sol.objective, 1.5);
    }

    #[test]
    fn path_cover() {
        // Path R(a,b), S(b,c): cover needs both edges (endpoints a and c
        // are each in one edge) -> 2.
        let a = vec![
            vec![1.0, 0.0], // a
            vec![1.0, 1.0], // b
            vec![0.0, 1.0], // c
        ];
        let sol = solve_min(&[1.0, 1.0], &a, &[1.0, 1.0, 1.0]).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn weighted_objective() {
        // min 2x + y s.t. x + y >= 1 -> y = 1.
        let sol = solve_min(&[2.0, 1.0], &[vec![1.0, 1.0]], &[1.0]).unwrap();
        assert_close(sol.objective, 1.0);
        assert_close(sol.x[0], 0.0);
        assert_close(sol.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 1 with zero coefficient: 0*x >= 1 infeasible.
        assert!(solve_min(&[1.0], &[vec![0.0]], &[1.0]).is_none());
    }

    #[test]
    fn redundant_constraints_ok() {
        // Same constraint twice.
        let sol = solve_min(&[1.0], &[vec![1.0], vec![1.0]], &[2.0, 2.0]).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn matches_bruteforce_grid_on_random_covers() {
        // Deterministic pseudo-random small cover LPs vs grid search.
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let n = 2 + (rnd() % 3) as usize; // 2..4 vars
            let m = 2 + (rnd() % 3) as usize; // 2..4 constraints
            let mut a = vec![vec![0.0; n]; m];
            let mut any = false;
            for row in a.iter_mut() {
                for x in row.iter_mut() {
                    if rnd() % 2 == 0 {
                        *x = 1.0;
                        any = true;
                    }
                }
            }
            if !any || a.iter().any(|r| r.iter().all(|&x| x == 0.0)) {
                continue; // would be infeasible
            }
            let b = vec![1.0; m];
            let c = vec![1.0; n];
            let sol = solve_min(&c, &a, &b).unwrap();
            // Grid search x_i in {0, 1/4, ..., 2} — covers LPs with 0/1
            // matrices whose optima lie on quarter-integers for n <= 4.
            let steps = 9;
            let mut best = f64::INFINITY;
            let mut idx = vec![0usize; n];
            loop {
                let x: Vec<f64> = idx.iter().map(|&i| i as f64 * 0.25).collect();
                let feasible = a.iter().zip(&b).all(|(row, &bi)| {
                    row.iter().zip(&x).map(|(r, v)| r * v).sum::<f64>() >= bi - 1e-9
                });
                if feasible {
                    let val: f64 = x.iter().sum();
                    if val < best {
                        best = val;
                    }
                }
                // Increment mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < steps {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
            assert!(
                sol.objective <= best + 1e-6,
                "simplex {} worse than grid {best}",
                sol.objective
            );
        }
    }
}
