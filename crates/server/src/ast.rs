//! The abstract syntax of the textual ranked-CQ language, plus its
//! canonical rendering and the lowering into `anyk_query`'s
//! [`ConjunctiveQuery`].
//!
//! The grammar (case-insensitive keywords, `;` optional):
//!
//! ```text
//! command := select | EXPLAIN select | EXPLAIN ANALYZE select
//!          | insert | load
//!          | NEXT count ON cursor | CLOSE cursor | STATS
//!          | TRACE count | TRACE SLOW
//! select  := SELECT atom (',' atom)* [RANK BY ranking] [LIMIT count]
//! insert  := INSERT INTO relation VALUES row (',' row)*
//! load    := LOAD relation FROM CSV string
//! row     := '(' literal (',' literal)* ')'
//! literal := ['-'] (int | float)        -- last cell of a row is the weight
//! atom    := relation '(' var (',' var)* ')'
//! ranking := sum | max | min | prod | lex
//! string  := '\'' ... '\''              -- escapes: \\ \' \n \r \t
//! ```
//!
//! Every [`Command`] renders back to canonical text via [`Display`](fmt::Display),
//! and `parse(render(cmd)) == cmd` — the round-trip the parser
//! proptests pin.

use anyk_engine::RankSpec;
use anyk_query::cq::{ConjunctiveQuery, QueryBuilder};
use anyk_storage::FloatBits;
use std::fmt;

/// One client command of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Open a ranked query: plan, pull the first page, and (if answers
    /// remain) register a cursor.
    Select(SelectStmt),
    /// Plan only: respond with the rendered [`Plan`](anyk_engine::Plan),
    /// executing nothing.
    Explain(SelectStmt),
    /// Plan **and execute** to the page limit, reporting per-stage
    /// wall times, actual vs routed cardinalities, cache/index
    /// provenance, and shard fan-in — instead of the answers.
    ExplainAnalyze(SelectStmt),
    /// Append literal rows to a registered relation (the write path:
    /// rows land as an [`DeltaRelation`](anyk_storage::DeltaRelation)
    /// delta batch, dependent plans are invalidated, open streams keep
    /// their snapshot).
    Insert(InsertStmt),
    /// Append rows parsed from an inline CSV block (same wire semantics
    /// as `INSERT`, bulk-shaped).
    Load(LoadStmt),
    /// Pull up to `count` more answers from an open cursor.
    Next {
        /// Maximum number of answers to pull.
        count: usize,
        /// The cursor id a previous `SELECT` returned.
        cursor: u64,
    },
    /// Close a cursor, releasing its stream and admission slot.
    Close {
        /// The cursor id to close.
        cursor: u64,
    },
    /// Report service metrics (sessions, cursors, TTF, plan cache).
    Stats,
    /// Report the most recent `last` completed-query traces from the
    /// service's trace ring, newest first.
    Trace {
        /// How many traces to report (capped at the ring's capacity).
        last: usize,
    },
    /// Report the slow-query log (traces whose wall time crossed the
    /// service's threshold), newest first.
    TraceSlow,
}

/// The `SELECT` statement: a full conjunctive query (atoms over named
/// variables), a ranking, and an optional page limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// The query atoms, in canonical (serialization) order.
    pub atoms: Vec<AtomRef>,
    /// The ranking function (`RANK BY ...`; defaults to `sum`).
    pub rank: RankSpec,
    /// Page size for the first page (`LIMIT k`); `None` uses the
    /// service default.
    pub limit: Option<usize>,
}

/// A numeric literal of an `INSERT` row. The write path is numeric
/// only: symbols would need catalog interning mid-append, which the
/// engine's write path deliberately avoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Literal {
    /// An integer cell.
    Int(i64),
    /// A float cell (total-ordered bits, so `Literal` stays `Eq`).
    Float(FloatBits),
}

impl Literal {
    /// The literal as `f64` — how the trailing weight cell is read.
    pub fn as_f64(self) -> f64 {
        match self {
            Literal::Int(i) => i as f64,
            Literal::Float(b) => b.get(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(b) => {
                // `Display` for f64 renders 1.0 as "1"; force a marker
                // so the canonical text re-lexes as a float.
                let s = b.get().to_string();
                if s.contains(['.', 'e', 'E']) {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// The `INSERT INTO R VALUES (…),(…)` statement. Each row carries the
/// relation's attribute cells plus a trailing weight cell; the service
/// checks the count against the live catalog arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertStmt {
    /// The target relation name.
    pub relation: String,
    /// The rows, each `arity + 1` literals (attributes then weight).
    pub rows: Vec<Vec<Literal>>,
}

/// The `LOAD R FROM CSV '…'` statement: an inline CSV block (header
/// `attr1,…,attrN,weight`) appended as one delta batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadStmt {
    /// The target relation name.
    pub relation: String,
    /// The raw CSV text (unescaped), parsed by
    /// [`read_csv`](anyk_storage::read_csv).
    pub csv: String,
}

/// Escape a string for the wire's single-quoted literal form:
/// `\\ \' \n \r \t`.
pub(crate) fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {} VALUES ", self.relation)?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "(")?;
            for (j, lit) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for LoadStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LOAD {} FROM CSV '{}'",
            self.relation,
            escape_str(&self.csv)
        )
    }
}

/// One atom `R(x, y, ...)` of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomRef {
    /// The relation name (resolved against the engine's catalog).
    pub relation: String,
    /// Variable names, one per column.
    pub vars: Vec<String>,
}

impl SelectStmt {
    /// Lower into the engine's query representation. Variables are
    /// declared in first-use order across the atoms, exactly like
    /// [`QueryBuilder`] — so a query rendered by [`select_text`] lowers
    /// back to an equal [`ConjunctiveQuery`].
    pub fn to_cq(&self) -> ConjunctiveQuery {
        let mut b = QueryBuilder::new();
        for atom in &self.atoms {
            let vars: Vec<&str> = atom.vars.iter().map(String::as_str).collect();
            b = b.atom(atom.relation.clone(), &vars);
        }
        b.build()
    }
}

impl fmt::Display for AtomRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.vars.join(","))
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, " RANK BY {}", self.rank)?;
        if let Some(k) = self.limit {
            write!(f, " LIMIT {k}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Command {
    /// Canonical text: what [`parse`](crate::parse) round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Select(s) => write!(f, "{s};"),
            Command::Explain(s) => write!(f, "EXPLAIN {s};"),
            Command::ExplainAnalyze(s) => write!(f, "EXPLAIN ANALYZE {s};"),
            Command::Insert(s) => write!(f, "{s};"),
            Command::Load(s) => write!(f, "{s};"),
            Command::Next { count, cursor } => write!(f, "NEXT {count} ON {cursor};"),
            Command::Close { cursor } => write!(f, "CLOSE {cursor};"),
            Command::Stats => write!(f, "STATS;"),
            Command::Trace { last } => write!(f, "TRACE {last};"),
            Command::TraceSlow => write!(f, "TRACE SLOW;"),
        }
    }
}

/// Render a [`ConjunctiveQuery`] as the `SELECT` statement that lowers
/// back to it: `SELECT R(a,b), S(b,c) RANK BY sum;`. The inverse of
/// [`SelectStmt::to_cq`] for queries whose variables appear in
/// first-use order (everything [`QueryBuilder`] produces).
pub fn select_text(q: &ConjunctiveQuery, rank: RankSpec, limit: Option<usize>) -> String {
    let stmt = select_stmt(q, rank, limit);
    Command::Select(stmt).to_string()
}

/// The [`SelectStmt`] form of a [`ConjunctiveQuery`] (see
/// [`select_text`]).
pub fn select_stmt(q: &ConjunctiveQuery, rank: RankSpec, limit: Option<usize>) -> SelectStmt {
    SelectStmt {
        atoms: q
            .atoms()
            .iter()
            .map(|a| AtomRef {
                relation: a.relation.clone(),
                vars: a.vars.iter().map(|&v| q.var_name(v).to_string()).collect(),
            })
            .collect(),
        rank,
        limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, triangle_query};

    #[test]
    fn rendering_is_canonical() {
        let stmt = SelectStmt {
            atoms: vec![
                AtomRef {
                    relation: "R".into(),
                    vars: vec!["x".into(), "y".into()],
                },
                AtomRef {
                    relation: "S".into(),
                    vars: vec!["y".into(), "z".into()],
                },
            ],
            rank: RankSpec::Sum,
            limit: Some(10),
        };
        assert_eq!(
            Command::Select(stmt.clone()).to_string(),
            "SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::Explain(stmt.clone()).to_string(),
            "EXPLAIN SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::ExplainAnalyze(stmt).to_string(),
            "EXPLAIN ANALYZE SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::Next {
                count: 5,
                cursor: 3
            }
            .to_string(),
            "NEXT 5 ON 3;"
        );
        assert_eq!(Command::Close { cursor: 3 }.to_string(), "CLOSE 3;");
        assert_eq!(Command::Stats.to_string(), "STATS;");
        assert_eq!(Command::Trace { last: 4 }.to_string(), "TRACE 4;");
        assert_eq!(Command::TraceSlow.to_string(), "TRACE SLOW;");
    }

    #[test]
    fn write_commands_render_canonically() {
        let insert = InsertStmt {
            relation: "R".into(),
            rows: vec![
                vec![
                    Literal::Int(1),
                    Literal::Int(2),
                    Literal::Float(FloatBits::new(0.5)),
                ],
                vec![
                    Literal::Int(-3),
                    Literal::Int(4),
                    Literal::Float(FloatBits::new(1.0)),
                ],
            ],
        };
        assert_eq!(
            Command::Insert(insert).to_string(),
            "INSERT INTO R VALUES (1,2,0.5),(-3,4,1.0);"
        );
        let load = LoadStmt {
            relation: "Edge".into(),
            csv: "a,b,weight\n1,2,0.5\n".into(),
        };
        assert_eq!(
            Command::Load(load).to_string(),
            "LOAD Edge FROM CSV 'a,b,weight\\n1,2,0.5\\n';"
        );
    }

    #[test]
    fn float_literals_always_carry_a_float_marker() {
        // 1.0 displays as "1" through f64's Display; the canonical
        // rendering must keep it lexing as a float.
        for v in [1.0, 0.5, -2.0, 1e300, 1e-7, 0.0] {
            let text = Literal::Float(FloatBits::new(v)).to_string();
            assert!(
                text.contains(['.', 'e', 'E']),
                "{v} rendered as `{text}` with no float marker"
            );
        }
    }

    #[test]
    fn select_text_lowers_back_to_the_same_query() {
        for q in [path_query(3), triangle_query()] {
            let text = select_text(&q, RankSpec::Max, None);
            let stmt = select_stmt(&q, RankSpec::Max, None);
            assert_eq!(stmt.to_cq(), q, "{text}");
        }
    }
}
