//! The abstract syntax of the textual ranked-CQ language, plus its
//! canonical rendering and the lowering into `anyk_query`'s
//! [`ConjunctiveQuery`].
//!
//! The grammar (case-insensitive keywords, `;` optional):
//!
//! ```text
//! command := select | EXPLAIN select | EXPLAIN ANALYZE select
//!          | NEXT count ON cursor | CLOSE cursor | STATS
//!          | TRACE count | TRACE SLOW
//! select  := SELECT atom (',' atom)* [RANK BY ranking] [LIMIT count]
//! atom    := relation '(' var (',' var)* ')'
//! ranking := sum | max | min | prod | lex
//! ```
//!
//! Every [`Command`] renders back to canonical text via [`Display`](fmt::Display),
//! and `parse(render(cmd)) == cmd` — the round-trip the parser
//! proptests pin.

use anyk_engine::RankSpec;
use anyk_query::cq::{ConjunctiveQuery, QueryBuilder};
use std::fmt;

/// One client command of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Open a ranked query: plan, pull the first page, and (if answers
    /// remain) register a cursor.
    Select(SelectStmt),
    /// Plan only: respond with the rendered [`Plan`](anyk_engine::Plan),
    /// executing nothing.
    Explain(SelectStmt),
    /// Plan **and execute** to the page limit, reporting per-stage
    /// wall times, actual vs routed cardinalities, cache/index
    /// provenance, and shard fan-in — instead of the answers.
    ExplainAnalyze(SelectStmt),
    /// Pull up to `count` more answers from an open cursor.
    Next {
        /// Maximum number of answers to pull.
        count: usize,
        /// The cursor id a previous `SELECT` returned.
        cursor: u64,
    },
    /// Close a cursor, releasing its stream and admission slot.
    Close {
        /// The cursor id to close.
        cursor: u64,
    },
    /// Report service metrics (sessions, cursors, TTF, plan cache).
    Stats,
    /// Report the most recent `last` completed-query traces from the
    /// service's trace ring, newest first.
    Trace {
        /// How many traces to report (capped at the ring's capacity).
        last: usize,
    },
    /// Report the slow-query log (traces whose wall time crossed the
    /// service's threshold), newest first.
    TraceSlow,
}

/// The `SELECT` statement: a full conjunctive query (atoms over named
/// variables), a ranking, and an optional page limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// The query atoms, in canonical (serialization) order.
    pub atoms: Vec<AtomRef>,
    /// The ranking function (`RANK BY ...`; defaults to `sum`).
    pub rank: RankSpec,
    /// Page size for the first page (`LIMIT k`); `None` uses the
    /// service default.
    pub limit: Option<usize>,
}

/// One atom `R(x, y, ...)` of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomRef {
    /// The relation name (resolved against the engine's catalog).
    pub relation: String,
    /// Variable names, one per column.
    pub vars: Vec<String>,
}

impl SelectStmt {
    /// Lower into the engine's query representation. Variables are
    /// declared in first-use order across the atoms, exactly like
    /// [`QueryBuilder`] — so a query rendered by [`select_text`] lowers
    /// back to an equal [`ConjunctiveQuery`].
    pub fn to_cq(&self) -> ConjunctiveQuery {
        let mut b = QueryBuilder::new();
        for atom in &self.atoms {
            let vars: Vec<&str> = atom.vars.iter().map(String::as_str).collect();
            b = b.atom(atom.relation.clone(), &vars);
        }
        b.build()
    }
}

impl fmt::Display for AtomRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.vars.join(","))
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, " RANK BY {}", self.rank)?;
        if let Some(k) = self.limit {
            write!(f, " LIMIT {k}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Command {
    /// Canonical text: what [`parse`](crate::parse) round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Select(s) => write!(f, "{s};"),
            Command::Explain(s) => write!(f, "EXPLAIN {s};"),
            Command::ExplainAnalyze(s) => write!(f, "EXPLAIN ANALYZE {s};"),
            Command::Next { count, cursor } => write!(f, "NEXT {count} ON {cursor};"),
            Command::Close { cursor } => write!(f, "CLOSE {cursor};"),
            Command::Stats => write!(f, "STATS;"),
            Command::Trace { last } => write!(f, "TRACE {last};"),
            Command::TraceSlow => write!(f, "TRACE SLOW;"),
        }
    }
}

/// Render a [`ConjunctiveQuery`] as the `SELECT` statement that lowers
/// back to it: `SELECT R(a,b), S(b,c) RANK BY sum;`. The inverse of
/// [`SelectStmt::to_cq`] for queries whose variables appear in
/// first-use order (everything [`QueryBuilder`] produces).
pub fn select_text(q: &ConjunctiveQuery, rank: RankSpec, limit: Option<usize>) -> String {
    let stmt = select_stmt(q, rank, limit);
    Command::Select(stmt).to_string()
}

/// The [`SelectStmt`] form of a [`ConjunctiveQuery`] (see
/// [`select_text`]).
pub fn select_stmt(q: &ConjunctiveQuery, rank: RankSpec, limit: Option<usize>) -> SelectStmt {
    SelectStmt {
        atoms: q
            .atoms()
            .iter()
            .map(|a| AtomRef {
                relation: a.relation.clone(),
                vars: a.vars.iter().map(|&v| q.var_name(v).to_string()).collect(),
            })
            .collect(),
        rank,
        limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::cq::{path_query, triangle_query};

    #[test]
    fn rendering_is_canonical() {
        let stmt = SelectStmt {
            atoms: vec![
                AtomRef {
                    relation: "R".into(),
                    vars: vec!["x".into(), "y".into()],
                },
                AtomRef {
                    relation: "S".into(),
                    vars: vec!["y".into(), "z".into()],
                },
            ],
            rank: RankSpec::Sum,
            limit: Some(10),
        };
        assert_eq!(
            Command::Select(stmt.clone()).to_string(),
            "SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::Explain(stmt.clone()).to_string(),
            "EXPLAIN SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::ExplainAnalyze(stmt).to_string(),
            "EXPLAIN ANALYZE SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;"
        );
        assert_eq!(
            Command::Next {
                count: 5,
                cursor: 3
            }
            .to_string(),
            "NEXT 5 ON 3;"
        );
        assert_eq!(Command::Close { cursor: 3 }.to_string(), "CLOSE 3;");
        assert_eq!(Command::Stats.to_string(), "STATS;");
        assert_eq!(Command::Trace { last: 4 }.to_string(), "TRACE 4;");
        assert_eq!(Command::TraceSlow.to_string(), "TRACE SLOW;");
    }

    #[test]
    fn select_text_lowers_back_to_the_same_query() {
        for q in [path_query(3), triangle_query()] {
            let text = select_text(&q, RankSpec::Max, None);
            let stmt = select_stmt(&q, RankSpec::Max, None);
            assert_eq!(stmt.to_cq(), q, "{text}");
        }
    }
}
