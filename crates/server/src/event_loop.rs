//! The event-driven transport: one readiness loop, many connections,
//! a small worker pool — `std` + the in-tree [`polling`] shim only.
//!
//! The thread-per-connection transport ([`crate::tcp`]) spends one OS
//! thread per client, parked in `read(2)` almost all the time; at
//! thousands of connections the stacks and scheduler churn become the
//! bottleneck long before the engine does. This module replaces that
//! with the classic readiness architecture:
//!
//! ## Threading model
//!
//! * **One event thread** owns the nonblocking listener, every
//!   nonblocking connection socket, and the [`Poller`]. It does *all*
//!   socket I/O: accepting, reading bytes into each connection's
//!   [`LineFramer`], and flushing each connection's write buffer. It
//!   never parses or executes a command, so a slow query can never
//!   stall another connection's reads.
//! * **A worker pool** (default: one thread per core, clamped) takes
//!   framed command lines off an MPSC channel, executes them against
//!   the connection's [`Session`] (behind a mutex that is never
//!   contended — see ordering below), and pushes the rendered reply
//!   onto a completion queue, waking the event thread via
//!   [`Poller::notify`].
//! * **Ordering**: at most one command per connection is in flight at
//!   a time. Pipelined commands queue in arrival order on the
//!   connection and dispatch one-by-one as replies come back, so
//!   replies are written in exactly the order commands were received —
//!   the same observable behavior as the threaded transport, which is
//!   what keeps the two transports byte-identical.
//!
//! ## Backpressure
//!
//! A connection's read interest is *dropped* while it has a command
//! executing, queued pipelined lines, or unflushed reply bytes, and
//! re-armed only when all three drain; symmetrically, the next queued
//! command only dispatches once the previous reply has fully reached
//! the socket, so at most one rendered reply block is ever buffered
//! per connection. A client that pipelines thousands of commands or
//! stops reading its replies therefore stops being served — its
//! bytes back up into the kernel's TCP windows instead of this
//! process's memory. Combined with the framer's per-line byte bound
//! and the service's admission semaphore, every per-connection buffer
//! is bounded.
//!
//! ## Cursor deadlines
//!
//! Because connection state no longer lives on a per-session thread,
//! nothing here blocks on a silent client: the event thread's wait
//! timeout doubles as a timer tick that calls
//! [`Service::reap_expired_cursors`], sweeping the service-level
//! deadline map so idle cursors release their admission slots without
//! their session ever speaking.

use crate::frame::{encode_frame_error, LineFramer};
use crate::service::{ConnectionSlot, Service};
use crate::wire::{encode_connection_rejected, respond};
use crate::Session;
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// The poller key reserved for the listener socket.
const LISTENER_KEY: usize = 0;
/// First key handed to an accepted connection.
const FIRST_CONN_KEY: usize = 1;
/// The event thread's wait timeout — also the cursor-deadline sweep
/// interval (each timeout tick calls `Service::reap_expired_cursors`).
const TICK: Duration = Duration::from_millis(100);
/// Read chunk size; multiple chunks are drained per readiness event.
const READ_CHUNK: usize = 4096;

/// A framed command headed for the worker pool.
struct Job {
    key: usize,
    line: String,
    session: Arc<Mutex<Session>>,
}

/// Replies travelling back from workers to the event thread.
type Completions = Arc<Mutex<Vec<(usize, String)>>>;

/// Per-connection state, owned by the event thread.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    /// Framed-but-unexecuted lines (or framing errors), arrival order.
    pending: VecDeque<Result<String, crate::frame::FrameError>>,
    /// Reply bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    session: Arc<Mutex<Session>>,
    /// A command is executing on the worker pool; its reply must come
    /// back before anything else runs for this connection.
    inflight: bool,
    /// Peer closed its write half; finish what's queued, then drop.
    eof: bool,
    /// Unrecoverable socket error; drop as soon as seen.
    dead: bool,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
    /// This connection's slot in the service's connection gauge;
    /// dropping the `Conn` releases it.
    _slot: ConnectionSlot,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Idle = nothing queued, nothing executing, nothing to flush.
    fn idle(&self) -> bool {
        !self.inflight && self.pending.is_empty() && self.unsent() == 0
    }
}

/// Everything `Server::bind_with` spawns for the event transport.
pub(crate) struct EventTransport {
    pub poller: Arc<Poller>,
    pub threads: Vec<JoinHandle<()>>,
}

/// Start the event loop plus `workers` pool threads over an already
/// nonblocking `listener`.
pub(crate) fn spawn(
    service: Service,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    workers: usize,
    max_line_len: usize,
) -> std::io::Result<EventTransport> {
    let poller = Arc::new(Poller::new()?);
    poller.add(&listener, Event::readable(LISTENER_KEY))?;

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Completions = Arc::new(Mutex::new(Vec::new()));

    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let rx = Arc::clone(&job_rx);
        let done = Arc::clone(&completions);
        let waker = Arc::clone(&poller);
        threads.push(std::thread::spawn(move || worker_loop(&rx, &done, &waker)));
    }

    let loop_poller = Arc::clone(&poller);
    threads.push(std::thread::spawn(move || {
        event_loop(
            &service,
            &listener,
            &loop_poller,
            &stop,
            &job_tx,
            &completions,
            max_line_len,
        );
    }));
    Ok(EventTransport { poller, threads })
}

/// One pool thread: pull a job, run it against the session, hand the
/// reply back, wake the event thread. Exits when the event thread
/// drops the channel.
fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<Job>>>, done: &Completions, waker: &Arc<Poller>) {
    loop {
        // Hold the receiver lock only for the blocking recv — workers
        // queue on the mutex, which distributes jobs just the same.
        let job = match rx.lock().unwrap_or_else(PoisonError::into_inner).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // The mutex is uncontended by construction: the event thread
        // dispatches at most one job per connection at a time, and
        // only workers lock sessions.
        let reply = {
            let mut session = job.session.lock().unwrap_or_else(PoisonError::into_inner);
            respond(&mut session, &job.line)
        };
        done.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((job.key, reply));
        // A failed wake means the loop is gone; the reply is moot.
        let _ = waker.notify();
    }
}

#[allow(clippy::too_many_lines)]
fn event_loop(
    service: &Service,
    listener: &TcpListener,
    poller: &Arc<Poller>,
    stop: &AtomicBool,
    job_tx: &mpsc::Sender<Job>,
    completions: &Completions,
    max_line_len: usize,
) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = FIRST_CONN_KEY;
    let mut events: Vec<Event> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    // Sweep cadence runs on the service clock (µs), like every other
    // timestamp in the serving stack — no raw `Instant` outside the
    // obs crate (the timing-discipline lint pins this).
    let tick_us = TICK.as_micros().min(u128::from(u64::MAX)) as u64;
    let mut last_sweep_us = service.obs().now_us();

    while !stop.load(Ordering::Acquire) {
        if poller.wait(&mut events, Some(TICK)).is_err() {
            break;
        }
        // The wait timeout doubles as the deadline sweep: silent
        // sessions' expired cursors release their admission slots here
        // even if no admission pressure ever consults the map. Gated
        // to TICK cadence — under load every worker completion wakes
        // the wait early, and the sweep is O(open cursors) under the
        // shared map mutex, so it must not run per wakeup.
        let now_us = service.obs().now_us();
        if now_us.saturating_sub(last_sweep_us) >= tick_us {
            service.reap_expired_cursors();
            last_sweep_us = now_us;
        }

        touched.clear();

        // Replies computed since the last pass: buffer them and let
        // the connection dispatch its next pipelined command.
        for (key, reply) in completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            if let Some(conn) = conns.get_mut(&key) {
                conn.write_buf.extend_from_slice(reply.as_bytes());
                conn.inflight = false;
                touched.push(key);
            }
        }

        for ev in &events {
            if ev.key == LISTENER_KEY {
                accept_ready(
                    listener,
                    poller,
                    &mut conns,
                    &mut next_key,
                    service,
                    max_line_len,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue;
            };
            if ev.readable {
                read_ready(conn);
            }
            if ev.writable {
                flush_writes(conn);
            }
            touched.push(ev.key);
        }

        // Service every connection something happened to: dispatch,
        // flush, retune interest, close.
        touched.sort_unstable();
        touched.dedup();
        for &key in &touched {
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            // Alternate flush and dispatch until neither can progress:
            // a reply must reach the socket (or fill its buffer)
            // before the next pipelined command even starts, so a
            // client that never reads its replies is never served
            // ahead — at most one rendered reply block is ever
            // buffered per connection.
            loop {
                flush_writes(conn);
                if !pump(conn, key, job_tx) {
                    break;
                }
            }
            let finished = conn.dead || (conn.eof && conn.idle());
            if finished {
                let _ = poller.delete(&conn.stream);
                // Dropping the last Arc drops the Session, closing its
                // cursors; a still-running job keeps it alive until
                // the reply lands (and is then discarded above).
                conns.remove(&key);
                continue;
            }
            retune_interest(conn, key, poller);
        }
    }
    // Shutdown: deregister and drop every connection (sessions close
    // their cursors); dropping `job_tx` lets the workers drain out.
    for (_, conn) in conns.drain() {
        let _ = poller.delete(&conn.stream);
    }
    let _ = poller.delete(listener);
}

/// Accept until the listener would block; register each connection
/// read-ready with its own key and session.
fn accept_ready(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    service: &Service,
    max_line_len: usize,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Accept-time load shedding: over the connection bound,
                // send one typed reject and close before any state is
                // allocated. The write is best-effort — a peer that
                // cannot take one line of bytes is dropped regardless.
                let Some(slot) = service.try_admit_connection() else {
                    let reply = encode_connection_rejected(
                        service.open_connections(),
                        service.config().max_connections,
                    );
                    let _ = stream.write_all(reply.as_bytes());
                    continue;
                };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let key = *next_key;
                *next_key += 1;
                if poller.add(&stream, Event::readable(key)).is_err() {
                    continue;
                }
                conns.insert(
                    key,
                    Conn {
                        stream,
                        framer: LineFramer::new(max_line_len),
                        pending: VecDeque::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        session: Arc::new(Mutex::new(service.session())),
                        inflight: false,
                        eof: false,
                        dead: false,
                        interest: (true, false),
                        _slot: slot,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drain the socket into the framer and the framer into the pending
/// queue (blank lines skipped, framing errors queued as such so their
/// replies stay in arrival order).
fn read_ready(conn: &mut Conn) {
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                // A half-close without a trailing newline still
                // serves the final command.
                conn.framer.finish();
                break;
            }
            Ok(n) => conn.framer.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    while let Some(item) = conn.framer.next_line() {
        match item {
            Ok(line) if line.trim().is_empty() => continue,
            other => conn.pending.push_back(other),
        }
    }
}

/// Take one step on the connection's command queue — only when no
/// command is in flight **and every previous reply byte is flushed**
/// (the write half of the backpressure rule: replies may back up in
/// the peer's TCP window, never in this process). Framing errors
/// render inline (no worker round-trip) — they carry no session
/// state — but still strictly in queue order. Returns whether it made
/// progress (the caller alternates pump with flush until it didn't).
fn pump(conn: &mut Conn, key: usize, job_tx: &mpsc::Sender<Job>) -> bool {
    if conn.inflight || conn.unsent() > 0 {
        return false;
    }
    match conn.pending.pop_front() {
        Some(Err(frame_err)) => {
            conn.write_buf
                .extend_from_slice(encode_frame_error(&frame_err).as_bytes());
            true
        }
        Some(Ok(line)) => {
            conn.inflight = true;
            // Send can only fail after shutdown began.
            let _ = job_tx.send(Job {
                key,
                line,
                session: Arc::clone(&conn.session),
            });
            true
        }
        None => false,
    }
}

/// Push buffered reply bytes until the socket would block.
fn flush_writes(conn: &mut Conn) {
    while conn.unsent() > 0 {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.unsent() == 0 {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
}

/// Re-register the poller interest to match the connection's state:
/// read only when fully idle (the backpressure rule), write only while
/// bytes wait.
fn retune_interest(conn: &mut Conn, key: usize, poller: &Arc<Poller>) {
    let want_read = !conn.eof && conn.idle();
    let want_write = conn.unsent() > 0;
    if conn.interest == (want_read, want_write) {
        return;
    }
    let ev = Event {
        key,
        readable: want_read,
        writable: want_write,
    };
    if poller.modify(&conn.stream, ev).is_ok() {
        conn.interest = (want_read, want_write);
    }
}
