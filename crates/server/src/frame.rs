//! Incremental line framing: how both transports turn a TCP byte
//! stream into protocol command lines.
//!
//! A [`LineFramer`] accumulates arbitrary byte chunks
//! ([`feed`](LineFramer::feed)) and yields complete lines
//! ([`next_line`](LineFramer::next_line)) — one line per `\n`, with a
//! trailing `\r` stripped so `nc -C`/telnet-style clients work.
//! Chunk boundaries are invisible: a command split across ten TCP
//! segments and ten commands pipelined into one segment frame
//! identically (property-tested against batch `\n`-splitting).
//!
//! The framer is also the protocol's first line of defense: a line
//! longer than the configured bound yields a typed
//! [`FrameError::Oversized`] instead of buffering without limit, and
//! the framer then *discards* bytes until the next `\n` so the
//! connection can keep serving subsequent commands. Both transports
//! render that error with [`encode_frame_error`] — one more place the
//! byte-identity contract is kept by construction.

use std::collections::VecDeque;

/// A transport-level framing failure (before parsing ever runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A command line exceeded the transport's configured byte bound;
    /// the rest of the line (up to the next `\n`) was discarded.
    Oversized {
        /// The configured maximum line length, in bytes.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "line exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Render a framing error as a wire block: `ERR proto: <msg>` + `END`.
/// Shared by both transports, like [`respond`](crate::wire::respond)
/// is for parsed commands.
pub fn encode_frame_error(err: &FrameError) -> String {
    format!("ERR proto: {err}\nEND\n")
}

/// The incremental framer: feed bytes in, pull lines out. One per
/// connection; a few hundred bytes of state until a line grows.
///
/// ```
/// use anyk_serve::frame::LineFramer;
///
/// let mut framer = LineFramer::new(1024);
/// framer.feed(b"STATS;\nNEXT 5");     // one whole line + a partial
/// assert_eq!(framer.next_line(), Some(Ok("STATS;".to_string())));
/// assert_eq!(framer.next_line(), None); // the partial waits
/// framer.feed(b" ON 0;\r\n");           // completed (CRLF works too)
/// assert_eq!(framer.next_line(), Some(Ok("NEXT 5 ON 0;".to_string())));
/// ```
#[derive(Debug)]
pub struct LineFramer {
    max_line_len: usize,
    /// Bytes of the current (incomplete) line.
    partial: Vec<u8>,
    /// Completed lines (or framing errors) not yet pulled.
    ready: VecDeque<Result<String, FrameError>>,
    /// Inside an oversized line: drop bytes until the next `\n`.
    discarding: bool,
}

impl LineFramer {
    /// A framer enforcing `max_line_len` bytes per line (the newline
    /// itself is not counted).
    pub fn new(max_line_len: usize) -> LineFramer {
        LineFramer {
            max_line_len,
            partial: Vec::new(),
            ready: VecDeque::new(),
            discarding: false,
        }
    }

    /// Append a chunk of raw bytes (a TCP segment, a read() return —
    /// any split). Completed lines become pullable via
    /// [`next_line`](LineFramer::next_line).
    pub fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if self.discarding {
                if b == b'\n' {
                    self.discarding = false;
                }
                continue;
            }
            if b == b'\n' {
                let mut line = std::mem::take(&mut self.partial);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.ready
                    .push_back(Ok(String::from_utf8_lossy(&line).into_owned()));
                continue;
            }
            if self.partial.len() >= self.max_line_len {
                // The line just outgrew the bound: emit one typed
                // error, forget the prefix, skip to the next newline.
                self.partial.clear();
                self.discarding = true;
                self.ready.push_back(Err(FrameError::Oversized {
                    limit: self.max_line_len,
                }));
                continue;
            }
            self.partial.push(b);
        }
    }

    /// Pull the next completed line (`\n`-terminated input with the
    /// terminator and any trailing `\r` stripped), or the framing
    /// error that replaced it. `None` means: feed more bytes.
    pub fn next_line(&mut self) -> Option<Result<String, FrameError>> {
        self.ready.pop_front()
    }

    /// End-of-stream: the peer closed without a final `\n`. A pending
    /// partial line becomes a complete line (matching what a blocking
    /// line reader would have yielded at EOF); an oversized line
    /// already reported its error when it crossed the bound, so its
    /// swallowed tail is simply dropped.
    pub fn finish(&mut self) {
        self.discarding = false;
        if !self.partial.is_empty() {
            let line = std::mem::take(&mut self.partial);
            self.ready
                .push_back(Ok(String::from_utf8_lossy(&line).into_owned()));
        }
    }

    /// Bytes buffered for the current incomplete line.
    pub fn buffered(&self) -> usize {
        self.partial.len()
    }

    /// True when a partial line (or an oversized discard) is pending —
    /// i.e. the peer stopped mid-command.
    pub fn mid_line(&self) -> bool {
        !self.partial.is_empty() || self.discarding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drain everything currently pullable.
    fn drain(f: &mut LineFramer) -> Vec<Result<String, FrameError>> {
        std::iter::from_fn(|| f.next_line()).collect()
    }

    #[test]
    fn partial_line_across_many_chunks() {
        let mut f = LineFramer::new(64);
        for chunk in [b"SEL" as &[u8], b"ECT R(", b"a,b)", b";"] {
            f.feed(chunk);
            assert_eq!(f.next_line(), None, "no line until the newline");
            assert!(f.mid_line());
        }
        f.feed(b"\n");
        assert_eq!(f.next_line(), Some(Ok("SELECT R(a,b);".to_string())));
        assert!(!f.mid_line());
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn pipelined_commands_in_one_chunk() {
        let mut f = LineFramer::new(64);
        f.feed(b"STATS;\nNEXT 1 ON 0;\r\nCLOSE 0;\n");
        assert_eq!(
            drain(&mut f),
            vec![
                Ok("STATS;".to_string()),
                Ok("NEXT 1 ON 0;".to_string()),
                Ok("CLOSE 0;".to_string()),
            ]
        );
    }

    #[test]
    fn oversized_line_yields_typed_error_and_resyncs() {
        let mut f = LineFramer::new(8);
        f.feed(b"0123456789abcdef"); // already over the bound, no newline yet
        assert_eq!(f.next_line(), Some(Err(FrameError::Oversized { limit: 8 })));
        assert_eq!(f.next_line(), None);
        // Still discarding: more oversized bytes produce no second error.
        f.feed(b"garbage-continues");
        assert_eq!(f.next_line(), None);
        // The newline resyncs; the next command frames cleanly.
        f.feed(b"\nSTATS;\n");
        assert_eq!(drain(&mut f), vec![Ok("STATS;".to_string())]);
    }

    #[test]
    fn finish_yields_the_unterminated_tail_as_a_line() {
        // `printf 'STATS;' | nc` half-closes without a newline: the
        // command must still be served, like a blocking line reader
        // would at EOF.
        let mut f = LineFramer::new(64);
        f.feed(b"SELECT R(a,b);\nSTATS;");
        assert_eq!(f.next_line(), Some(Ok("SELECT R(a,b);".to_string())));
        assert_eq!(f.next_line(), None);
        f.finish();
        assert_eq!(f.next_line(), Some(Ok("STATS;".to_string())));
        assert!(!f.mid_line());
        // An oversized tail already reported its error; finish drops
        // the swallowed remainder without a second error.
        let mut f = LineFramer::new(4);
        f.feed(b"0123456789");
        assert_eq!(f.next_line(), Some(Err(FrameError::Oversized { limit: 4 })));
        f.finish();
        assert_eq!(f.next_line(), None);
        assert!(!f.mid_line());
    }

    #[test]
    fn exactly_max_len_is_allowed() {
        let mut f = LineFramer::new(6);
        f.feed(b"STATS;\n");
        assert_eq!(f.next_line(), Some(Ok("STATS;".to_string())));
    }

    #[test]
    fn frame_error_renders_as_a_proto_err_block() {
        let err = FrameError::Oversized { limit: 4096 };
        assert_eq!(
            encode_frame_error(&err),
            "ERR proto: line exceeds 4096 bytes\nEND\n"
        );
    }

    /// Line alphabet for the round-trip property (anything but the
    /// frame terminators `\n`/`\r`).
    const CHARSET: &[u8] = b"abcdefXYZ0189 ,();=RANKSELCT";

    proptest! {
        /// The incremental framer must agree with batch splitting for
        /// every chunking of every in-bounds input: feed the rendered
        /// stream in random pieces, get exactly `split('\n')` back.
        #[test]
        fn incremental_framing_matches_batch_split(
            specs in proptest::collection::vec(
                proptest::collection::vec(0usize..CHARSET.len(), 0..40), 0..12),
            cuts in proptest::collection::vec(0usize..64, 0..12),
        ) {
            let lines: Vec<String> = specs
                .iter()
                .map(|idx| idx.iter().map(|&i| CHARSET[i] as char).collect())
                .collect();
            let mut stream = Vec::new();
            for l in &lines {
                stream.extend_from_slice(l.as_bytes());
                stream.push(b'\n');
            }
            // Random chunk boundaries over the byte stream.
            let mut f = LineFramer::new(64);
            let mut fed = 0usize;
            let mut got = Vec::new();
            for &cut in &cuts {
                let end = (fed + cut).min(stream.len());
                f.feed(&stream[fed..end]);
                fed = end;
                while let Some(item) = f.next_line() {
                    got.push(item.expect("in-bounds lines never error"));
                }
            }
            f.feed(&stream[fed..]);
            while let Some(item) = f.next_line() {
                got.push(item.expect("in-bounds lines never error"));
            }
            prop_assert_eq!(got, lines);
            prop_assert!(!f.mid_line(), "every line was newline-terminated");
        }
    }
}
