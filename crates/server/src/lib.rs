//! # anyk-serve — a session-based ranked-query service
//!
//! The paper's any-k contract — answers in rank order, tiny
//! time-to-first-answer, any `k` — pays off in a *serving* context:
//! many clients pulling small pages of many queries concurrently.
//! This crate is the front door that turns the `anyk-engine` library
//! into that system, in three layers, `std`-only:
//!
//! 1. **Frontend** ([`ast`] + [`parser`]): a textual ranked-CQ
//!    language — `SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;` plus
//!    the write path (`INSERT INTO R VALUES (…),(…);` and
//!    `LOAD R FROM CSV '…';`, appended as delta batches with
//!    relation-scoped plan invalidation),
//!    `NEXT <k> ON <cursor>`, `CLOSE <cursor>`, `EXPLAIN`,
//!    `EXPLAIN ANALYZE` (execute and report per-stage wall times),
//!    `TRACE <n>` / `TRACE SLOW` (the trace ring and slow-query log),
//!    and `STATS` — that lowers to [`anyk_query::cq::ConjunctiveQuery`] +
//!    [`anyk_engine::RankSpec`], with typed [`ParseError`]s and a
//!    printable AST (canonical text round-trips).
//! 2. **Session layer** ([`service`]): a [`Service`] wrapping a shared
//!    [`Engine`](anyk_engine::Engine); each client gets a [`Session`]
//!    holding its registry of live cursors ([`RankedStream`](anyk_engine::RankedStream)s
//!    over the engine's cached prepared state), with paginated `NEXT`
//!    pulls, a **service-level shared deadline map** (expired cursors
//!    release their admission slots even while the owning session is
//!    silent), an admission-control semaphore bounding concurrent
//!    open streams, and per-query metrics — TTF and per-page latency
//!    with p50/p95/p99 histograms, plan-cache hits/misses — surfaced
//!    through `STATS`.
//! 3. **Transport** ([`wire`] + [`frame`] + [`tcp`] + [`event_loop`]):
//!    a line-oriented protocol — every reply is an `OK`/`ERR` header,
//!    `ROW`/`INFO` lines, and an `END` terminator — served over
//!    `std::net` on either of two accept architectures behind one
//!    [`Server`]: the default **readiness event loop** (nonblocking
//!    sockets on the in-tree `polling` shim — raw-syscall epoll with
//!    a portable `poll(2)` fallback — plus a worker pool, so slow
//!    queries never block another connection's I/O) or the classic
//!    **thread-per-connection** loop. Both TCP transports share one
//!    incremental [`LineFramer`], and all three clients — the two
//!    TCP paths and the in-process [`LocalClient`] (which takes whole
//!    command strings, no framing) — share one encoder, so reply
//!    bytes are identical by construction.
//!
//! The full layer map — including the event loop's threading model,
//! backpressure rules, and the deadline-map design — is documented in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Quickstart
//!
//! ```
//! use anyk_engine::Engine;
//! use anyk_serve::{LocalClient, Service};
//! use anyk_storage::{Catalog, RelationBuilder, Schema};
//!
//! // A catalog with two weighted edge relations.
//! let mut catalog = Catalog::new();
//! let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
//! r.push_ints(&[1, 10], 0.3);
//! r.push_ints(&[2, 10], 0.1);
//! catalog.register("R", r.finish());
//! let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
//! s.push_ints(&[10, 100], 0.5);
//! s.push_ints(&[10, 200], 0.05);
//! catalog.register("S", s.finish());
//!
//! let service = Service::new(Engine::new(catalog));
//! let mut client = LocalClient::new(&service);
//!
//! // Open a ranked query; the first page arrives with a cursor.
//! let page = client.send("SELECT R(a,b), S(b,c) RANK BY sum LIMIT 2;");
//! assert!(page.starts_with("OK cursor=0 rows=2 done=false"));
//! assert!(page.contains("ROW 2,10,200 cost=0.15")); // cheapest first
//!
//! // Pull the rest, then the cursor closes itself.
//! let rest = client.send("NEXT 10 ON 0;");
//! assert!(rest.starts_with("OK cursor=- rows=2 done=true"));
//!
//! // Metrics, including the engine's plan-cache counters.
//! let stats = client.send("STATS;");
//! assert!(stats.contains("INFO answers_served=4"));
//! # let _ = stats;
//! ```
//!
//! For the wire transport, [`Server::bind`] starts the accept loop and
//! [`TcpClient`] (or any line-oriented client — `nc` works) speaks to
//! it; the bytes are identical to [`LocalClient`]'s by construction.

pub mod ast;
pub mod event_loop;
pub mod frame;
pub mod parser;
pub mod service;
pub mod tcp;
pub mod wire;

pub use ast::{
    select_stmt, select_text, AtomRef, Command, InsertStmt, Literal, LoadStmt, SelectStmt,
};
pub use frame::{encode_frame_error, FrameError, LineFramer};
pub use parser::{parse, ParseError};
pub use service::{
    AnalyzeReport, Page, Response, RouteRankStats, ServeError, Service, ServiceConfig,
    ServiceStats, Session,
};
pub use tcp::{BindError, Server, TcpClient, Transport, TransportConfig};
pub use wire::{encode_answer, encode_connection_rejected, encode_response, respond, LocalClient};

/// A tiny single-relation engine for the crate's unit tests.
#[cfg(test)]
pub(crate) fn tests_engine() -> anyk_engine::Engine {
    use anyk_storage::{Catalog, RelationBuilder, Schema};
    let mut catalog = Catalog::new();
    let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
    for i in 0..8i64 {
        r.push_ints(&[i, i + 10], 0.1 * (i as f64 + 1.0));
    }
    catalog.register("R", r.finish());
    anyk_engine::Engine::new(catalog)
}
