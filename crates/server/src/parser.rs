//! A hand-rolled recursive-descent parser for the ranked-CQ language.
//!
//! Lexing and parsing are one pass over the input with byte positions
//! carried into every [`ParseError`], so a malformed command reports
//! *where* and *what was expected* — typed, never a panic.

use crate::ast::{escape_str, AtomRef, Command, InsertStmt, Literal, LoadStmt, SelectStmt};
use anyk_engine::RankSpec;
use anyk_storage::FloatBits;
use std::fmt;

/// Why a command failed to parse. Every variant carries the byte
/// offset of the offending token, so clients can point at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A character outside the language's alphabet.
    UnexpectedChar {
        /// Byte offset in the input.
        pos: usize,
        /// The offending character.
        ch: char,
    },
    /// A well-formed token in the wrong place.
    UnexpectedToken {
        /// Byte offset of the token.
        pos: usize,
        /// What the grammar needed here.
        expected: &'static str,
        /// What was found instead (rendered token).
        found: String,
    },
    /// The input ended mid-command.
    UnexpectedEnd {
        /// What the grammar needed next.
        expected: &'static str,
    },
    /// `RANK BY <name>` with a name that is not a ranking function.
    UnknownRanking {
        /// Byte offset of the name.
        pos: usize,
        /// The unrecognized name.
        name: String,
    },
    /// A count (`LIMIT k`, `NEXT k`) of zero — a page of nothing.
    ZeroCount {
        /// Byte offset of the literal.
        pos: usize,
        /// Which clause carried it.
        clause: &'static str,
    },
    /// A numeric literal too large for its slot.
    NumberOverflow {
        /// Byte offset of the literal.
        pos: usize,
    },
    /// Extra tokens after a complete command.
    TrailingInput {
        /// Byte offset of the first extra token.
        pos: usize,
        /// The first extra token (rendered).
        found: String,
    },
    /// A single-quoted string literal with no closing quote.
    UnterminatedString {
        /// Byte offset of the opening quote.
        pos: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            ParseError::UnexpectedToken {
                pos,
                expected,
                found,
            } => write!(f, "expected {expected} at byte {pos}, found `{found}`"),
            ParseError::UnexpectedEnd { expected } => {
                write!(f, "input ended while expecting {expected}")
            }
            ParseError::UnknownRanking { pos, name } => write!(
                f,
                "unknown ranking `{name}` at byte {pos} (try sum, max, min, prod, lex)"
            ),
            ParseError::ZeroCount { pos, clause } => {
                write!(f, "{clause} must be at least 1 (byte {pos})")
            }
            ParseError::NumberOverflow { pos } => {
                write!(f, "numeric literal at byte {pos} is too large")
            }
            ParseError::TrailingInput { pos, found } => {
                write!(f, "trailing input `{found}` at byte {pos}")
            }
            ParseError::UnterminatedString { pos } => {
                write!(f, "string literal starting at byte {pos} is unterminated")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// The language's keywords — reserved, case-insensitive: they cannot
/// name relations or variables (reserving them keeps rendering and
/// re-parsing unambiguous).
pub const KEYWORDS: [&str; 18] = [
    "SELECT", "RANK", "BY", "LIMIT", "NEXT", "ON", "CLOSE", "EXPLAIN", "STATS", "ANALYZE", "TRACE",
    "SLOW", "INSERT", "INTO", "VALUES", "LOAD", "FROM", "CSV",
];

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Word(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Non-negative float literal (a `.` or exponent in the lexeme;
    /// signs are a separate [`Tok::Minus`]).
    Float(FloatBits),
    /// Single-quoted string literal (unescaped content).
    Str(String),
    Minus,
    LParen,
    RParen,
    Comma,
    Semi,
}

impl Tok {
    fn render(&self) -> String {
        match self {
            Tok::Word(w) => w.clone(),
            Tok::Int(n) => n.to_string(),
            Tok::Float(b) => b.get().to_string(),
            Tok::Str(s) => format!("'{}'", escape_str(s)),
            Tok::Minus => "-".into(),
            Tok::LParen => "(".into(),
            Tok::RParen => ")".into(),
            Tok::Comma => ",".into(),
            Tok::Semi => ";".into(),
        }
    }

    /// Keyword check, case-insensitive (`kw` is uppercase).
    fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn is_any_keyword(&self) -> bool {
        KEYWORDS.iter().any(|k| self.is_kw(k))
    }
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(pos, ch)) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push((pos, Tok::LParen));
            }
            ')' => {
                chars.next();
                out.push((pos, Tok::RParen));
            }
            ',' => {
                chars.next();
                out.push((pos, Tok::Comma));
            }
            ';' => {
                chars.next();
                out.push((pos, Tok::Semi));
            }
            '-' => {
                chars.next();
                out.push((pos, Tok::Minus));
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err(ParseError::UnterminatedString { pos }),
                        Some((_, '\'')) => break,
                        Some((esc_pos, '\\')) => match chars.next() {
                            None => return Err(ParseError::UnterminatedString { pos }),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, '\'')) => s.push('\''),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 'r')) => s.push('\r'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, other)) => {
                                return Err(ParseError::UnexpectedChar {
                                    pos: esc_pos,
                                    ch: other,
                                })
                            }
                        },
                        Some((_, c)) => s.push(c),
                    }
                }
                out.push((pos, Tok::Str(s)));
            }
            c if c.is_ascii_digit() => {
                let mut lexeme = String::new();
                let mut is_float = false;
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        lexeme.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // A fraction only if `.` is followed by a digit (so
                // `R(x).` still reports the stray dot, not a number).
                if matches!(chars.peek(), Some(&(_, '.'))) {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if matches!(ahead.peek(), Some(&(_, d)) if d.is_ascii_digit()) {
                        is_float = true;
                        lexeme.push('.');
                        chars.next();
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_ascii_digit() {
                                lexeme.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                    }
                }
                // An exponent only if `e`/`E` is followed by digits
                // (optionally signed) — identifiers like `3x` never
                // lex, but `SELECT e(x,y)` must keep `e` a word.
                if matches!(chars.peek(), Some(&(_, 'e' | 'E'))) {
                    let mut ahead = chars.clone();
                    ahead.next();
                    let signed = matches!(ahead.peek(), Some(&(_, '+' | '-')));
                    if signed {
                        ahead.next();
                    }
                    if matches!(ahead.peek(), Some(&(_, d)) if d.is_ascii_digit()) {
                        is_float = true;
                        let (_, e) = chars.next().unwrap_or((pos, 'e'));
                        lexeme.push(e);
                        if signed {
                            if let Some((_, sign)) = chars.next() {
                                lexeme.push(sign);
                            }
                        }
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_ascii_digit() {
                                lexeme.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                    }
                }
                if is_float {
                    let v: f64 = lexeme
                        .parse()
                        .map_err(|_| ParseError::NumberOverflow { pos })?;
                    if !v.is_finite() {
                        return Err(ParseError::NumberOverflow { pos });
                    }
                    out.push((pos, Tok::Float(FloatBits::new(v))));
                } else {
                    let n: u64 = lexeme
                        .parse()
                        .map_err(|_| ParseError::NumberOverflow { pos })?;
                    out.push((pos, Tok::Int(n)));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut w = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        w.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((pos, Tok::Word(w)));
            }
            _ => return Err(ParseError::UnexpectedChar { pos, ch }),
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.at)
    }

    fn next(&mut self, expected: &'static str) -> Result<(usize, Tok), ParseError> {
        let t = self
            .toks
            .get(self.at)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd { expected })?;
        self.at += 1;
        Ok(t)
    }

    fn expect_tok(&mut self, want: &Tok, expected: &'static str) -> Result<(), ParseError> {
        let (pos, t) = self.next(expected)?;
        if &t == want {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken {
                pos,
                expected,
                found: t.render(),
            })
        }
    }

    fn keyword(&mut self, kw: &'static str) -> Result<(), ParseError> {
        let (pos, t) = self.next(kw)?;
        if t.is_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken {
                pos,
                expected: kw,
                found: t.render(),
            })
        }
    }

    /// An identifier that is not a reserved keyword.
    fn ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        let (pos, t) = self.next(expected)?;
        match t {
            Tok::Word(w) if !Tok::Word(w.clone()).is_any_keyword() => Ok(w),
            other => Err(ParseError::UnexpectedToken {
                pos,
                expected,
                found: other.render(),
            }),
        }
    }

    fn count(&mut self, clause: &'static str) -> Result<usize, ParseError> {
        let (pos, t) = self.next(clause)?;
        match t {
            Tok::Int(0) => Err(ParseError::ZeroCount { pos, clause }),
            Tok::Int(n) => usize::try_from(n).map_err(|_| ParseError::NumberOverflow { pos }),
            other => Err(ParseError::UnexpectedToken {
                pos,
                expected: clause,
                found: other.render(),
            }),
        }
    }

    fn cursor_id(&mut self) -> Result<u64, ParseError> {
        let (pos, t) = self.next("cursor id")?;
        match t {
            Tok::Int(n) => Ok(n),
            other => Err(ParseError::UnexpectedToken {
                pos,
                expected: "cursor id",
                found: other.render(),
            }),
        }
    }

    /// Optional trailing `;`, then end-of-input.
    fn finish(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Some((_, Tok::Semi))) {
            self.at += 1;
        }
        match self.peek() {
            None => Ok(()),
            Some((pos, t)) => Err(ParseError::TrailingInput {
                pos: *pos,
                found: t.render(),
            }),
        }
    }

    fn atom(&mut self) -> Result<AtomRef, ParseError> {
        let relation = self.ident("relation name")?;
        self.expect_tok(&Tok::LParen, "`(`")?;
        let mut vars = vec![self.ident("variable name")?];
        loop {
            let (pos, t) = self.next("`,` or `)`")?;
            match t {
                Tok::Comma => vars.push(self.ident("variable name")?),
                Tok::RParen => break,
                other => {
                    return Err(ParseError::UnexpectedToken {
                        pos,
                        expected: "`,` or `)`",
                        found: other.render(),
                    })
                }
            }
        }
        Ok(AtomRef { relation, vars })
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.keyword("SELECT")?;
        let mut atoms = vec![self.atom()?];
        while matches!(self.peek(), Some((_, Tok::Comma))) {
            self.at += 1;
            atoms.push(self.atom()?);
        }
        let mut rank = RankSpec::default();
        if matches!(self.peek(), Some((_, t)) if t.is_kw("RANK")) {
            self.at += 1;
            self.keyword("BY")?;
            let (pos, t) = self.next("ranking name")?;
            let name = match t {
                Tok::Word(w) => w,
                other => {
                    return Err(ParseError::UnexpectedToken {
                        pos,
                        expected: "ranking name",
                        found: other.render(),
                    })
                }
            };
            rank = RankSpec::parse(&name).ok_or(ParseError::UnknownRanking { pos, name })?;
        }
        let mut limit = None;
        if matches!(self.peek(), Some((_, t)) if t.is_kw("LIMIT")) {
            self.at += 1;
            limit = Some(self.count("LIMIT")?);
        }
        Ok(SelectStmt { atoms, rank, limit })
    }

    /// A signed numeric literal: `['-'] (int | float)`.
    fn literal(&mut self) -> Result<Literal, ParseError> {
        let neg = if matches!(self.peek(), Some((_, Tok::Minus))) {
            self.at += 1;
            true
        } else {
            false
        };
        let (pos, t) = self.next("numeric literal")?;
        match t {
            Tok::Int(n) => {
                let v = i128::from(n);
                let v = if neg { -v } else { v };
                i64::try_from(v)
                    .map(Literal::Int)
                    .map_err(|_| ParseError::NumberOverflow { pos })
            }
            Tok::Float(b) => {
                let v = if neg { -b.get() } else { b.get() };
                Ok(Literal::Float(FloatBits::new(v)))
            }
            other => Err(ParseError::UnexpectedToken {
                pos,
                expected: "numeric literal",
                found: other.render(),
            }),
        }
    }

    /// One `(lit, lit, ...)` row of an `INSERT`.
    fn row(&mut self) -> Result<Vec<Literal>, ParseError> {
        self.expect_tok(&Tok::LParen, "`(`")?;
        let mut cells = vec![self.literal()?];
        loop {
            let (pos, t) = self.next("`,` or `)`")?;
            match t {
                Tok::Comma => cells.push(self.literal()?),
                Tok::RParen => break,
                other => {
                    return Err(ParseError::UnexpectedToken {
                        pos,
                        expected: "`,` or `)`",
                        found: other.render(),
                    })
                }
            }
        }
        Ok(cells)
    }

    fn insert(&mut self) -> Result<InsertStmt, ParseError> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let relation = self.ident("relation name")?;
        self.keyword("VALUES")?;
        let mut rows = vec![self.row()?];
        while matches!(self.peek(), Some((_, Tok::Comma))) {
            self.at += 1;
            rows.push(self.row()?);
        }
        Ok(InsertStmt { relation, rows })
    }

    fn load(&mut self) -> Result<LoadStmt, ParseError> {
        self.keyword("LOAD")?;
        let relation = self.ident("relation name")?;
        self.keyword("FROM")?;
        self.keyword("CSV")?;
        let (pos, t) = self.next("CSV string literal")?;
        match t {
            Tok::Str(csv) => Ok(LoadStmt { relation, csv }),
            other => Err(ParseError::UnexpectedToken {
                pos,
                expected: "CSV string literal",
                found: other.render(),
            }),
        }
    }
}

/// Parse one command of the protocol. Typed errors, no panics; the
/// trailing `;` is optional.
pub fn parse(input: &str) -> Result<Command, ParseError> {
    let mut p = Parser {
        toks: lex(input)?,
        at: 0,
    };
    let (pos, head) = p.peek().cloned().ok_or(ParseError::UnexpectedEnd {
        expected: "a command",
    })?;
    let cmd = if head.is_kw("SELECT") {
        Command::Select(p.select()?)
    } else if head.is_kw("EXPLAIN") {
        p.at += 1;
        if matches!(p.peek(), Some((_, t)) if t.is_kw("ANALYZE")) {
            p.at += 1;
            Command::ExplainAnalyze(p.select()?)
        } else {
            Command::Explain(p.select()?)
        }
    } else if head.is_kw("INSERT") {
        Command::Insert(p.insert()?)
    } else if head.is_kw("LOAD") {
        Command::Load(p.load()?)
    } else if head.is_kw("NEXT") {
        p.at += 1;
        let count = p.count("NEXT")?;
        p.keyword("ON")?;
        let cursor = p.cursor_id()?;
        Command::Next { count, cursor }
    } else if head.is_kw("CLOSE") {
        p.at += 1;
        let cursor = p.cursor_id()?;
        Command::Close { cursor }
    } else if head.is_kw("STATS") {
        p.at += 1;
        Command::Stats
    } else if head.is_kw("TRACE") {
        p.at += 1;
        if matches!(p.peek(), Some((_, t)) if t.is_kw("SLOW")) {
            p.at += 1;
            Command::TraceSlow
        } else {
            Command::Trace {
                last: p.count("TRACE")?,
            }
        }
    } else {
        return Err(ParseError::UnexpectedToken {
            pos,
            expected: "SELECT, INSERT, LOAD, EXPLAIN, NEXT, CLOSE, STATS, or TRACE",
            found: head.render(),
        });
    };
    p.finish()?;
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::select_stmt;
    use anyk_query::cq::{cycle_query, path_query, star_query, triangle_query, QueryBuilder};
    use proptest::prelude::*;

    fn sel(input: &str) -> SelectStmt {
        match parse(input).expect("parses") {
            Command::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn select_with_all_clauses() {
        let s = sel("SELECT R(x,y), S(y,z) RANK BY max LIMIT 10;");
        assert_eq!(s.atoms.len(), 2);
        assert_eq!(s.atoms[1].relation, "S");
        assert_eq!(s.atoms[1].vars, vec!["y".to_string(), "z".to_string()]);
        assert_eq!(s.rank, RankSpec::Max);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn defaults_and_case_insensitivity() {
        let s = sel("select R(a,b)");
        assert_eq!(s.rank, RankSpec::Sum);
        assert_eq!(s.limit, None);
        let s = sel("SeLeCt R(a,b) rank by PROD limit 3");
        assert_eq!(s.rank, RankSpec::Prod);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn cursor_commands() {
        assert_eq!(
            parse("NEXT 5 ON 12;"),
            Ok(Command::Next {
                count: 5,
                cursor: 12
            })
        );
        assert_eq!(parse("close 0"), Ok(Command::Close { cursor: 0 }));
        assert_eq!(parse("STATS"), Ok(Command::Stats));
        assert!(matches!(
            parse("EXPLAIN SELECT R(x,y)"),
            Ok(Command::Explain(_))
        ));
    }

    #[test]
    fn observability_commands() {
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT R(x,y) RANK BY max LIMIT 5;"),
            Ok(Command::ExplainAnalyze(_))
        ));
        // ANALYZE binds to the EXPLAIN head, never to a bare SELECT.
        assert!(parse("ANALYZE SELECT R(x,y)").is_err());
        assert_eq!(parse("TRACE 8;"), Ok(Command::Trace { last: 8 }));
        assert_eq!(parse("trace slow"), Ok(Command::TraceSlow));
        assert_eq!(
            parse("TRACE 0"),
            Err(ParseError::ZeroCount {
                pos: 6,
                clause: "TRACE"
            })
        );
        // Keywords stay reserved: TRACE cannot name a relation.
        assert!(parse("SELECT trace(x,y)").is_err());
    }

    #[test]
    fn typed_errors_point_at_the_problem() {
        assert_eq!(
            parse("SELECT R(x,y) RANK BY median"),
            Err(ParseError::UnknownRanking {
                pos: 22,
                name: "median".into()
            })
        );
        assert_eq!(
            parse("NEXT 0 ON 1"),
            Err(ParseError::ZeroCount {
                pos: 5,
                clause: "NEXT"
            })
        );
        assert_eq!(
            parse("SELECT R(x,y) LIMIT 0"),
            Err(ParseError::ZeroCount {
                pos: 20,
                clause: "LIMIT"
            })
        );
        assert!(matches!(
            parse("SELECT R(x,"),
            Err(ParseError::UnexpectedEnd { .. })
        ));
        assert!(matches!(
            parse("SELECT R(x,y) garbage"),
            Err(ParseError::UnexpectedToken { .. }) | Err(ParseError::TrailingInput { .. })
        ));
        assert!(matches!(
            parse("DROP TABLE users"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("SELECT R(x¶y)"),
            Err(ParseError::UnexpectedChar { .. })
        ));
        assert!(matches!(
            parse("NEXT 99999999999999999999 ON 1"),
            Err(ParseError::NumberOverflow { .. })
        ));
        // Keywords are reserved: they cannot name relations/variables.
        assert!(matches!(
            parse("SELECT limit(x,y)"),
            Err(ParseError::UnexpectedToken { .. })
        ));
    }

    #[test]
    fn insert_parses_values_and_signs() {
        let cmd = parse("INSERT INTO R VALUES (1,2,0.5),(-3,4,1.0);").expect("parses");
        let Command::Insert(s) = cmd else {
            panic!("expected INSERT")
        };
        assert_eq!(s.relation, "R");
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0][0], Literal::Int(1));
        assert_eq!(s.rows[0][2], Literal::Float(FloatBits::new(0.5)));
        assert_eq!(s.rows[1][0], Literal::Int(-3));
        assert_eq!(s.rows[1][2], Literal::Float(FloatBits::new(1.0)));
        // Case-insensitive keywords, optional semicolon, exponents.
        let cmd = parse("insert into Edge values (7, 8, 1e-3)").expect("parses");
        let Command::Insert(s) = cmd else {
            panic!("expected INSERT")
        };
        assert_eq!(s.rows[0][2], Literal::Float(FloatBits::new(1e-3)));
    }

    #[test]
    fn load_parses_the_escaped_csv_block() {
        let cmd = parse("LOAD R FROM CSV 'a,b,weight\\n1,2,0.5\\n';").expect("parses");
        let Command::Load(s) = cmd else {
            panic!("expected LOAD")
        };
        assert_eq!(s.relation, "R");
        assert_eq!(s.csv, "a,b,weight\n1,2,0.5\n");
        // All the escapes unescape.
        let cmd = parse("LOAD R FROM CSV '\\\\ \\' \\n \\r \\t'").expect("parses");
        let Command::Load(s) = cmd else {
            panic!("expected LOAD")
        };
        assert_eq!(s.csv, "\\ ' \n \r \t");
    }

    #[test]
    fn write_command_typed_errors() {
        assert_eq!(
            parse("LOAD R FROM CSV 'a,b"),
            Err(ParseError::UnterminatedString { pos: 16 })
        );
        // Unknown escape points at the backslash.
        assert!(matches!(
            parse("LOAD R FROM CSV 'bad \\q escape'"),
            Err(ParseError::UnexpectedChar { ch: 'q', .. })
        ));
        // Keywords stay reserved on the write path too.
        assert!(matches!(
            parse("INSERT INTO values VALUES (1,2,0.5)"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        // A string where a literal belongs is a typed error.
        assert!(matches!(
            parse("INSERT INTO R VALUES (1,'x',0.5)"),
            Err(ParseError::UnexpectedToken {
                expected: "numeric literal",
                ..
            })
        ));
        // i64 overflow on a negated literal.
        assert!(matches!(
            parse("INSERT INTO R VALUES (9223372036854775808,1,0.5)"),
            Err(ParseError::NumberOverflow { .. })
        ));
        assert_eq!(
            parse("INSERT INTO R VALUES (-9223372036854775808,1,0.5)")
                .map(|c| matches!(c, Command::Insert(_))),
            Ok(true)
        );
        // Float overflow to infinity is rejected at the lexer.
        assert!(matches!(
            parse("INSERT INTO R VALUES (1e999,1,0.5)"),
            Err(ParseError::NumberOverflow { .. })
        ));
    }

    #[test]
    fn numbers_still_lex_next_to_words_and_dots() {
        // `e` stays an identifier when not an exponent tail.
        assert!(matches!(parse("SELECT e(x,y)"), Ok(Command::Select(_))));
        // A stray dot is still an unexpected character.
        assert!(matches!(
            parse("SELECT R(x,y) LIMIT 3."),
            Err(ParseError::UnexpectedChar { ch: '.', .. })
        ));
        // A float where a count belongs is a typed token error.
        assert!(matches!(
            parse("NEXT 1.5 ON 0"),
            Err(ParseError::UnexpectedToken { .. })
        ));
    }

    proptest! {
        /// INSERT/LOAD render → parse round-trips on random rows and
        /// CSV-ish strings (the write-path analogue of
        /// `random_select_round_trips`).
        #[test]
        fn write_commands_round_trip(
            rows in prop::collection::vec(
                prop::collection::vec(
                    (0u32..3, i64::MIN..=i64::MAX, -1_000_000i32..1_000_000).prop_map(
                        |(kind, i, m)| match kind {
                            0 => Literal::Int(i),
                            1 => Literal::Float(FloatBits::new(f64::from(m) * 1e-3)),
                            _ => Literal::Float(FloatBits::new(f64::from(m) * 0.125)),
                        },
                    ),
                    1..5,
                ),
                1..4,
            ),
            csv_tags in prop::collection::vec(0usize..16, 0..60),
        ) {
            // A char pool heavy on the wire escapes, so the round-trip
            // exercises every escape sequence, not just plain text.
            const POOL: [char; 16] = [
                'a', 'b', '1', '2', ',', ' ', '.', '-', '\n', '\r', '\t', '\'', '\\', '_', 'w', '0',
            ];
            let csv: String = csv_tags.iter().map(|&t| POOL[t]).collect();
            let insert = Command::Insert(InsertStmt { relation: "R".into(), rows });
            prop_assert_eq!(parse(&insert.to_string()), Ok(insert.clone()));
            let load = Command::Load(LoadStmt { relation: "R".into(), csv });
            prop_assert_eq!(parse(&load.to_string()), Ok(load.clone()));
        }
    }

    #[test]
    fn every_repo_example_query_round_trips() {
        // The acceptance bar: the textual language round-trips every
        // query shape the repo's examples and tests use.
        let snowflake = QueryBuilder::new()
            .atom("Center", &["a", "b", "c"])
            .atom("ArmB", &["b", "d"])
            .atom("ArmC", &["c", "e"])
            .atom("LeafD", &["d", "f"])
            .atom("LeafE", &["e", "g"])
            .build();
        let queries = [
            path_query(2),
            path_query(3),
            path_query(4),
            star_query(3),
            star_query(4),
            triangle_query(),
            cycle_query(4),
            cycle_query(5),
            cycle_query(6),
            snowflake,
        ];
        for q in queries {
            for rank in RankSpec::ALL {
                for limit in [None, Some(1), Some(10)] {
                    let stmt = select_stmt(&q, rank, limit);
                    let text = Command::Select(stmt.clone()).to_string();
                    let parsed = parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
                    assert_eq!(parsed, Command::Select(stmt.clone()), "{text}");
                    match parsed {
                        Command::Select(s) => {
                            assert_eq!(s.to_cq(), q, "{text}: lowering must reproduce the query")
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    /// Random identifier that avoids the reserved keywords.
    fn arb_ident(rng_tag: u64) -> String {
        // Deterministic pool: short names exercise collisions.
        let pool = [
            "r", "s", "t", "x", "y", "z", "a_1", "b2", "Edge", "node", "w_", "V9",
        ];
        pool[(rng_tag as usize) % pool.len()].to_string()
    }

    proptest! {
        /// Render → parse → lower round-trips on random conjunctive
        /// queries (random atom count, arities, shared variables).
        #[test]
        fn random_select_round_trips(
            tags in prop::collection::vec((0u64..12, prop::collection::vec(0u64..12, 1..4)), 1..5),
            rank_i in 0usize..5,
            limit in 0usize..20,
        ) {
            let rank = RankSpec::ALL[rank_i];
            let limit = if limit == 0 { None } else { Some(limit) };
            let atoms: Vec<AtomRef> = tags
                .iter()
                .enumerate()
                .map(|(i, (r, vars))| AtomRef {
                    // Distinct relation names per atom keep the test
                    // focused on parsing, not self-join binding rules.
                    relation: format!("{}_{i}", arb_ident(*r)),
                    vars: vars.iter().map(|&v| arb_ident(v)).collect(),
                })
                .collect();
            let stmt = SelectStmt { atoms, rank, limit };
            let text = Command::Select(stmt.clone()).to_string();
            let parsed = parse(&text).expect("canonical text parses");
            prop_assert_eq!(&parsed, &Command::Select(stmt.clone()));
            // Lowering commutes with rendering: the parsed statement
            // lowers to the same CQ as the original.
            match parsed {
                Command::Select(s) => prop_assert_eq!(s.to_cq(), stmt.to_cq()),
                _ => unreachable!(),
            }
        }

        /// Cursor commands round-trip for arbitrary ids and counts.
        #[test]
        fn cursor_commands_round_trip(count in 1usize..1000, cursor in 0u64..10_000) {
            for cmd in [
                Command::Next { count, cursor },
                Command::Close { cursor },
            ] {
                prop_assert_eq!(parse(&cmd.to_string()), Ok(cmd.clone()));
            }
        }
    }
}
